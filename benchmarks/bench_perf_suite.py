"""Hot-path perf suite — the `python -m repro bench` harness under pytest.

Not a paper figure: this runs the same named benchmark suite as
``python -m repro bench`` (per-oracle encode throughput, packed vs dense
unary aggregation, the blocked OLH decode, sharded collect + reduce,
constrained inference, and the serial-vs-parallel epsilon grid), writes the
``BENCH_smoke.json`` perf record, and asserts the harness's derived checks:

* packed unary payloads are at least 4x smaller and aggregate at least 2x
  faster than the legacy dense matrices at ``D = 1024``;
* a seeded ``run_epsilon_grid(workers=4)`` is bit-identical to the serial
  sweep;
* small-batch streaming ingest under lazy materialization beats the eager
  refresh-per-batch baseline by at least 3x for both the
  consistency-enforced HH and the 2-D grid, with bit-identical estimates
  (the committed smoke record shows 5x+; the floor here is lower to
  absorb machine variance).

Run with ``pytest benchmarks/bench_perf_suite.py --benchmark-only -s``.
Set ``REPRO_BENCH_SUITE=full`` for the larger suite.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.bench import run_suite
from repro.experiments.reporting import format_table


@pytest.mark.benchmark(group="perf-suite")
def test_perf_suite_checks(run_once, tmp_path):
    """The repo's perf record regenerates and its headline checks hold."""
    suite = os.environ.get("REPRO_BENCH_SUITE", "smoke")
    payload = run_once(run_suite, suite=suite, out_dir=str(tmp_path))

    rows = [
        [
            record["name"],
            round(record["wall_seconds"], 4),
            round(record["throughput"], 1),
            record["unit"],
        ]
        for record in payload["results"]
    ]
    print()
    print(f"perf suite '{suite}' -> {payload['path']}")
    print(format_table(["benchmark", "best wall s", "throughput", "unit"], rows))
    print(f"checks: {payload['checks']}")

    checks = payload["checks"]
    assert checks["parallel_grid_bit_identical"] is True
    assert checks["packed_payload_ratio"] >= 4.0
    assert checks["packed_aggregate_speedup"] >= 2.0
    assert checks["lazy_vs_eager_bit_identical"] is True
    assert checks["hh_stream_ingest_speedup"] >= 3.0
    assert checks["grid2d_stream_ingest_speedup"] >= 3.0
