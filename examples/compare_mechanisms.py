"""Compare the paper's mechanisms on one dataset (a mini Figure 4 / Table 5).

Scenario: before deploying a telemetry pipeline you want to pick the right
range-query mechanism for your domain size and privacy level.  This script
fits the flat baseline, hierarchical histograms at several branching factors
(with and without consistency) and the Haar wavelet method on the same
population, and reports their mean squared error over a range-query workload
and over prefix queries — the comparison the paper's evaluation runs at
industrial scale.

Run with:  python examples/compare_mechanisms.py [epsilon]
"""

from __future__ import annotations

import sys

from repro.data import cauchy_probabilities, expected_counts
from repro.data.workloads import all_range_queries, prefix_queries
from repro.experiments.reporting import format_table
from repro.experiments.runner import evaluate_mechanism

DOMAIN_SIZE = 1 << 10
N_USERS = 1 << 17
SPECS = ["flat_oue", "hh_4", "hhc_4", "hhc_8", "hh_4_hrr", "hhc_4_hrr", "haar"]


def main() -> None:
    epsilon = float(sys.argv[1]) if len(sys.argv) > 1 else 1.1
    counts = expected_counts(cauchy_probabilities(DOMAIN_SIZE), N_USERS)
    range_workload = all_range_queries(DOMAIN_SIZE).subset(5000, random_state=0)
    prefix_workload = prefix_queries(DOMAIN_SIZE)

    rows = []
    for spec in SPECS:
        range_cell = evaluate_mechanism(
            spec, counts, range_workload, epsilon=epsilon, repetitions=3, random_state=1
        )
        prefix_cell = evaluate_mechanism(
            spec, counts, prefix_workload, epsilon=epsilon, repetitions=3, random_state=2
        )
        rows.append([spec, range_cell.scaled_mse, prefix_cell.scaled_mse])

    print(f"D = {DOMAIN_SIZE}, N = {N_USERS}, epsilon = {epsilon}")
    print("(mean squared error x 1000, averaged over 3 repetitions; lower is better)\n")
    print(format_table(["mechanism", "range queries", "prefix queries"], rows))

    best = min(rows, key=lambda row: row[1])
    flat = next(row for row in rows if row[0] == "flat_oue")
    print(f"\nbest mechanism for ranges: {best[0]} "
          f"({flat[1] / best[1]:.1f}x more accurate than the flat baseline)")


if __name__ == "__main__":
    main()
