"""Quickstart: answer range queries over a private population.

Scenario: an app wants to know how its users' ages (bucketed into 1024
fine-grained bins) are distributed — what fraction falls in any interval,
what the median is — without ever seeing an individual's value.  Each user
sends a single locally-randomized report; the aggregator reconstructs the
answers.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import LdpRangeQuerySession
from repro.data import cauchy_probabilities, sample_items


def main() -> None:
    rng_seed = 7
    domain_size = 1024          # discretised attribute (e.g. age in fine bins)
    n_users = 200_000           # population size
    epsilon = 1.1               # the paper's default privacy level (e^eps = 3)

    # ------------------------------------------------------------------
    # 1. A synthetic population: each user holds one private item.
    # ------------------------------------------------------------------
    probabilities = cauchy_probabilities(domain_size, center_fraction=0.4)
    items = sample_items(probabilities, n_users, random_state=rng_seed)

    # ------------------------------------------------------------------
    # 2. Collect: every user submits one epsilon-LDP report.  "hhc_4" is the
    #    consistent hierarchical histogram with branching factor 4; try
    #    "haar" (the wavelet method) or "flat_oue" to compare.
    # ------------------------------------------------------------------
    session = LdpRangeQuerySession(epsilon=epsilon, domain_size=domain_size, mechanism="hhc_4")
    session.collect(items, random_state=rng_seed)
    print("collected:", session.summary())

    # ------------------------------------------------------------------
    # 3. Analyse: range queries, CDF, quantiles — all from the same reports.
    # ------------------------------------------------------------------
    queries = [(0, 255), (256, 511), (300, 700), (900, 1023)]
    print("\nrange query estimates vs ground truth")
    for start, end in queries:
        estimate = session.range_query(start, end)
        truth = np.mean((items >= start) & (items <= end))
        print(f"  [{start:4d}, {end:4d}]  estimate={estimate:.4f}  truth={truth:.4f}  "
              f"error={abs(estimate - truth):.4f}")

    deciles = session.quantiles()
    true_cdf = np.cumsum(np.bincount(items, minlength=domain_size)) / n_users
    true_deciles = np.searchsorted(true_cdf, np.arange(0.1, 1.0, 0.1))
    print("\ndecile estimates (item index)")
    print("  estimated:", deciles)
    print("  true:     ", [int(d) for d in true_deciles])
    print("\nestimated median:", session.median(), " true median:", int(true_deciles[4]))


if __name__ == "__main__":
    main()
