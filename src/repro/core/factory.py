"""Mechanism factory and paper-style name parsing.

The experiment harness refers to mechanisms by compact specification
strings modelled on the paper's naming:

=========================  ====================================================
``"flat_oue"``              :class:`FlatMechanism` with the OUE oracle
``"flat_hrr"``              flat mechanism with HRR point estimates
``"hh_4"``                  :class:`HierarchicalHistogramMechanism`, ``B = 4``,
                            OUE oracle, **no** consistency (``TreeOUE``)
``"hhc_4"``                 the same with consistency (``TreeOUECI`` / ``HHc_4``)
``"hh_8_hrr"`` / ``"hhc_8_hrr"``  HH with the HRR oracle (``TreeHRR[CI]``)
``"hhc_16_olh"``            HH with the OLH oracle (``TreeOLHCI``)
``"haar"`` / ``"haar_hrr"``  :class:`HaarWaveletMechanism` (``HaarHRR``)
``"grid2d"`` / ``"grid2d_2"``  :class:`HierarchicalGrid2D`, per-axis ``B = 2``,
                            OUE oracle (Section 6; ``domain_size`` is the
                            grid *side length*)
``"grid2d_4_hrr"``          the 2-D grid with ``B = 4`` and the HRR oracle
``"gridnd"`` / ``"grid3d"``  :class:`HierarchicalGridND` (``gridnd`` takes
                            ``dims`` from kwargs, default 2; ``grid<d>d``
                            encodes it in the spec)
``"grid3d_4_hrr"``          the 3-D grid with ``B = 4`` and the HRR oracle
``"auto"`` / ``"auto_3d"``  planner-chosen spec: :func:`repro.planner.plan`
                            ranks the candidate families by their
                            closed-form variance bounds for the workload in
                            ``kwargs`` and instantiates the winner
=========================  ====================================================

:func:`make_mechanism` is the programmatic entry point;
:func:`mechanism_from_spec` parses the strings above.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.core.base import RangeQueryMechanism
from repro.core.flat import FlatMechanism
from repro.core.hierarchical import HierarchicalHistogramMechanism
from repro.core.multidim import HierarchicalGrid2D, HierarchicalGridND
from repro.core.wavelet import HaarWaveletMechanism
from repro.exceptions import ConfigurationError

__all__ = ["make_mechanism", "mechanism_from_spec"]

_HH_PATTERN = re.compile(
    r"^(?:hh|tree)(?P<consistent>c?)[_-](?P<branching>\d+)(?:[_-](?P<oracle>[a-z]+))?$"
)
_FLAT_PATTERN = re.compile(r"^flat(?:[_-](?P<oracle>[a-z]+))?$")
_HAAR_PATTERN = re.compile(r"^haar(?:[_-]hrr)?$")
_GRID2D_PATTERN = re.compile(
    r"^grid2d(?:[_-](?P<branching>\d+))?(?:[_-](?P<oracle>[a-z]+))?$"
)
# Checked after _GRID2D_PATTERN so "grid2d..." keeps constructing the 2-D
# specialization (rectangle surface + historical persist identity).
_GRIDND_PATTERN = re.compile(
    r"^grid(?:nd|(?P<dims>\d+)d)(?:[_-](?P<branching>\d+))?(?:[_-](?P<oracle>[a-z]+))?$"
)
_AUTO_PATTERN = re.compile(r"^auto(?:[_-](?P<dims>\d+)d)?$")


def make_mechanism(
    kind: str,
    epsilon: float,
    domain_size: int,
    branching: Optional[int] = None,
    oracle: str = "oue",
    consistency: bool = True,
    name: Optional[str] = None,
    **kwargs,
) -> RangeQueryMechanism:
    """Construct a range-query mechanism programmatically.

    Parameters
    ----------
    kind:
        ``"flat"``, ``"hierarchical"`` (alias ``"hh"``/``"tree"``),
        ``"haar"`` (alias ``"wavelet"``) or ``"grid2d"`` (alias ``"grid"``,
        where ``domain_size`` is the grid side length).
    epsilon, domain_size:
        Standard mechanism parameters.
    branching, oracle, consistency:
        Tree-shape options (``branching`` defaults to 4 for hierarchical
        histograms and 2 per axis for the 2-D grid; ``consistency`` only
        applies to hierarchical histograms).
    kwargs:
        Forwarded to the concrete constructor (e.g. ``level_probabilities``
        or ``hash_range``).
    """
    key = str(kind).lower()
    if key == "flat":
        return FlatMechanism(epsilon, domain_size, oracle=oracle, name=name, **kwargs)
    if key in ("hierarchical", "hh", "tree"):
        return HierarchicalHistogramMechanism(
            epsilon,
            domain_size,
            branching=4 if branching is None else branching,
            oracle=oracle,
            consistency=consistency,
            name=name,
            **kwargs,
        )
    if key in ("haar", "wavelet"):
        return HaarWaveletMechanism(epsilon, domain_size, name=name, **kwargs)
    if key in ("grid2d", "grid"):
        return HierarchicalGrid2D(
            epsilon,
            domain_size,
            branching=2 if branching is None else branching,
            oracle=oracle,
            name=name,
            **kwargs,
        )
    if key == "gridnd":
        return HierarchicalGridND(
            epsilon,
            domain_size,
            branching=2 if branching is None else branching,
            oracle=oracle,
            name=name,
            **kwargs,
        )
    raise ConfigurationError(
        f"unknown mechanism kind {kind!r}; "
        "expected flat / hierarchical / haar / grid2d / gridnd"
    )


def mechanism_from_spec(
    spec: str, epsilon: float, domain_size: int, **kwargs
) -> RangeQueryMechanism:
    """Instantiate a mechanism from a compact specification string.

    See the module docstring for the accepted grammar.  Additional keyword
    arguments are forwarded to the constructor, so e.g. custom level
    probabilities can still be injected for spec-built mechanisms.
    """
    token = str(spec).strip().lower()
    flat_match = _FLAT_PATTERN.match(token)
    if flat_match:
        oracle = flat_match.group("oracle") or "oue"
        return FlatMechanism(epsilon, domain_size, oracle=oracle, name=spec, **kwargs)
    if _HAAR_PATTERN.match(token):
        return HaarWaveletMechanism(epsilon, domain_size, name=spec, **kwargs)
    grid_match = _GRID2D_PATTERN.match(token)
    if grid_match:
        branching = int(grid_match.group("branching") or 2)
        oracle = grid_match.group("oracle") or "oue"
        return HierarchicalGrid2D(
            epsilon,
            domain_size,
            branching=branching,
            oracle=oracle,
            name=spec,
            **kwargs,
        )
    gridnd_match = _GRIDND_PATTERN.match(token)
    if gridnd_match:
        dims = int(gridnd_match.group("dims") or kwargs.pop("dims", 2))
        kwargs.pop("dims", None)  # spec digit wins over a redundant kwarg
        branching = int(gridnd_match.group("branching") or 2)
        oracle = gridnd_match.group("oracle") or "oue"
        if dims == 2:
            # The 2-D grid keeps its specialized class (rectangle surface,
            # historical persist identity) whichever spelling names it.
            return HierarchicalGrid2D(
                epsilon,
                domain_size,
                branching=branching,
                oracle=oracle,
                name=spec,
                **kwargs,
            )
        return HierarchicalGridND(
            epsilon,
            domain_size,
            dims=dims,
            branching=branching,
            oracle=oracle,
            name=spec,
            **kwargs,
        )
    auto_match = _AUTO_PATTERN.match(token)
    if auto_match:
        # Planned spec: rank the candidate configurations by closed-form
        # variance bound and instantiate the winner.  Imported lazily —
        # repro.planner sits above core in the layering.
        from repro.planner import plan

        dims = int(auto_match.group("dims") or kwargs.pop("dims", 1))
        kwargs.pop("dims", None)
        if "n_users" not in kwargs:
            raise ConfigurationError(
                "'auto' specs plan against a population size; pass n_users= "
                "(and optionally workload=) as mechanism kwargs"
            )
        chosen = plan(
            workload=kwargs.pop("workload", None),
            n_users=kwargs.pop("n_users"),
            epsilon=epsilon,
            domain_size=domain_size,
            dims=dims,
        )
        return mechanism_from_spec(chosen.spec, epsilon, domain_size, **kwargs)
    hh_match = _HH_PATTERN.match(token)
    if hh_match:
        branching = int(hh_match.group("branching"))
        oracle = hh_match.group("oracle") or "oue"
        consistency = hh_match.group("consistent") == "c"
        return HierarchicalHistogramMechanism(
            epsilon,
            domain_size,
            branching=branching,
            oracle=oracle,
            consistency=consistency,
            name=spec,
            **kwargs,
        )
    raise ConfigurationError(
        f"could not parse mechanism specification {spec!r}; "
        "expected e.g. 'flat_oue', 'hhc_4', 'hh_16_hrr', 'haar', 'grid2d_2', "
        "'grid3d_4' or 'auto'"
    )
