"""repro — Answering Range Queries Under Local Differential Privacy.

A complete, laptop-scale reproduction of Cormode, Kulkarni and Srivastava,
*"Answering Range Queries Under Local Differential Privacy"* (SIGMOD 2019 /
arXiv:1812.10942): the LDP frequency-oracle substrate, the flat /
hierarchical-histogram / Haar-wavelet range-query mechanisms, prefix and
quantile queries, the centralized baselines used for comparison, synthetic
workloads, and the experiment harness that regenerates every table and
figure of the paper's evaluation.

Quickstart
----------
>>> from repro import LdpRangeQuerySession
>>> from repro.data import cauchy_probabilities, sample_items
>>> items = sample_items(cauchy_probabilities(1024), n_users=200_000, random_state=0)
>>> session = LdpRangeQuerySession(epsilon=1.1, domain_size=1024, mechanism="hhc_4")
>>> _ = session.collect(items, random_state=0)
>>> answer = session.range_query(100, 500)
"""

from repro.core.base import RangeQueryMechanism
from repro.core.factory import make_mechanism, mechanism_from_spec
from repro.core.flat import FlatMechanism
from repro.core.hierarchical import HierarchicalHistogramMechanism
from repro.core.multidim import HierarchicalGrid2D, HierarchicalGridND
from repro.core.quantiles import DECILES, estimate_cdf, estimate_quantiles
from repro.core.session import Grid2DSession, GridNDSession, LdpRangeQuerySession
from repro.core.wavelet import HaarWaveletMechanism
from repro.exceptions import (
    ConfigurationError,
    InvalidDomainError,
    InvalidPrivacyBudgetError,
    InvalidQueryError,
    NotFittedError,
    ProtocolError,
    ReproError,
)
from repro.planner import Plan, PlanCandidate, plan
from repro.privacy.budget import PrivacyBudget
from repro import persist
from repro.service import IngestionService, collect_across_processes, run_ingestion
from repro.streaming import (
    HashRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    ShardedCollector,
    ShardRouter,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # Core mechanisms
    "RangeQueryMechanism",
    "FlatMechanism",
    "HierarchicalHistogramMechanism",
    "HaarWaveletMechanism",
    "HierarchicalGrid2D",
    "HierarchicalGridND",
    "Grid2DSession",
    "GridNDSession",
    "LdpRangeQuerySession",
    "ShardedCollector",
    "make_mechanism",
    "mechanism_from_spec",
    # Planner
    "Plan",
    "PlanCandidate",
    "plan",
    # Streaming / service / persistence
    "IngestionService",
    "ShardRouter",
    "RoundRobinRouter",
    "HashRouter",
    "LeastLoadedRouter",
    "collect_across_processes",
    "run_ingestion",
    "persist",
    # Quantiles
    "DECILES",
    "estimate_cdf",
    "estimate_quantiles",
    # Privacy
    "PrivacyBudget",
    # Errors
    "ReproError",
    "InvalidPrivacyBudgetError",
    "InvalidDomainError",
    "InvalidQueryError",
    "NotFittedError",
    "ProtocolError",
    "ConfigurationError",
]
