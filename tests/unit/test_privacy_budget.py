"""Unit tests for repro.privacy.budget."""

import math

import pytest

from repro.exceptions import InvalidPrivacyBudgetError
from repro.privacy.budget import PrivacyBudget, validate_epsilon


class TestValidateEpsilon:
    def test_accepts_positive_float(self):
        assert validate_epsilon(1.1) == pytest.approx(1.1)

    def test_accepts_integer(self):
        assert validate_epsilon(2) == 2.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf"), 100.0])
    def test_rejects_invalid_numbers(self, bad):
        with pytest.raises(InvalidPrivacyBudgetError):
            validate_epsilon(bad)

    def test_rejects_non_numeric(self):
        with pytest.raises(InvalidPrivacyBudgetError):
            validate_epsilon("not-a-number")

    def test_rejects_none(self):
        with pytest.raises(InvalidPrivacyBudgetError):
            validate_epsilon(None)


class TestPrivacyBudget:
    def test_exp_epsilon(self):
        budget = PrivacyBudget(math.log(3.0))
        assert budget.exp_epsilon == pytest.approx(3.0)

    def test_rr_keep_probability_default_paper_setting(self):
        # The paper's default e^eps = 3 gives a keep probability of 3/4.
        budget = PrivacyBudget.from_exp_epsilon(3.0)
        assert budget.rr_keep_probability == pytest.approx(0.75)

    def test_from_exp_epsilon_roundtrip(self):
        budget = PrivacyBudget.from_exp_epsilon(math.exp(0.7))
        assert budget.epsilon == pytest.approx(0.7)

    def test_from_exp_epsilon_rejects_at_most_one(self):
        with pytest.raises(InvalidPrivacyBudgetError):
            PrivacyBudget.from_exp_epsilon(1.0)

    def test_split_divides_budget(self):
        budget = PrivacyBudget(1.2)
        assert budget.split(4).epsilon == pytest.approx(0.3)

    def test_split_rejects_non_positive_parts(self):
        with pytest.raises(InvalidPrivacyBudgetError):
            PrivacyBudget(1.0).split(0)

    def test_compose_sums_budgets(self):
        parts = [PrivacyBudget(0.25)] * 4
        assert PrivacyBudget.compose(parts).epsilon == pytest.approx(1.0)

    def test_compose_rejects_empty(self):
        with pytest.raises(InvalidPrivacyBudgetError):
            PrivacyBudget.compose([])

    def test_split_then_compose_is_identity(self):
        budget = PrivacyBudget(0.9)
        parts = [budget.split(3)] * 3
        assert PrivacyBudget.compose(parts).epsilon == pytest.approx(0.9)

    def test_invalid_epsilon_raises_at_construction(self):
        with pytest.raises(InvalidPrivacyBudgetError):
            PrivacyBudget(-0.1)

    def test_budget_is_immutable(self):
        budget = PrivacyBudget(1.0)
        with pytest.raises(AttributeError):
            budget.epsilon = 2.0
