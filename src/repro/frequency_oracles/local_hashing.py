"""Optimal Local Hashing (OLH) frequency oracle.

Each user samples a hash function ``H : [D] -> [g]`` from a universal family
(with ``g = e^eps + 1`` rounded to the nearest integer, the variance-optimal
choice), hashes her item and perturbs the hashed symbol with k-ary randomized
response over ``[g]``.  The aggregator, for every report, credits every item
of the original domain whose hash equals the reported symbol and applies the
usual bias correction.

Decoding is the expensive part: ``O(N * D)`` work, which is why the paper
only evaluates OLH on the smallest domain (``D = 2^8``).  The same practical
limitation applies here; the hierarchical mechanism refuses nothing but the
experiment configurations follow the paper and only use ``TreeOLH`` for small
domains.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro import kernels
from repro.exceptions import ConfigurationError
from repro.frequency_oracles.accumulators import OracleAccumulator
from repro.frequency_oracles.base import FrequencyOracle, OracleReports
from repro.privacy.randomness import RandomState, as_generator

__all__ = [
    "OLH_DECODE_TARGET_BYTES",
    "UniversalHashFamily",
    "LocalHashingAccumulator",
    "OptimalLocalHashing",
]

#: A Mersenne prime comfortably larger than any domain used in the paper
#: (2^31 - 1); arithmetic stays inside 64-bit integers.
_PRIME = (1 << 31) - 1

#: Working-set target (bytes) of the blocked OLH decode.  Each block row
#: costs ``domain_size`` int64 hash values plus a bool match row, and the
#: block count adapts so those buffers stay inside this budget regardless of
#: the domain size.  Tunable at module level; estimates are invariant to the
#: block size (the decode is a plain sum over users).
OLH_DECODE_TARGET_BYTES: int = 32 << 20


class UniversalHashFamily:
    """The multiply-shift universal family ``h(x) = ((a x + b) mod P) mod g``.

    For ``a`` drawn uniformly from ``[1, P)`` and ``b`` from ``[0, P)`` the
    collision probability of two distinct items is at most ``1/g`` (up to the
    negligible bias of the final modulus), which is the property OLH's
    analysis needs.
    """

    def __init__(self, domain_size: int, hash_range: int) -> None:
        if domain_size >= _PRIME:
            raise ConfigurationError(
                f"domain size {domain_size} exceeds the hash family prime {_PRIME}"
            )
        if hash_range < 2:
            raise ConfigurationError(
                f"hash range must be at least 2, got {hash_range!r}"
            )
        self.domain_size = int(domain_size)
        self.hash_range = int(hash_range)

    def sample(self, random_state: RandomState = None) -> Dict[str, int]:
        """Sample the ``(a, b)`` parameters of one hash function."""
        rng = as_generator(random_state)
        return {
            "a": int(rng.integers(1, _PRIME)),
            "b": int(rng.integers(0, _PRIME)),
        }

    def sample_batch(self, count: int, random_state: RandomState = None) -> Dict[str, np.ndarray]:
        """Sample ``count`` hash functions as parallel parameter arrays."""
        rng = as_generator(random_state)
        return {
            "a": rng.integers(1, _PRIME, size=count, dtype=np.int64),
            "b": rng.integers(0, _PRIME, size=count, dtype=np.int64),
        }

    def evaluate(self, params: Dict[str, Any], items: np.ndarray) -> np.ndarray:
        """Evaluate one hash function on an array of items."""
        items = np.asarray(items, dtype=np.int64)
        hashed = (params["a"] * items + params["b"]) % _PRIME
        return (hashed % self.hash_range).astype(np.int64)

    def evaluate_pairwise(
        self, a: np.ndarray, b: np.ndarray, items: np.ndarray
    ) -> np.ndarray:
        """Evaluate hash function ``i`` on item ``i`` for parallel arrays."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        return (((a * items + b) % _PRIME) % self.hash_range).astype(np.int64)


class LocalHashingAccumulator(OracleAccumulator):
    """Sufficient statistic of OLH: per-item support tallies.

    A report supports item ``j`` when ``j``'s hash under that report's
    function equals the reported symbol; the statistic is the sum of those
    indicators over reports.  Decoding a batch is the ``O(batch * D)`` part,
    so shards pay it locally and the reducer only adds vectors.
    """

    def __init__(self, oracle: "OptimalLocalHashing") -> None:
        super().__init__(oracle)
        self._support = np.zeros(oracle.domain_size, dtype=np.float64)

    def _add_reports(self, reports: OracleReports) -> None:
        oracle = self._oracle
        a = np.asarray(reports.payload["a"], dtype=np.int64)
        b = np.asarray(reports.payload["b"], dtype=np.int64)
        values = np.asarray(reports.payload["values"], dtype=np.int64)
        # The O(N * D) hash-match inner loop dispatches to the active
        # kernel backend; on numpy it is blocked over users so the
        # intermediate hash/match buffers stay inside the
        # OLH_DECODE_TARGET_BYTES working-set budget.  Support counts are
        # exact integers, so the backend cannot change the estimate.
        self._support += kernels.olh_decode(
            a,
            b,
            values,
            oracle.domain_size,
            oracle.hash_range,
            _PRIME,
            OLH_DECODE_TARGET_BYTES,
        )

    def _add_simulated(self, counts: np.ndarray, rng: np.random.Generator) -> None:
        n_users = int(counts.sum())
        self._support += rng.binomial(counts, self._oracle.p) + rng.binomial(
            n_users - counts, self._oracle.q
        )

    def _merge_statistic(self, other: "LocalHashingAccumulator") -> None:
        self._support += other._support

    def _statistic_arrays(self) -> dict:
        return {"support": self._support}

    def _load_statistic_arrays(self, arrays: dict) -> None:
        self._support = arrays["support"]

    def estimate(self) -> np.ndarray:
        return self._oracle._unbias(self._support, self._n_users)


class OptimalLocalHashing(FrequencyOracle):
    """OLH [Wang et al. 2017], Section 3.2 of the paper.

    Report layout (:meth:`encode`): ``{"a": int, "b": int, "value": int}`` —
    the sampled hash parameters plus the perturbed hashed symbol.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    domain_size:
        Item domain size ``D``.
    hash_range:
        The ``g`` parameter; defaults to ``round(e^eps) + 1``, the
        variance-minimising choice ``g = e^eps + 1`` of the paper.
    """

    name = "olh"

    def __init__(
        self, epsilon: float, domain_size: int, hash_range: Optional[int] = None
    ) -> None:
        super().__init__(epsilon, domain_size)
        if hash_range is None:
            hash_range = int(round(self._budget.exp_epsilon)) + 1
        if hash_range < 2:
            raise ConfigurationError(
                f"hash range must be at least 2, got {hash_range!r}"
            )
        self._hash_range = int(hash_range)
        self._family = UniversalHashFamily(self._domain_size, self._hash_range)
        exp_eps = self._budget.exp_epsilon
        #: probability of reporting the *true* hashed symbol (GRR over [g])
        self._p = exp_eps / (exp_eps + self._hash_range - 1)
        #: support probability of any non-true item in the original domain
        self._q = 1.0 / self._hash_range

    @property
    def hash_range(self) -> int:
        """The size ``g`` of the hashed domain."""
        return self._hash_range

    @property
    def p(self) -> float:
        """Probability of reporting the true hashed symbol."""
        return self._p

    @property
    def q(self) -> float:
        """Expected support probability ``1/g`` of a non-true item."""
        return self._q

    # ------------------------------------------------------------------
    # User side
    # ------------------------------------------------------------------
    def encode(self, value: int, random_state: RandomState = None) -> Dict[str, Any]:
        value = self._check_value(value)
        rng = as_generator(random_state)
        params = self._family.sample(rng)
        hashed = int(self._family.evaluate(params, np.array([value]))[0])
        if rng.random() < self._p:
            reported = hashed
        else:
            offset = int(rng.integers(1, self._hash_range))
            reported = (hashed + offset) % self._hash_range
        return {"a": params["a"], "b": params["b"], "value": reported}

    def encode_batch(
        self, values: np.ndarray, random_state: RandomState = None
    ) -> OracleReports:
        values = self._check_values(values)
        rng = as_generator(random_state)
        n_users = values.shape[0]
        params = self._family.sample_batch(n_users, rng)
        hashed = self._family.evaluate_pairwise(params["a"], params["b"], values)
        keep = rng.random(n_users) < self._p
        offsets = rng.integers(1, self._hash_range, size=n_users)
        reported = np.where(keep, hashed, (hashed + offsets) % self._hash_range)
        return OracleReports(
            payload={"a": params["a"], "b": params["b"], "values": reported},
            n_users=n_users,
        )

    # ------------------------------------------------------------------
    # Aggregator side
    # ------------------------------------------------------------------
    def accumulator(self) -> LocalHashingAccumulator:
        """Mergeable accumulator over the per-item support tallies."""
        return LocalHashingAccumulator(self)

    def merge_signature(self) -> tuple:
        return super().merge_signature() + (self._hash_range,)

    def config_dict(self) -> Dict[str, Any]:
        config = super().config_dict()
        config["hash_range"] = self._hash_range
        return config

    def aggregate(self, reports: OracleReports) -> np.ndarray:
        """Decode reports by crediting the support set of every report.

        The cost is ``O(N * D)``: for every user the aggregator hashes every
        domain item with that user's hash function.  The loop is blocked over
        users to keep the intermediate matrix bounded.
        """
        return self.accumulator().add(reports).estimate()

    def simulate_aggregate(
        self, true_counts: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Fast path sampling the marginal support counts.

        The support count of item ``j`` is ``Bino(c_j, p)`` from users who
        hold ``j`` plus ``Bino(N - c_j, 1/g)`` from everyone else (a
        universal hash collides with probability ``1/g``).  Cross-item
        correlations induced by shared hash functions are not reproduced,
        but per-item marginals — and hence the variance the experiments
        measure — are.
        """
        return self.accumulator().add_counts(true_counts, random_state).estimate()

    def _unbias(self, support: np.ndarray, n_users: int) -> np.ndarray:
        if n_users == 0:
            return np.zeros(self._domain_size)
        observed = support / float(n_users)
        return (observed - self._q) / (self._p - self._q)

    def theoretical_variance(self, n_users: int) -> float:
        """``4 e^eps / (N (e^eps - 1)^2)`` at the optimal ``g = e^eps + 1``."""
        return super().theoretical_variance(n_users)
