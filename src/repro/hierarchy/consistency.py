"""Constrained inference ("consistency") for hierarchical histograms.

Section 4.5 of the paper: the hierarchical histogram materialises redundant
information — a parent's weight should equal the sum of its children's — and
exploiting that redundancy with a least-squares fit reduces the variance of
every node estimate by a factor of at least ``B / (B + 1)``.

Two implementations are provided:

* :func:`enforce_consistency` — the linear-time two-stage algorithm of Hay
  et al. translated to the local model (the paper works with *fractions*
  per level rather than counts, because level sampling means per-level user
  counts do not sum up exactly):

  1. *Weighted averaging* (bottom-up): each internal node's estimate is
     replaced by the optimal convex combination of its own noisy estimate
     and the sum of its (already adjusted) children.
  2. *Mean consistency* (top-down): the difference between a parent's value
     and the sum of its children is spread equally over the children so the
     hierarchy becomes exactly consistent.

* :func:`least_squares_consistency` — an explicit ordinary-least-squares
  solve of the same problem via the normal equations.  It is cubic in the
  number of leaves and exists purely as a reference implementation for the
  tests, which check the two agree.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, InvalidDomainError

__all__ = ["enforce_consistency", "least_squares_consistency", "subtree_counts"]


def _validate_levels(levels: Sequence[np.ndarray], branching: int) -> List[np.ndarray]:
    if not isinstance(branching, (int, np.integer)) or branching < 2:
        raise ConfigurationError(
            f"branching factor must be an integer >= 2, got {branching!r}"
        )
    if not levels:
        raise InvalidDomainError("need at least one level of estimates")
    arrays = [np.asarray(level, dtype=np.float64) for level in levels]
    for depth, array in enumerate(arrays, start=1):
        expected = branching**depth
        if array.ndim != 1 or array.shape[0] != expected:
            raise InvalidDomainError(
                f"level {depth} must have {expected} entries, got shape {array.shape}"
            )
    return arrays


def subtree_counts(height_from_leaves: int, branching: int) -> int:
    """Number of nodes in a complete subtree of the given height.

    ``height_from_leaves = 1`` is a single leaf; ``2`` is a node plus its
    ``B`` children, and so on.  Used for the weighted-averaging coefficients.
    """
    return (branching**height_from_leaves - 1) // (branching - 1)


def enforce_consistency(
    levels: Sequence[np.ndarray],
    branching: int,
    root_value: Optional[float] = None,
) -> List[np.ndarray]:
    """Apply the two-stage constrained-inference algorithm.

    Parameters
    ----------
    levels:
        Per-level estimate arrays, ``levels[0]`` being level 1 (the ``B``
        children of the root) down to ``levels[-1]`` being the ``B^h``
        leaves.  All estimates are *fractions* of the population.
    branching:
        Tree fan-out ``B``.
    root_value:
        If given (the mechanisms pass ``1.0``), the implicit root is treated
        as an exactly-known node with this value and the top estimated level
        receives the corresponding mean-consistency adjustment.  If ``None``
        the top level is left as the tree's frontier, which is the classic
        Hay et al. setting and what :func:`least_squares_consistency`
        reproduces exactly.

    Returns
    -------
    list of numpy arrays
        Adjusted estimates with the same shapes as the input, satisfying
        ``parent == sum(children)`` exactly for every internal node (and
        ``sum(level 1) == root_value`` when a root value is supplied).
    """
    noisy = _validate_levels(levels, branching)
    height = len(noisy)

    # ------------------------------------------------------------------
    # Stage 1: weighted averaging, bottom-up.  A node at distance `i` from
    # the leaves (leaves have i = 1) mixes its own estimate with the sum of
    # its children using weights (B^i - B^{i-1}) / (B^i - 1) and
    # (B^{i-1} - 1) / (B^i - 1) respectively.
    # ------------------------------------------------------------------
    averaged: List[np.ndarray] = [None] * height  # type: ignore[list-item]
    averaged[height - 1] = noisy[height - 1].copy()
    for depth in range(height - 2, -1, -1):
        distance = height - depth  # leaves are distance 1
        child_sums = averaged[depth + 1].reshape(-1, branching).sum(axis=1)
        own_weight = (branching**distance - branching ** (distance - 1)) / (
            branching**distance - 1
        )
        child_weight = (branching ** (distance - 1) - 1) / (branching**distance - 1)
        averaged[depth] = own_weight * noisy[depth] + child_weight * child_sums

    # ------------------------------------------------------------------
    # Stage 2: mean consistency, top-down.  Divide the parent/children
    # mismatch equally among the children.
    # ------------------------------------------------------------------
    adjusted: List[np.ndarray] = [level.copy() for level in averaged]
    if root_value is not None:
        mismatch = float(root_value) - adjusted[0].sum()
        adjusted[0] = adjusted[0] + mismatch / branching
    for depth in range(1, height):
        parent_values = adjusted[depth - 1]
        child_sums = averaged[depth].reshape(-1, branching).sum(axis=1)
        corrections = (parent_values - child_sums) / branching
        adjusted[depth] = averaged[depth] + np.repeat(corrections, branching)
    return adjusted


def least_squares_consistency(
    levels: Sequence[np.ndarray], branching: int
) -> List[np.ndarray]:
    """Exact least-squares solution of the consistency problem.

    Solves ``min ||H f - x||_2`` where ``x`` stacks all per-node noisy
    estimates and ``H`` maps leaf frequencies to every node of the hierarchy
    (Lemma 4.6 of the paper), then rebuilds each level from the fitted leaf
    vector.  Complexity is cubic in the number of leaves — reference use
    only.
    """
    noisy = _validate_levels(levels, branching)
    height = len(noisy)
    leaves = branching**height

    # Each level contributes a block-diagonal band: node `i` at depth `d`
    # covers the `leaves / B^d` consecutive leaves of its subtree, i.e. the
    # identity of size B^d with every column repeated `block` times.  Built
    # level-wise with array ops rather than one Python row at a time.
    blocks: List[np.ndarray] = []
    for depth in range(1, height + 1):
        nodes = branching**depth
        block = leaves // nodes
        blocks.append(np.repeat(np.eye(nodes), block, axis=1))
    design = np.vstack(blocks)
    target = np.concatenate(noisy)
    fitted_leaves, *_ = np.linalg.lstsq(design, target, rcond=None)

    result: List[np.ndarray] = []
    for depth in range(1, height + 1):
        block = leaves // branching**depth
        result.append(fitted_leaves.reshape(-1, block).sum(axis=1))
    return result
