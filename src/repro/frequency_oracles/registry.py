"""Factory for frequency oracles.

Mechanisms and experiment configurations refer to oracles by their short
names (``"oue"``, ``"olh"``, ``"hrr"``, ...); :func:`make_oracle` resolves a
name into a configured instance so that the choice of primitive stays a
plain string in experiment configuration files.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.exceptions import ConfigurationError
from repro.frequency_oracles.base import FrequencyOracle
from repro.frequency_oracles.hadamard import HadamardRandomizedResponse
from repro.frequency_oracles.local_hashing import OptimalLocalHashing
from repro.frequency_oracles.randomized_response import GeneralizedRandomizedResponse
from repro.frequency_oracles.unary import OptimizedUnaryEncoding, SymmetricUnaryEncoding

__all__ = ["make_oracle", "available_oracles", "register_oracle"]

_REGISTRY: Dict[str, Type[FrequencyOracle]] = {
    GeneralizedRandomizedResponse.name: GeneralizedRandomizedResponse,
    SymmetricUnaryEncoding.name: SymmetricUnaryEncoding,
    OptimizedUnaryEncoding.name: OptimizedUnaryEncoding,
    OptimalLocalHashing.name: OptimalLocalHashing,
    HadamardRandomizedResponse.name: HadamardRandomizedResponse,
}


def register_oracle(oracle_class: Type[FrequencyOracle]) -> Type[FrequencyOracle]:
    """Register a custom oracle class under its ``name`` attribute.

    May be used as a class decorator by downstream users adding their own
    primitives to the hierarchical histogram framework.
    """
    name = getattr(oracle_class, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigurationError("oracle classes must define a non-empty `name`")
    _REGISTRY[name] = oracle_class
    return oracle_class


def available_oracles() -> List[str]:
    """Names of all registered oracles."""
    return sorted(_REGISTRY)


def make_oracle(name: str, epsilon: float, domain_size: int, **kwargs) -> FrequencyOracle:
    """Instantiate a frequency oracle by name.

    Parameters
    ----------
    name:
        One of :func:`available_oracles` (case-insensitive).
    epsilon, domain_size:
        Forwarded to the oracle constructor, together with ``kwargs`` (e.g.
        ``hash_range`` for OLH).
    """
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown frequency oracle {name!r}; available: {available_oracles()}"
        )
    return _REGISTRY[key](epsilon=epsilon, domain_size=domain_size, **kwargs)
