"""Two-dimensional extension (Section 6 of the paper).

The hierarchical decomposition generalises to ``d`` dimensions by taking the
product of per-axis B-adic decompositions: any axis-aligned rectangle splits
into ``O(log_B^2 D)`` "B-adic rectangles", and a user's point lies in exactly
one rectangle per *pair* of axis levels.  The protocol therefore becomes:

* each user samples a level pair ``(l_x, l_y)`` uniformly at random;
* she forms the one-hot vector over the ``B^{l_x} * B^{l_y}`` grid cells of
  that resolution and perturbs it with a frequency oracle;
* the aggregator reconstructs one fraction estimate per cell of every level
  pair and answers a rectangle query by summing the cells of its product
  decomposition.

The variance of a rectangle query grows as ``log^4_B D`` (``log^{2d}`` in
``d`` dimensions), matching the discussion in the paper; Section 6 notes
that for higher dimensions coarse gridding becomes preferable, which is out
of scope here just as it is there.

Since every level pair's aggregation is an
:class:`~repro.frequency_oracles.accumulators.OracleAccumulator` over the
flattened ``n_x * n_y`` cell domain, the mechanism is a full
:class:`~repro.core.base.RangeQueryMechanism` citizen: incremental
collection (:meth:`~HierarchicalGrid2D.partial_fit` /
:meth:`~HierarchicalGrid2D.partial_fit_points`), shard combination
(:meth:`~HierarchicalGrid2D.merge_from`) and bit-exact snapshots
(:meth:`~HierarchicalGrid2D.state_dict`, :mod:`repro.persist`) all work,
so the sharded / async / durable pipeline serves rectangle workloads too.
Internally the base class sees the *flattened* row-major domain of size
``D * D`` — a point ``(x, y)`` is the item ``x * D + y`` — while the
2-D surface (:meth:`~HierarchicalGrid2D.fit_points`,
:meth:`~HierarchicalGrid2D.answer_rectangle`,
:meth:`~HierarchicalGrid2D.estimate_heatmap`) speaks coordinates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.base import RangeQueryMechanism
from repro.exceptions import (
    InvalidDomainError,
    InvalidQueryError,
)
from repro.frequency_oracles.accumulators import OracleAccumulator
from repro.frequency_oracles.registry import make_oracle
from repro.hierarchy.decomposition import (
    NodeRun,
    batched_axis_runs,
    decompose_to_runs,
)
from repro.hierarchy.tree import DomainTree
from repro.privacy.randomness import RandomState

__all__ = ["HierarchicalGrid2D"]

#: A level pair ``(l_x, l_y)`` indexing one resolution grid.
LevelPair = Tuple[int, int]


class HierarchicalGrid2D(RangeQueryMechanism):
    """LDP rectangle-query mechanism over a two-dimensional grid domain.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget.
    domain_size:
        Side length ``D`` of the ``[D] x [D]`` grid.
    branching:
        Per-axis fan-out ``B`` of the hierarchical decomposition.
    oracle:
        Frequency oracle used for every level pair (default ``"oue"``).

    Notes
    -----
    As a :class:`~repro.core.base.RangeQueryMechanism` the instance also
    answers *flattened* row-major queries (``fit_items`` /
    ``answer_range`` over the domain ``[0, D^2)``), which is what the
    sharded and streaming layers route through; the 2-D methods are thin
    coordinate adapters over the same accumulated state.
    """

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        branching: int = 2,
        oracle: str = "oue",
        name: Optional[str] = None,
        **oracle_kwargs,
    ) -> None:
        if not isinstance(domain_size, (int, np.integer)) or domain_size < 2:
            raise InvalidDomainError(
                f"domain side length must be an integer >= 2, got {domain_size!r}"
            )
        side = int(domain_size)
        default_name = f"Grid2D{str(oracle).upper()}_B{branching}"
        # The base class owns the flattened row-major domain of D^2 cells.
        super().__init__(epsilon, side * side, name=name or default_name)
        self._side = side
        self._tree = DomainTree(side, branching)
        self._oracle_name = str(oracle)
        self._oracle_kwargs = dict(oracle_kwargs)
        self._pairs: List[LevelPair] = [
            (lx, ly) for lx in self._tree.levels for ly in self._tree.levels
        ]
        self._oracles = {
            (lx, ly): make_oracle(
                self._oracle_name,
                epsilon=self.epsilon,
                domain_size=self._tree.nodes_at_level(lx)
                * self._tree.nodes_at_level(ly),
                **self._oracle_kwargs,
            )
            for lx, ly in self._pairs
        }
        self._accumulators: Optional[Dict[LevelPair, OracleAccumulator]] = None
        self._pair_user_counts: Optional[np.ndarray] = None
        self._estimates: Optional[Dict[LevelPair, np.ndarray]] = None
        self._pair_prefix: Optional[Dict[LevelPair, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def domain_size(self) -> int:
        """Side length ``D`` of the grid (the flattened item domain is
        ``D^2``, see :attr:`flat_domain_size`)."""
        return self._side

    @property
    def flat_domain_size(self) -> int:
        """Number of grid cells ``D^2`` — the row-major item domain the
        base-class collection API (``fit_items`` etc.) operates on."""
        return self._domain_size

    @property
    def tree(self) -> DomainTree:
        """The per-axis domain-tree geometry."""
        return self._tree

    @property
    def branching(self) -> int:
        return self._tree.branching

    @property
    def height(self) -> int:
        """Per-axis tree height ``h``."""
        return self._tree.height

    @property
    def level_pairs(self) -> List[LevelPair]:
        """The ``h^2`` level pairs ``(l_x, l_y)``, one resolution grid each."""
        return list(self._pairs)

    @property
    def pair_user_counts(self) -> Optional[np.ndarray]:
        """Users that reported each level pair so far (``None`` unfitted)."""
        return None if self._pair_user_counts is None else self._pair_user_counts.copy()

    def pair_estimates(self) -> Dict[LevelPair, np.ndarray]:
        """Per-level-pair cell estimates as ``(n_x, n_y)`` grids."""
        self._require_fitted()
        return {pair: grid.copy() for pair, grid in self._estimates.items()}

    # ------------------------------------------------------------------
    # Point validation / flattening
    # ------------------------------------------------------------------
    def flatten_points(self, points: np.ndarray) -> np.ndarray:
        """Validate an ``(n, 2)`` integer point array and flatten it.

        Returns the row-major item indices ``x * D + y`` accepted by the
        base-class collection API (and therefore by
        :class:`~repro.streaming.ShardedCollector` /
        :class:`~repro.service.IngestionService`).  Float coordinates are
        rejected outright — silently truncating ``[[0.9, 0.2]]`` to
        ``[[0, 0]]`` would corrupt the collected density without any error
        (the same hazard :meth:`~repro.core.base.RangeQueryMechanism.fit_items`
        guards against in one dimension); NaNs are caught by the same dtype
        gate.
        """
        points = np.asarray(points)
        if points.ndim != 2 or points.shape[1] != 2:
            raise InvalidQueryError("points must be an (n, 2) array of grid coordinates")
        if (
            points.size
            and not np.issubdtype(points.dtype, np.integer)
            and points.dtype != np.bool_  # bools cast to 0/1 without loss
        ):
            raise InvalidQueryError(
                f"points must have an integer dtype, got {points.dtype}; "
                "round or cast explicitly before collection"
            )
        if points.size and (points.min() < 0 or points.max() >= self._side):
            raise InvalidQueryError(f"points must lie in [0, {self._side})^2")
        points = points.astype(np.int64, copy=False)
        return points[:, 0] * self._side + points[:, 1]

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def fit_points(
        self,
        points: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "HierarchicalGrid2D":
        """Collect a population of ``(x, y)`` points (one-shot).

        Each user is assigned one level pair uniformly at random; her cell
        index at that resolution is perturbed with the configured oracle.
        ``mode="aggregate"`` (default) samples the aggregator's view
        directly; ``mode="per_user"`` runs the real local protocol per user.
        """
        return self.fit_items(
            self.flatten_points(points), random_state=random_state, mode=mode
        )

    def partial_fit_points(
        self,
        points: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "HierarchicalGrid2D":
        """Collect one additional batch of ``(x, y)`` points incrementally.

        The 2-D counterpart of
        :meth:`~repro.core.base.RangeQueryMechanism.partial_fit`: batches
        accumulate on top of everything collected so far, and each user must
        appear in exactly one batch overall.
        """
        return self.partial_fit(
            self.flatten_points(points), random_state=random_state, mode=mode
        )

    def _reset_accumulators(self) -> None:
        self._accumulators = {
            pair: self._oracles[pair].accumulator() for pair in self._pairs
        }
        self._pair_user_counts = np.zeros(len(self._pairs), dtype=np.int64)

    def _collect(
        self,
        items: Optional[np.ndarray],
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        self._reset_accumulators()
        self._accumulate_batch(items, counts, rng, mode)
        self._mark_dirty()

    def _partial_collect(
        self,
        items: np.ndarray,
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        if self._accumulators is None:
            self._reset_accumulators()
        self._accumulate_batch(items, counts, rng, mode)

    def _accumulate_batch(
        self,
        items: Optional[np.ndarray],
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        if mode == "per_user":
            self._accumulate_per_user(items, rng)
        else:
            self._accumulate_aggregate(counts, rng)

    def _accumulate_per_user(
        self, items: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Each user samples one level pair and runs the real local protocol.

        Only pairs that actually received users are visited (they are the
        only ones that consume protocol randomness, so the skip changes no
        random stream), and per-axis node indices are computed once per
        active axis level rather than once per pair — a tiny streaming
        batch costs O(active pairs), not O(h^2) mask scans.
        """
        n_pairs = len(self._pairs)
        assignments = rng.integers(0, n_pairs, size=items.shape[0])
        batch_pair_counts = np.bincount(assignments, minlength=n_pairs)
        self._pair_user_counts += batch_pair_counts
        x = items // self._side
        y = items - x * self._side
        x_nodes: Dict[int, np.ndarray] = {}
        y_nodes: Dict[int, np.ndarray] = {}
        for pair_index in np.flatnonzero(batch_pair_counts):
            lx, ly = self._pairs[pair_index]
            if lx not in x_nodes:
                x_nodes[lx] = self._tree.nodes_of_items(lx, x)
            if ly not in y_nodes:
                y_nodes[ly] = self._tree.nodes_of_items(ly, y)
            mask = assignments == pair_index
            ny = self._tree.nodes_at_level(ly)
            cells = x_nodes[lx][mask] * ny + y_nodes[ly][mask]
            oracle = self._oracles[(lx, ly)]
            self._accumulators[(lx, ly)].add(oracle.encode_batch(cells, rng))

    def _accumulate_aggregate(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Aggregate-mode collection: partition counts across pairs exactly.

        Each cell's count is split across the ``h^2`` level pairs with a
        multinomial (realised as sequential binomial thinning), the exact
        distribution of how pair sampling partitions the population;
        multinomial splits of separate batches add up to the split of the
        union, which is what makes this path incremental.  Each pair's cell
        counts then drive the oracle accumulator's simulated-aggregate path.

        The thinning and the per-pair cell histograms operate on the batch's
        *support* (cells with non-zero count) only — a small streaming batch
        costs O(nnz · h^2) entries instead of a padded ``B^h x B^h`` reshape
        and block-sum per pair, leaving the per-pair noise sampling inside
        ``add_counts`` as the only full-grid work.
        """
        n_pairs = len(self._pairs)
        support = np.flatnonzero(counts)
        remaining = counts[support].astype(np.int64)  # fancy indexing copies
        support_x = support // self._side
        support_y = support - support_x * self._side
        x_nodes: Dict[int, np.ndarray] = {}
        y_nodes: Dict[int, np.ndarray] = {}
        remaining_probability = 1.0
        probability = 1.0 / n_pairs
        for pair_index, pair in enumerate(self._pairs):
            if pair_index == n_pairs - 1:
                pair_counts = remaining
            else:
                share = 0.0 if remaining_probability <= 0 else min(
                    1.0, probability / remaining_probability
                )
                pair_counts = rng.binomial(remaining, share)
                remaining = remaining - pair_counts
                remaining_probability -= probability
            batch_users = int(pair_counts.sum())
            self._pair_user_counts[pair_index] += batch_users
            if batch_users == 0:
                continue
            lx, ly = pair
            if lx not in x_nodes:
                x_nodes[lx] = self._tree.nodes_of_items(lx, support_x)
            if ly not in y_nodes:
                y_nodes[ly] = self._tree.nodes_of_items(ly, support_y)
            ny = self._tree.nodes_at_level(ly)
            node_counts = np.bincount(
                x_nodes[lx] * ny + y_nodes[ly],
                weights=pair_counts,
                minlength=self._tree.nodes_at_level(lx) * ny,
            ).astype(np.int64)
            self._accumulators[pair].add_counts(node_counts, rng)

    # ------------------------------------------------------------------
    # Merging / persistence
    # ------------------------------------------------------------------
    def _merge_state(self, other: "HierarchicalGrid2D") -> None:
        if self._accumulators is None:
            self._reset_accumulators()
        for pair in self._pairs:
            self._accumulators[pair].merge(other._accumulators[pair])
        self._pair_user_counts += other._pair_user_counts

    def _merge_signature(self) -> tuple:
        return super()._merge_signature() + (
            self._side,
            self._oracle_name,
            self.branching,
            tuple(sorted(self._oracle_kwargs.items())),
        )

    def state_dict(self) -> dict:
        return self._pack_level_state(self._accumulators, self._pair_user_counts)

    def load_state_dict(self, state: dict) -> "HierarchicalGrid2D":
        n_users, accumulators, counts = self._unpack_level_state(
            state, self._pairs, lambda pair: self._oracles[pair].accumulator()
        )
        if accumulators is not None:
            self._accumulators = accumulators
            self._pair_user_counts = counts
            self._mark_dirty()
        else:
            self._accumulators = None
            self._pair_user_counts = None
            self._estimates = None
            self._pair_prefix = None
            self._mark_clean()
        self._n_users = n_users
        return self

    def _refresh_estimates(self) -> None:
        estimates: Dict[LevelPair, np.ndarray] = {}
        prefixes: Dict[LevelPair, np.ndarray] = {}
        for lx, ly in self._pairs:
            nx = self._tree.nodes_at_level(lx)
            ny = self._tree.nodes_at_level(ly)
            grid = np.asarray(
                self._accumulators[(lx, ly)].estimate(), dtype=np.float64
            ).reshape(nx, ny)
            estimates[(lx, ly)] = grid
            prefix = np.zeros((nx + 1, ny + 1))
            np.cumsum(np.cumsum(grid, axis=0), axis=1, out=prefix[1:, 1:])
            prefixes[(lx, ly)] = prefix
        self._estimates = estimates
        self._pair_prefix = prefixes

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer_rectangle(
        self, x_range: Tuple[int, int], y_range: Tuple[int, int]
    ) -> float:
        """Estimated fraction of users inside an axis-aligned rectangle.

        Both ranges are inclusive ``[start, end]`` pairs.
        """
        self._require_fitted()
        x_runs = decompose_to_runs(self._tree, int(x_range[0]), int(x_range[1]))
        y_runs = decompose_to_runs(self._tree, int(y_range[0]), int(y_range[1]))
        return self._sum_runs(x_runs, y_runs)

    def answer_rectangles(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`answer_rectangle` over ``(n, 4)`` rows
        ``(x_start, x_end, y_start, y_end)``.

        All queries are decomposed together per axis
        (:func:`~repro.hierarchy.decomposition.batched_axis_runs`, the 2-D
        sibling of the 1-D ``batched_range_sums`` walk); each level pair
        then contributes through a handful of fancy-indexed inclusion–
        exclusion gathers from its 2-D prefix-sum grid, so a workload of
        ``n`` rectangles costs ``O(h^2)`` numpy passes over length-``n``
        arrays instead of ``n`` Python-level run products.
        """
        self._require_fitted()
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 2 or queries.shape[1] != 4:
            raise InvalidQueryError(
                "rectangle queries must be an (n, 4) array of "
                "(x_start, x_end, y_start, y_end) rows"
            )
        if queries.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        if (
            queries.min() < 0
            or queries[:, 1].max() >= self._side
            or queries[:, 3].max() >= self._side
            or np.any(queries[:, 0] > queries[:, 1])
            or np.any(queries[:, 2] > queries[:, 3])
        ):
            # Fall back to the per-query path for its precise errors.
            return np.array(
                [
                    self.answer_rectangle((int(x0), int(x1)), (int(y0), int(y1)))
                    for x0, x1, y0, y1 in queries
                ]
            )
        x_runs = batched_axis_runs(self._tree, queries[:, 0], queries[:, 1])
        y_runs = batched_axis_runs(self._tree, queries[:, 2], queries[:, 3])
        answers = np.zeros(queries.shape[0], dtype=np.float64)
        for lx, ly in self._pairs:
            prefix = self._pair_prefix[(lx, ly)]
            for x_first, x_last in x_runs[lx]:
                for y_first, y_last in y_runs[ly]:
                    # Empty run slots (first == last) cancel to exactly 0.
                    answers += (
                        prefix[x_last, y_last]
                        - prefix[x_first, y_last]
                        - prefix[x_last, y_first]
                        + prefix[x_first, y_first]
                    )
        return answers

    def _sum_runs(self, x_runs: List[NodeRun], y_runs: List[NodeRun]) -> float:
        answer = 0.0
        for run_x in x_runs:
            for run_y in y_runs:
                prefix = self._pair_prefix[(run_x.level, run_y.level)]
                answer += (
                    prefix[run_x.last + 1, run_y.last + 1]
                    - prefix[run_x.first, run_y.last + 1]
                    - prefix[run_x.last + 1, run_y.first]
                    + prefix[run_x.first, run_y.first]
                )
        return float(answer)

    def _answer_range(self, start: int, end: int) -> float:
        """A flattened row-major range is a union of at most 3 rectangles:
        partial first row, full middle rows, partial last row."""
        side = self._side
        first_row, first_col = divmod(start, side)
        last_row, last_col = divmod(end, side)
        if first_row == last_row:
            rectangles = [(first_row, first_row, first_col, last_col)]
        else:
            rectangles = [
                (first_row, first_row, first_col, side - 1),
                (last_row, last_row, 0, last_col),
            ]
            if last_row > first_row + 1:
                rectangles.append((first_row + 1, last_row - 1, 0, side - 1))
        answer = 0.0
        for x0, x1, y0, y1 in rectangles:
            answer += self._sum_runs(
                decompose_to_runs(self._tree, x0, x1),
                decompose_to_runs(self._tree, y0, y1),
            )
        return answer

    def estimate_heatmap(self) -> np.ndarray:
        """Leaf-resolution estimate of the 2-D density (``D x D`` grid)."""
        self._require_fitted()
        leaves = self._estimates[(self._tree.height, self._tree.height)]
        return leaves[: self._side, : self._side].copy()

    def estimate_frequencies(self) -> np.ndarray:
        """Flattened row-major leaf estimates (matches single-cell ranges)."""
        return self.estimate_heatmap().reshape(-1)

    def theoretical_variance_bound(self, per_axis_length: int) -> float:
        """Rectangle-variance bound from the product decomposition.

        A ``r x r`` rectangle decomposes into at most ``2(B - 1)`` runs per
        axis level over ``alpha = min(h, ceil(log_B r) + 1)`` levels per
        axis, so at most ``(2(B - 1) alpha)^2`` cells are summed; each cell
        estimate carries variance ``h^2 V_F`` because level-pair sampling
        dilutes the population across ``h^2`` pairs.  Section 6 only
        sketches the multi-dimensional analysis; this is the 1-D eq. (1)
        argument applied per axis.
        """
        self._require_fitted()
        if (
            not isinstance(per_axis_length, (int, np.integer))
            or not 1 <= per_axis_length <= self._side
        ):
            raise InvalidQueryError("per_axis_length outside the domain")
        from repro.analysis.variance import grid2d_rectangle_variance

        return grid2d_rectangle_variance(
            epsilon=self.epsilon,
            n_users=int(self._n_users),
            per_axis_length=int(per_axis_length),
            domain_size=self._side,
            branching=self.branching,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HierarchicalGrid2D(epsilon={self.epsilon:.4g}, domain_size={self._side}, "
            f"branching={self.branching}, fitted={self.is_fitted})"
        )
