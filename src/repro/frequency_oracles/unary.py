"""Unary-encoding frequency oracles (SUE and OUE).

The user represents her item ``v`` as the one-hot bit vector ``e_v`` of
length ``D`` and flips every bit independently:

* **SUE** (symmetric unary encoding, basic RAPPOR): every bit is kept with
  probability ``e^{eps/2} / (1 + e^{eps/2})``;
* **OUE** (optimized unary encoding, Section 3.2 of the paper): the "1" bit
  is reported truthfully with probability ``1/2`` while each "0" bit is set
  with probability ``1 / (1 + e^eps)``.  This asymmetry minimises the
  estimator variance to ``4 e^eps / (N (e^eps - 1)^2)``.

Because the bit flips are independent across positions, the aggregator's
noisy count of each item is exactly the sum of two binomials — which is what
``simulate_aggregate`` samples, making the fast path *statistically
identical* to the per-user protocol (this is the simulation trick described
in Section 5 of the paper).

Report payloads come in two interchangeable layouts:

* **packed** (the default): ``{"packed_bits": uint8 (N, ceil(D / 8)),
  "n_bits": D}`` — each user's bit vector run through :func:`np.packbits`,
  8x smaller than the dense matrix and decoded by a blocked
  unpack-and-popcount column sum that never materialises the full matrix;
* **dense** (legacy): ``{"bits": uint8 (N, D)}``.

Both layouts decode to bit-identical column sums, so accumulators (and
their persisted snapshots) are agnostic to which layout fed them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro import kernels
from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.frequency_oracles.accumulators import OracleAccumulator
from repro.frequency_oracles.base import FrequencyOracle, OracleReports
from repro.privacy.mechanisms import (
    PerturbationProbabilities,
    oue_probabilities,
    sue_probabilities,
)
from repro.privacy.randomness import RandomState, as_generator

__all__ = [
    "PACK_UNARY_REPORTS",
    "UNARY_SUM_BLOCK_TARGET_BYTES",
    "packed_column_sums",
    "UnaryAccumulator",
    "SymmetricUnaryEncoding",
    "OptimizedUnaryEncoding",
]

#: Default report layout produced by :meth:`_UnaryEncodingOracle.encode_batch`.
#: ``True`` packs each user's bit vector with :func:`np.packbits` (8x less
#: report memory); set to ``False`` to restore the legacy dense matrices.
PACK_UNARY_REPORTS: bool = True

#: Working-set target (bytes of unpacked bits per block) for the packed
#: column-sum decode on the numpy backend.  Per-block sums accumulate in
#: uint16, so the block size is governed by this budget alone (the historic
#: uint8 accumulator additionally capped blocks at 255 rows, throttling
#: large-``n_bits`` decodes for no accuracy gain).  The compiled backend
#: never materialises the blocked intermediate and ignores the knob.
UNARY_SUM_BLOCK_TARGET_BYTES: int = 1 << 18


def packed_column_sums(packed: np.ndarray, n_bits: int) -> np.ndarray:
    """Column sums of a bit matrix packed along axis 1 with :func:`np.packbits`.

    Dispatches to the active :mod:`repro.kernels` backend.  The numpy
    reference processes the rows in blocks sized by
    :data:`UNARY_SUM_BLOCK_TARGET_BYTES`, unpacking each block contiguously
    and reducing it with a uint16 accumulator before widening; the numba
    backend histograms byte columns instead.  Both are bit-identical to
    ``np.unpackbits(packed, axis=1, count=n_bits).sum(axis=0)`` without ever
    materialising the dense matrix.
    """
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.ndim != 2 or packed.shape[1] != (n_bits + 7) // 8:
        raise InvalidQueryError(
            f"expected a packed matrix with {(n_bits + 7) // 8} byte columns "
            f"for {n_bits} bits, got shape {packed.shape}"
        )
    return kernels.unary_column_sums(packed, n_bits, UNARY_SUM_BLOCK_TARGET_BYTES)


class UnaryAccumulator(OracleAccumulator):
    """Sufficient statistic of a unary encoding: per-item "1"-bit sums.

    The noisy count of item ``j`` is the column sum of the reported bit
    matrix; columns are independent binomial mixtures, so batch sums (and
    merged shard sums) follow exactly the one-shot distribution.
    """

    def __init__(self, oracle: "_UnaryEncodingOracle") -> None:
        super().__init__(oracle)
        self._ones = np.zeros(oracle.domain_size, dtype=np.float64)

    def _add_reports(self, reports: OracleReports) -> None:
        domain_size = self._oracle.domain_size
        payload = reports.payload
        if "packed_bits" in payload:
            n_bits = int(payload.get("n_bits", domain_size))
            if n_bits != domain_size:
                raise InvalidQueryError(
                    f"packed reports carry {n_bits} bits per user, expected "
                    f"{domain_size}"
                )
            self._ones += packed_column_sums(payload["packed_bits"], domain_size)
            return
        bits = np.asarray(payload["bits"])
        if bits.ndim != 2 or bits.shape[1] != domain_size:
            raise InvalidQueryError(
                f"expected a reports matrix with {domain_size} columns"
            )
        self._ones += bits.sum(axis=0).astype(np.float64)

    def _add_simulated(self, counts: np.ndarray, rng: np.random.Generator) -> None:
        n_users = int(counts.sum())
        self._ones += rng.binomial(counts, self._oracle.p) + rng.binomial(
            n_users - counts, self._oracle.q
        )

    def _merge_statistic(self, other: "UnaryAccumulator") -> None:
        self._ones += other._ones

    def _statistic_arrays(self) -> dict:
        return {"ones": self._ones}

    def _load_statistic_arrays(self, arrays: dict) -> None:
        self._ones = arrays["ones"]

    def estimate(self) -> np.ndarray:
        return self._oracle._unbias(self._ones, self._n_users)


class _UnaryEncodingOracle(FrequencyOracle):
    """Shared implementation of the two unary encodings."""

    def __init__(self, epsilon: float, domain_size: int) -> None:
        super().__init__(epsilon, domain_size)
        self._probabilities = self._make_probabilities(epsilon)

    def _make_probabilities(self, epsilon: float) -> PerturbationProbabilities:
        raise NotImplementedError

    @property
    def p(self) -> float:
        """Probability of reporting "1" for the user's own item."""
        return self._probabilities.p

    @property
    def q(self) -> float:
        """Probability of reporting "1" for any other item."""
        return self._probabilities.q

    # ------------------------------------------------------------------
    # User side
    # ------------------------------------------------------------------
    def encode(self, value: int, random_state: RandomState = None) -> Dict[str, Any]:
        """Report layout: ``{"bits": uint8 array of length D}``."""
        value = self._check_value(value)
        rng = as_generator(random_state)
        bits = (rng.random(self._domain_size) < self.q).astype(np.uint8)
        bits[value] = np.uint8(rng.random() < self.p)
        return {"bits": bits}

    def encode_batch(
        self,
        values: np.ndarray,
        random_state: RandomState = None,
        packed: Optional[bool] = None,
    ) -> OracleReports:
        """Encode a population; ``packed`` overrides :data:`PACK_UNARY_REPORTS`.

        The random draws are identical in both layouts, so a packed batch and
        a dense batch produced from the same generator state decode to
        bit-identical estimates.
        """
        values = self._check_values(values)
        rng = as_generator(random_state)
        n_users = values.shape[0]
        bits = (rng.random((n_users, self._domain_size)) < self.q).astype(np.uint8)
        if n_users:
            bits[np.arange(n_users), values] = (
                rng.random(n_users) < self.p
            ).astype(np.uint8)
        if packed is None:
            packed = PACK_UNARY_REPORTS
        if packed:
            return OracleReports(
                payload={
                    "packed_bits": np.packbits(bits, axis=1),
                    "n_bits": self._domain_size,
                },
                n_users=n_users,
            )
        return OracleReports(payload={"bits": bits}, n_users=n_users)

    # ------------------------------------------------------------------
    # Aggregator side
    # ------------------------------------------------------------------
    def accumulator(self) -> UnaryAccumulator:
        """Mergeable accumulator over the per-item "1"-bit column sums."""
        return UnaryAccumulator(self)

    def aggregate(self, reports: OracleReports) -> np.ndarray:
        return self.accumulator().add(reports).estimate()

    def simulate_aggregate(
        self, true_counts: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Exact fast path: noisy count = Bino(c_j, p) + Bino(N - c_j, q)."""
        return self.accumulator().add_counts(true_counts, random_state).estimate()

    def _unbias(self, ones: np.ndarray, n_users: int) -> np.ndarray:
        if n_users == 0:
            return np.zeros(self._domain_size)
        observed = ones / float(n_users)
        return (observed - self.q) / (self.p - self.q)

    def theoretical_variance(self, n_users: int) -> float:
        """Small-frequency variance ``q (1 - q) / (N (p - q)^2)``.

        For OUE this equals the canonical ``4 e^eps / (N (e^eps - 1)^2)``.
        """
        if n_users <= 0:
            raise ConfigurationError(f"n_users must be positive, got {n_users!r}")
        p, q = self.p, self.q
        return q * (1.0 - q) / (n_users * (p - q) ** 2)


class SymmetricUnaryEncoding(_UnaryEncodingOracle):
    """Basic RAPPOR: symmetric per-bit randomized response with ``eps/2``."""

    name = "sue"

    def _make_probabilities(self, epsilon: float) -> PerturbationProbabilities:
        return sue_probabilities(epsilon)


class OptimizedUnaryEncoding(_UnaryEncodingOracle):
    """OUE [Wang et al. 2017]: ``p = 1/2``, ``q = 1 / (1 + e^eps)``.

    The paper uses OUE both as its flat baseline and (as ``TreeOUE``) as the
    per-level primitive of the hierarchical histogram framework.
    """

    name = "oue"

    def _make_probabilities(self, epsilon: float) -> PerturbationProbabilities:
        return oue_probabilities(epsilon)
