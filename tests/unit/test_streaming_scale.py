"""Unit tests for dynamic shard-set scaling on the ShardedCollector.

The contract under test: shard count is a pure throughput knob *even when
it changes mid-run*.  Growth spawns mechanisms on the seed's next random
streams (SeedSequence spawn-counter continuity), shrink rebalances retired
sufficient statistics into survivors via exact merging, stream ids are
stable and never reused — so a run with any schedule of scale events
reduces bit-identically to a static run that pinned every batch onto the
same streams.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streaming import ShardedCollector
from repro.streaming.routing import LeastLoadedRouter, RoundRobinRouter

DOMAIN = 64
EPSILON = 1.0


def make_collector(n_shards=2, router=None, seed=7, spec="flat_oue"):
    return ShardedCollector(
        spec,
        epsilon=EPSILON,
        domain_size=DOMAIN,
        n_shards=n_shards,
        random_state=seed,
        router=router,
    )


class TestGrow:
    def test_add_shards_returns_new_indices_and_extends_streams(self):
        collector = make_collector(n_shards=2)
        assert collector.stream_ids == [0, 1]
        new = collector.add_shards(2)
        assert new == [2, 3]
        assert collector.n_shards == 4
        assert collector.stream_ids == [0, 1, 2, 3]
        assert collector.streams_spawned == 4

    def test_add_shards_validates_count(self):
        collector = make_collector()
        with pytest.raises(ConfigurationError):
            collector.add_shards(0)
        with pytest.raises(ConfigurationError):
            collector.add_shards(-1)

    def test_incremental_growth_matches_upfront_spawn(self, rng):
        """Spawn-counter continuity: growing 2 -> 4 yields the same streams
        as constructing with 4 shards up front."""
        items = rng.integers(0, DOMAIN, size=8_000)
        batches = np.array_split(items, 4)

        grown = make_collector(n_shards=2)
        grown.submit(batches[0], shard=0)
        grown.submit(batches[1], shard=1)
        grown.add_shards(2)
        grown.submit(batches[2], shard=2)
        grown.submit(batches[3], shard=3)

        static = make_collector(n_shards=4)
        for shard, batch in enumerate(batches):
            static.submit(batch, shard=shard)

        assert np.array_equal(
            grown.reduce().estimate_frequencies(),
            static.reduce().estimate_frequencies(),
        )

    def test_router_follows_growth(self):
        collector = make_collector(n_shards=2, router="round-robin")
        collector.add_shards(2)
        seen = {collector.route(10) for _ in range(8)}
        assert seen == {0, 1, 2, 3}


class TestShrink:
    def test_shrink_returns_retired_stream_and_survivor_pairs(self):
        collector = make_collector(n_shards=4)
        moves = collector.shrink_to(2)
        assert [stream for stream, _ in moves] == [3, 2]
        assert all(0 <= survivor < 3 for _, survivor in moves)
        assert collector.n_shards == 2
        assert collector.stream_ids == [0, 1]
        # Spawn counter is *not* rewound: retired streams stay retired.
        assert collector.streams_spawned == 4

    def test_shrink_validates_target(self):
        collector = make_collector(n_shards=2)
        with pytest.raises(ConfigurationError):
            collector.shrink_to(0)
        with pytest.raises(ConfigurationError):
            collector.shrink_to(3)

    def test_shrink_merges_statistics_into_survivor(self, rng):
        collector = make_collector(n_shards=3)
        batches = [rng.integers(0, DOMAIN, size=2_000) for _ in range(3)]
        for shard, batch in enumerate(batches):
            collector.submit(batch, shard=shard)
        users_before = sum(shard.n_users for shard in collector.shards)
        collector.shrink_to(1)
        assert collector.shards[0].n_users == users_before

    def test_shrink_prefers_least_loaded_survivor(self, rng):
        router = LeastLoadedRouter()
        collector = make_collector(n_shards=3, router=router)
        # Load shards unevenly via the router's accounting.
        collector.submit(rng.integers(0, DOMAIN, size=3_000), shard=0)
        router.observe(0, 3_000)
        collector.submit(rng.integers(0, DOMAIN, size=100), shard=1)
        router.observe(1, 100)
        moves = collector.shrink_to(2)
        assert moves == [(2, 1)]  # shard 1 carries the least load

    def test_grow_after_shrink_spawns_fresh_streams(self, rng):
        """Stream ids are never reused: after retiring stream 3, the next
        growth mints stream 4 — and a 5-stream static replay matches."""
        batch = rng.integers(0, DOMAIN, size=4_000)
        collector = make_collector(n_shards=4)
        collector.shrink_to(3)
        new = collector.add_shards(1)
        assert collector.stream_ids == [0, 1, 2, 4]
        assert new == [3]  # index 3, but stream id 4

        collector.submit(batch, shard=3)  # lands on stream 4
        static = make_collector(n_shards=5)
        static.submit(batch, shard=4)
        assert np.array_equal(
            collector.reduce().estimate_frequencies(),
            static.reduce().estimate_frequencies(),
        )


class TestScaleScheduleBitIdentity:
    def test_arbitrary_scale_schedule_matches_static_replay(self, rng):
        """The headline contract: grow/shrink events interleaved with
        submissions reduce bit-identically to a static collector with one
        shard per stream ever spawned, batches pinned to logged streams."""
        batches = [rng.integers(0, DOMAIN, size=500) for _ in range(30)]
        collector = make_collector(n_shards=2, router="least-loaded")
        placements = []
        for index, batch in enumerate(batches):
            if index == 8:
                collector.add_shards(2)
            elif index == 18:
                collector.shrink_to(3)
            elif index == 24:
                collector.add_shards(1)
            shard = collector.submit(batch)
            placements.append(collector.stream_ids[shard])

        static = make_collector(
            n_shards=collector.streams_spawned, router="least-loaded"
        )
        for batch, stream in zip(batches, placements):
            static.submit(batch, shard=stream)
        assert np.array_equal(
            collector.reduce().estimate_frequencies(),
            static.reduce().estimate_frequencies(),
        )


class TestCheckpointAcrossScaleEvents:
    def test_checkpoint_preserves_stream_identity_and_spawn_counter(self, rng):
        collector = make_collector(n_shards=3)
        collector.shrink_to(2)
        collector.submit(rng.integers(0, DOMAIN, size=1_000))
        restored = ShardedCollector.from_checkpoint_bytes(
            collector.checkpoint_bytes()
        )
        assert restored.stream_ids == collector.stream_ids
        assert restored.streams_spawned == collector.streams_spawned

    def test_restored_collector_grows_onto_the_same_streams(self, rng):
        """A restore mid-schedule must continue the seed's spawn sequence:
        growth after restore produces the same mechanisms as growth on the
        original."""
        batch = rng.integers(0, DOMAIN, size=2_000)

        original = make_collector(n_shards=2)
        restored = ShardedCollector.from_checkpoint_bytes(
            original.checkpoint_bytes()
        )
        for collector in (original, restored):
            collector.add_shards(1)
            collector.submit(batch, shard=2)
        assert np.array_equal(
            original.reduce().estimate_frequencies(),
            restored.reduce().estimate_frequencies(),
        )


class TestRouterScaleHooks:
    def test_round_robin_resize_wraps_cursor(self):
        router = RoundRobinRouter().bind(4)
        for _ in range(3):
            router.route(1)
        router.resize(2)
        assert router.route(1) in (0, 1)

    def test_least_loaded_fold_moves_load(self):
        router = LeastLoadedRouter().bind(3)
        router.observe(2, 500)
        router.fold(2, 0)
        assert router.loads == [500, 0, 0]
        with pytest.raises(ConfigurationError):
            router.fold(1, 1)

    def test_least_loaded_release_floors_at_zero(self):
        router = LeastLoadedRouter().bind(2)
        router.observe(0, 100)
        router.release(0, 40)
        assert router.loads[0] == 60
        router.release(0, 1_000)
        assert router.loads[0] == 0

    def test_least_loaded_resize_grow_and_shrink(self):
        router = LeastLoadedRouter().bind(2)
        router.observe(0, 10)
        router.resize(4)
        assert router.loads == [10, 0, 0, 0]
        router.fold(3, 0)
        router.fold(2, 0)
        router.resize(2)
        assert router.loads == [10, 0]

    def test_bind_still_refuses_count_change(self):
        router = RoundRobinRouter().bind(2)
        with pytest.raises(ConfigurationError, match="cannot rebind"):
            router.bind(3)
        router.resize(3)  # the sanctioned path
        assert router.n_shards == 3
