"""Unit tests for the :mod:`repro.kernels` backend registry."""

import numpy as np
import pytest

from repro import kernels
from repro.exceptions import ConfigurationError
from repro.kernels import registry


@pytest.fixture(autouse=True)
def reset_backend():
    """Every test starts and ends in auto-detect mode with no env override."""
    kernels.set_backend(None)
    yield
    kernels.set_backend(None)


class TestBackendSelection:
    def test_defaults_to_auto(self, monkeypatch):
        monkeypatch.delenv(kernels.BACKEND_ENV_VAR, raising=False)
        assert kernels.requested_backend() == "auto"
        assert kernels.active_backend() in ("numpy", "numba")

    def test_env_var_selects_numpy(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV_VAR, "numpy")
        kernels.set_backend(None)  # drop the cached resolution
        assert kernels.requested_backend() == "numpy"
        assert kernels.active_backend() == "numpy"

    def test_env_var_typo_degrades_to_auto(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV_VAR, "nmba")
        kernels.set_backend(None)
        assert kernels.requested_backend() == "auto"
        assert kernels.active_backend() in ("numpy", "numba")

    def test_env_var_numba_degrades_when_unavailable(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV_VAR, "numba")
        kernels.set_backend(None)
        # Graceful: the env path never takes the process down.
        expected = "numba" if kernels.numba_available() else "numpy"
        assert kernels.active_backend() == expected

    def test_set_backend_numpy_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV_VAR, "numba")
        assert kernels.set_backend("numpy") == "numpy"
        assert kernels.active_backend() == "numpy"

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            kernels.set_backend("cuda")

    def test_explicit_numba_raises_when_unavailable(self):
        if kernels.numba_available():
            pytest.skip("numba present: the explicit request succeeds")
        with pytest.raises(ConfigurationError):
            kernels.set_backend("numba")

    def test_use_backend_restores_previous_request(self):
        kernels.set_backend("numpy")
        with kernels.use_backend(None) as active:
            assert active in ("numpy", "numba")
        assert kernels.requested_backend() == "numpy"
        assert kernels.active_backend() == "numpy"

    def test_available_backends_lists_numpy_first(self):
        available = kernels.available_backends()
        assert available[0] == "numpy"
        assert set(available) <= set(kernels.BACKENDS)


class TestKernelLookup:
    def test_get_kernel_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            kernels.get_kernel("matmul")

    def test_get_kernel_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            kernels.get_kernel("olh_decode", backend="cuda")

    def test_numpy_implements_every_kernel(self):
        for name in kernels.KERNEL_NAMES:
            assert callable(kernels.get_kernel(name, backend="numpy"))

    def test_dispatch_wrappers_call_active_backend(self):
        packed = np.packbits(np.eye(8, dtype=np.uint8), axis=1)
        sums = kernels.unary_column_sums(packed, 8, 1 << 18)
        assert np.array_equal(sums, np.ones(8, dtype=np.int64))

    def test_missing_backend_falls_through_to_numpy(self):
        # "numba" without the compiled backend loaded resolves to the twin.
        fn = kernels.get_kernel("unary_column_sums", backend="numba")
        packed = np.packbits(np.zeros((3, 8), dtype=np.uint8), axis=1)
        assert np.array_equal(fn(packed, 8, 1 << 18), np.zeros(8, dtype=np.int64))


class TestRegistryContract:
    def test_register_kernel_rejects_unknown_backend_and_name(self):
        with pytest.raises(ConfigurationError):
            registry.register_kernel("cuda", "olh_decode")
        with pytest.raises(ConfigurationError):
            registry.register_kernel("numpy", "matmul")

    def test_verify_registry_accepts_current_state(self):
        registry.verify_registry()
        assert registry.missing_numpy_twins() == []

    def test_verify_registry_flags_compiled_only_kernel(self):
        registry._registry["numba"]["olh_decode"] = lambda *args: None
        saved = registry._registry["numpy"].pop("olh_decode")
        try:
            assert registry.missing_numpy_twins() == ["numba:olh_decode"]
            with pytest.raises(ConfigurationError, match="LDP-R007"):
                registry.verify_registry()
        finally:
            registry._registry["numpy"]["olh_decode"] = saved
            registry._registry["numba"].pop("olh_decode", None)

    def test_backend_info_shape(self):
        info = kernels.backend_info()
        assert info["requested"] in ("auto",) + kernels.BACKENDS
        assert info["active"] in kernels.BACKENDS
        assert info["numba_available"] == kernels.numba_available()
        assert "numpy" in info["available"]
