"""Pure-numpy reference implementations of the hot kernels.

These are the always-available, always-correct fallbacks: every compiled
kernel is validated bit-for-bit against the functions in this module (see
``tests/property/test_kernel_backends.py``).  All three are pure integer
functions of their inputs — no randomness, no global state — which is what
makes cross-backend bit-identity a meaningful contract rather than a
tolerance.

All tunable block sizes arrive as explicit arguments (the module-level
knobs live with the callers, e.g. ``UNARY_SUM_BLOCK_TARGET_BYTES`` in
:mod:`repro.frequency_oracles.unary`), so the kernels stay stateless and
the registry can swap implementations freely.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.registry import register_kernel

__all__ = ["unary_column_sums", "olh_decode", "badic_axis_runs"]


@register_kernel("numpy", "unary_column_sums")
def unary_column_sums(
    packed: np.ndarray, n_bits: int, block_target_bytes: int
) -> np.ndarray:
    """Column sums of a bit matrix packed along axis 1 with ``np.packbits``.

    Rows are processed in blocks whose unpacked working set stays inside
    ``block_target_bytes``; each block is unpacked contiguously and reduced
    with a uint16 accumulator before widening into the int64 totals.  The
    uint16 accumulator caps a block at 65535 rows — far above any working-set
    target in practice — so the block size is governed by the byte budget
    alone (the old uint8 accumulator forced <=255-row blocks at large
    ``n_bits``, throttling throughput for no accuracy gain: column sums of
    0/1 bits are exact integers in either width).
    """
    totals = np.zeros(n_bits, dtype=np.int64)
    block = int(max(1, min(65535, block_target_bytes // max(1, n_bits))))
    for start in range(0, packed.shape[0], block):
        chunk = np.unpackbits(packed[start : start + block], axis=1, count=n_bits)
        totals += np.add.reduce(chunk, axis=0, dtype=np.uint16)
    return totals


@register_kernel("numpy", "olh_decode")
def olh_decode(
    a: np.ndarray,
    b: np.ndarray,
    values: np.ndarray,
    domain_size: int,
    hash_range: int,
    prime: int,
    block_target_bytes: int,
) -> np.ndarray:
    """Per-item support counts of OLH reports: the ``O(N * D)`` decode.

    Item ``j`` is supported by report ``u`` when ``((a_u * j + b_u) % prime)
    % hash_range == values_u``.  The loop is blocked over users so the
    intermediate hash/match buffers stay inside ``block_target_bytes``; the
    buffers are allocated once and reused across blocks.  Support counts are
    exact integers, so the block size cannot change the result.
    """
    n_users = int(a.shape[0])
    support = np.zeros(domain_size, dtype=np.int64)
    if n_users == 0:
        return support
    items = np.arange(domain_size, dtype=np.int64)
    row_bytes = domain_size * (np.dtype(np.int64).itemsize + np.dtype(bool).itemsize)
    block = int(max(1, min(n_users, block_target_bytes // max(1, row_bytes))))
    hashed = np.empty((block, domain_size), dtype=np.int64)
    matches = np.empty((block, domain_size), dtype=bool)
    for start in range(0, n_users, block):
        stop = min(start + block, n_users)
        size = stop - start
        buffer = hashed[:size]
        np.multiply(a[start:stop, None], items[None, :], out=buffer)
        buffer += b[start:stop, None]
        buffer %= prime
        buffer %= hash_range
        np.equal(buffer, values[start:stop, None], out=matches[:size])
        support += matches[:size].sum(axis=0)
    return support


@register_kernel("numpy", "badic_axis_runs")
def badic_axis_runs(
    starts: np.ndarray, ends: np.ndarray, branching: int, height: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The per-level B-adic peel of many range queries at once.

    Returns ``(runs, survivors)`` where ``runs`` has shape ``(height, 4,
    n)``: row ``i`` holds, for tree level ``height - i`` (finest first), the
    four node-index bounds ``(left_first, left_end, right_first, right_end)``
    of the level's left/right peel in prefix-sum coordinates (``first ==
    end`` marks an empty run).  ``survivors`` flags queries covering the
    whole padded domain, which the caller charges as the full level-1 run.
    All arithmetic is exact int64, so every backend agrees bit-for-bit.
    """
    n_queries = int(starts.shape[0])
    lo = starts.astype(np.int64, copy=True)
    hi = ends.astype(np.int64, copy=True) + 1  # exclusive upper bounds
    runs = np.empty((height, 4, n_queries), dtype=np.int64)
    block = 1
    for index in range(height):
        coarse = block * branching
        left_end = np.minimum(hi, ((lo + coarse - 1) // coarse) * coarse)
        right_start = np.maximum(left_end, (hi // coarse) * coarse)
        runs[index, 0] = lo // block
        runs[index, 1] = left_end // block
        runs[index, 2] = right_start // block
        runs[index, 3] = hi // block
        lo, hi = left_end, right_start
        block = coarse
    return runs, lo < hi
