"""Streaming/sharded collection — shard-count scaling and batched queries.

Not a paper figure: this benchmark exercises the serving-side posture the
streaming subsystem adds on top of the paper's one-shot protocols.  It
checks two properties at benchmark scale:

* **shard-count invariance** — collecting the same population through a
  :class:`~repro.streaming.ShardedCollector` with K = 1, 2, 4, 8 shards and
  reducing yields workload errors statistically indistinguishable from a
  one-shot fit (merging sufficient statistics is exact, so K is a pure
  throughput knob);
* **batched B-adic evaluation** — answering a large workload on a
  non-consistency ``HH_B`` mechanism via the vectorised decomposition is
  far faster than the per-query Python loop it replaced (the acceptance
  bar is 5x; typical speedups are two orders of magnitude).

Run with ``pytest benchmarks/bench_streaming_shards.py --benchmark-only -s``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.factory import mechanism_from_spec
from repro.data.synthetic import cauchy_probabilities, sample_items
from repro.data.workloads import random_range_queries
from repro.experiments.reporting import format_table
from repro.streaming import one_shot_vs_sharded

SPEC = "hhc_4"
EPSILON = 1.1
SHARD_COUNTS = (1, 2, 4, 8)


@pytest.mark.benchmark(group="streaming")
def test_shard_count_scaling(run_once, bench_config):
    """Reduced estimates stay one-shot-accurate for every shard count."""
    domain = 1 << 10
    seed = bench_config.seed
    items = sample_items(cauchy_probabilities(domain), bench_config.n_users, random_state=seed)
    workload = random_range_queries(
        domain,
        min(bench_config.max_queries_per_workload, 4000),
        random_state=seed,
        name="streaming-bench",
    )

    rows = run_once(
        one_shot_vs_sharded, SPEC, EPSILON, items, workload, SHARD_COUNTS, seed
    )
    print(f"\n=== Streaming | {SPEC} | D = {domain} | N = {bench_config.n_users} ===")
    print(format_table(["collection", "shards", "batches", "mse x1000", "seconds"], rows))

    errors = [row[3] for row in rows]
    baseline = errors[0]
    # Shard-count invariance: every sharded error within noise of one-shot.
    for error in errors[1:]:
        assert error < 3.0 * baseline + 1e-6
    assert min(errors[1:]) < 3.0 * baseline


@pytest.mark.benchmark(group="streaming")
def test_batched_badic_workload(run_once):
    """Vectorised non-consistency answer_ranges beats the per-query loop 5x."""
    domain = 1 << 12
    rng = np.random.default_rng(7)
    items = rng.integers(0, domain, size=200_000)
    mechanism = mechanism_from_spec("hh_4", epsilon=EPSILON, domain_size=domain)
    mechanism.fit_items(items, random_state=11)
    queries = random_range_queries(domain, 10_000, random_state=13).queries

    batched = run_once(mechanism.answer_ranges, queries)
    start = time.perf_counter()
    batched_elapsed_start = start
    mechanism.answer_ranges(queries)
    batched_elapsed = time.perf_counter() - batched_elapsed_start

    start = time.perf_counter()
    looped = np.array(
        [mechanism._answer_range(int(a), int(b)) for a, b in queries]
    )
    loop_elapsed = time.perf_counter() - start

    np.testing.assert_allclose(batched, looped, atol=1e-9)
    speedup = loop_elapsed / max(batched_elapsed, 1e-9)
    print(
        f"\n=== Batched B-adic | D = {domain} | {len(queries)} queries | "
        f"batched {batched_elapsed:.4f}s vs loop {loop_elapsed:.4f}s "
        f"({speedup:.0f}x) ==="
    )
    assert speedup >= 5.0
