"""Privelet: centralized DP via the Haar wavelet transform (Xiao et al. [29]).

The trusted aggregator computes the (orthonormal) Haar coefficients of the
exact count vector and adds Laplace noise to each of them.  A single user's
change moves the scaling coefficient by ``1/sqrt(D)`` and exactly one detail
coefficient per level ``m`` by ``1/2^{m/2}``, so adding noise of scale
``lambda_m`` to the height-``m`` coefficients is ``epsilon``-DP whenever

    (1/sqrt(D)) / lambda_0  +  sum_m (1/2^{m/2}) / lambda_m  <=  epsilon.

Following Privelet's equal-contribution weighting, each of the ``h + 1``
terms is allotted ``epsilon / (h + 1)``, i.e.

    lambda_0 = (h + 1) / (epsilon sqrt(D)),
    lambda_m = (h + 1) / (epsilon 2^{m/2}),

which yields range-query variance growing as ``O(log^3 D / epsilon^2)`` —
the behaviour Qardaji et al. tabulate and the paper reproduces in Figure 7.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import InvalidDomainError, InvalidQueryError, NotFittedError
from repro.privacy.budget import PrivacyBudget
from repro.privacy.randomness import RandomState, as_generator
from repro.transforms.haar import haar_forward, haar_inverse, haar_range_weights
from repro.transforms.hadamard import is_power_of_two

__all__ = ["PriveletWavelet"]


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


class PriveletWavelet:
    """Centralized wavelet mechanism (Privelet)."""

    def __init__(self, epsilon: float, domain_size: int) -> None:
        self._budget = PrivacyBudget(epsilon)
        if not isinstance(domain_size, (int, np.integer)) or domain_size < 2:
            raise InvalidDomainError(
                f"domain size must be an integer >= 2, got {domain_size!r}"
            )
        self._domain_size = int(domain_size)
        self._padded_size = (
            self._domain_size
            if is_power_of_two(self._domain_size)
            else _next_power_of_two(self._domain_size)
        )
        self._height = self._padded_size.bit_length() - 1
        self._coefficients: Optional[np.ndarray] = None
        self._frequencies: Optional[np.ndarray] = None
        self._prefix: Optional[np.ndarray] = None
        self._n_users: Optional[int] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        return self._budget.epsilon

    @property
    def domain_size(self) -> int:
        return self._domain_size

    @property
    def padded_size(self) -> int:
        return self._padded_size

    @property
    def height(self) -> int:
        return self._height

    @property
    def is_fitted(self) -> bool:
        return self._coefficients is not None

    def noise_scale(self, height: int) -> float:
        """Laplace scale applied to coefficients of the given height.

        ``height = 0`` denotes the scaling coefficient.
        """
        if not 0 <= height <= self._height:
            raise InvalidQueryError(
                f"height must be in [0, {self._height}], got {height!r}"
            )
        budget_share = self.epsilon / (self._height + 1)
        if height == 0:
            sensitivity = 1.0 / np.sqrt(self._padded_size)
        else:
            sensitivity = 1.0 / (2.0 ** (height / 2.0))
        return sensitivity / budget_share

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def fit_counts(
        self, counts: np.ndarray, random_state: RandomState = None
    ) -> "PriveletWavelet":
        """Release noisy Haar coefficients for the exact count vector."""
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape != (self._domain_size,):
            raise InvalidDomainError(
                f"expected {self._domain_size} counts, got shape {counts.shape}"
            )
        rng = as_generator(random_state)
        padded = np.zeros(self._padded_size, dtype=np.float64)
        padded[: self._domain_size] = counts
        coefficients = haar_forward(padded)
        noisy = coefficients.copy()
        noisy[0] += rng.laplace(0.0, self.noise_scale(0))
        for height in range(1, self._height + 1):
            start = self._padded_size >> height
            noisy[start : 2 * start] += rng.laplace(
                0.0, self.noise_scale(height), size=start
            )
        self._coefficients = noisy
        frequencies = haar_inverse(noisy)[: self._domain_size]
        self._frequencies = frequencies
        self._prefix = np.concatenate([[0.0], np.cumsum(frequencies)])
        self._n_users = int(round(counts.sum()))
        return self

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer_range(self, start: int, end: int, normalized: bool = True) -> float:
        """Range estimate; normalized to a population fraction by default."""
        if self._coefficients is None:
            raise NotFittedError("fit_counts must be called first")
        if not 0 <= start <= end < self._domain_size:
            raise InvalidQueryError(f"invalid range [{start}, {end}]")
        answer = float(self._prefix[end + 1] - self._prefix[start])
        if normalized:
            if not self._n_users:
                return 0.0
            answer /= float(self._n_users)
        return answer

    def answer_ranges(self, queries: np.ndarray, normalized: bool = True) -> np.ndarray:
        """Vectorised :meth:`answer_range` via the prefix sums."""
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 2 or queries.shape[1] != 2:
            raise InvalidQueryError("queries must be an (n, 2) array")
        answers = self._prefix[queries[:, 1] + 1] - self._prefix[queries[:, 0]]
        if normalized and self._n_users:
            answers = answers / float(self._n_users)
        return answers

    def range_query_variance(self, start: int, end: int, normalized: bool = True) -> float:
        """Exact variance of one range answer (closed form).

        The answer is a fixed linear combination of independently noised
        coefficients, so its variance is the weighted sum of the per-level
        Laplace variances ``2 lambda_m^2``.
        """
        if not 0 <= start <= end < self._domain_size:
            raise InvalidQueryError(f"invalid range [{start}, {end}]")
        indices, weights = haar_range_weights(start, end, self._padded_size)
        variance = 0.0
        for index, weight in zip(indices, weights):
            if index == 0:
                height = 0
            else:
                # Height m coefficients live at indices [D >> m, D >> (m-1)).
                height = self._height - (int(index).bit_length() - 1)
            scale = self.noise_scale(height)
            variance += float(weight) ** 2 * 2.0 * scale**2
        if normalized:
            if not self._n_users:
                raise NotFittedError("fit_counts must be called before normalization")
            variance /= float(self._n_users) ** 2
        return variance
