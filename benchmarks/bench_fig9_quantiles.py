"""Figure 9 — decile (quantile) estimation.

For a left-skewed (P = 0.1) and a centered (P = 0.5) Cauchy input, the nine
deciles are estimated with the best consistent hierarchical histogram and
with HaarHRR.  Both the value error (distance in items between the returned
and the true decile) and the quantile error (distance in probability mass)
are reported, matching the two rows of Figure 9.  The paper's take-away is
that the quantile error stays essentially flat and tiny even where sparse
data makes the value error spike.
"""

from __future__ import annotations

import pytest

from repro.core.quantiles import DECILES
from repro.experiments.figures import figure9_quantiles
from repro.experiments.reporting import format_table


@pytest.mark.benchmark(group="figure9")
@pytest.mark.parametrize("center", [0.1, 0.5], ids=["left-skewed", "centered"])
def test_figure9_decile_estimation(run_once, bench_config, center):
    domain = 1 << 12
    methods = ("hhc_2", "haar")
    # Quantile accuracy is where population size matters most (the paper
    # runs N = 2^26); the aggregate simulation makes a larger N cheap here.
    config = bench_config.scaled(n_users=max(bench_config.n_users, 1 << 20))
    results = run_once(
        figure9_quantiles,
        config,
        domain,
        centers=(center,),
        methods=methods,
    )
    per_method = results[center]

    rows = []
    for index, phi in enumerate(DECILES):
        rows.append(
            [
                phi,
                per_method["hhc_2"]["value_error"][index],
                per_method["haar"]["value_error"][index],
                per_method["hhc_2"]["quantile_error"][index],
                per_method["haar"]["quantile_error"][index],
            ]
        )
    print(f"\n=== Figure 9 | D = 2^12, P = {center} | decile errors ===")
    print(
        format_table(
            ["phi", "value err HHc_2", "value err Haar", "q-err HHc_2", "q-err Haar"], rows
        )
    )

    for method in methods:
        value_error = per_method[method]["value_error"]
        quantile_error = per_method[method]["quantile_error"]
        # Value error stays below a small percentage of the domain (the
        # paper reports < 1% at N = 2^26; allow 5% at this reduced scale).
        assert value_error.mean() < 0.05 * domain
        # Quantile error is small and flat across the deciles.
        assert quantile_error.max() < 0.05
        assert quantile_error.mean() < 0.025
