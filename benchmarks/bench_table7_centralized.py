"""Figure 7 — contrast with the centralized case (Qardaji et al. Table 3).

The paper reproduces a table from Qardaji et al. showing that in the
*centralized* model the wavelet approach (Privelet) incurs roughly 1.9-2.8x
the average variance of an optimised consistent hierarchical histogram,
whereas in the *local* model the two families are nearly tied.  This
benchmark regenerates both halves of that contrast:

* the centralized mechanisms (Privelet, HHc_16, HHc_2) are fitted on the
  Cauchy dataset and their average squared error over range queries is
  measured, along with the Wavelet/HHc_16 and HHc_2/HHc_16 ratios;
* the corresponding local ratio (HaarHRR vs the best consistent HH) is
  measured at eps = 1 and shown to be close to 1, the paper's key point.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    table5_epsilon_ranges,
    table7_centralized_comparison,
)
from repro.experiments.reporting import format_table


@pytest.mark.benchmark(group="table7")
def test_table7_centralized_ratios(run_once, bench_config):
    # Domain sizes are chosen so the complete B=16 tree is a reasonable fit
    # (Qardaji et al. additionally tune per-level fan-outs for the odd sizes
    # 2^9 / 2^11, which is out of scope here; see EXPERIMENTS.md).
    domains = (256, 1024, 4096)
    results = run_once(
        table7_centralized_comparison,
        bench_config,
        domain_sizes=domains,
        epsilon=1.0,
        max_queries=2000,
    )
    rows = []
    for domain in domains:
        row = results[domain]
        rows.append(
            [
                domain,
                row["wavelet"],
                row["hhc_16"],
                row["hhc_2"],
                row["wavelet/hhc_16"],
                row["hhc_2/hhc_16"],
            ]
        )
    print("\n=== Figure 7 | centralized average squared error (counts), eps = 1 ===")
    print(
        format_table(
            ["D", "Wavelet", "HHc_16", "HHc_2", "Wavelet/HHc_16", "HHc_2/HHc_16"], rows
        )
    )

    for domain in domains:
        row = results[domain]
        # The centralized wavelet is clearly worse than the optimised
        # centralized hierarchy (Qardaji et al. report 1.86x-2.8x).
        assert row["wavelet/hhc_16"] > 1.3
        # A binary hierarchy is also substantially worse than B = 16.
        assert row["hhc_2/hhc_16"] > 1.3


@pytest.mark.benchmark(group="table7")
def test_local_wavelet_is_competitive_unlike_centralized(run_once, bench_config):
    """The paper's headline contrast: locally, Haar vs best HHc is ~1x."""
    domain = 256
    config = bench_config.scaled(epsilons=(1.0,), repetitions=3)
    results = run_once(table5_epsilon_ranges, config, domain)
    by_method = {cell.mechanism: cell.mse_mean for cell in results}
    best_hh = min(v for k, v in by_method.items() if k.startswith("hhc"))
    local_ratio = by_method["haar"] / best_hh
    print(f"\nLocal model (eps=1, D=2^8): HaarHRR / best HHc ratio = {local_ratio:.3f}")
    # The paper observes a deviation of only a few percent; allow noise at
    # this reduced scale but require the ratio to be far below the ~1.9-2.8
    # seen in the centralized model.
    assert local_ratio < 1.5
