"""Unit tests for repro.service: routers, async ingestion, cross-process."""

import asyncio

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.service import (
    HashRouter,
    IngestionService,
    LeastLoadedRouter,
    RoundRobinRouter,
    collect_across_processes,
    make_router,
    run_ingestion,
)
from repro.streaming import ShardedCollector

DOMAIN = 64
EPSILON = 1.0


@pytest.fixture
def items(rng):
    return rng.integers(0, DOMAIN, size=40_000)


def make_collector(router=None, n_shards=4, spec="flat_oue", seed=0):
    return ShardedCollector(
        spec,
        epsilon=EPSILON,
        domain_size=DOMAIN,
        n_shards=n_shards,
        random_state=seed,
        router=router,
    )


class TestRouters:
    def test_make_router_accepts_names_instances_and_none(self):
        assert isinstance(make_router(None), RoundRobinRouter)
        assert isinstance(make_router("round-robin"), RoundRobinRouter)
        assert isinstance(make_router("rr"), RoundRobinRouter)
        assert isinstance(make_router("hash"), HashRouter)
        assert isinstance(make_router("least_loaded"), LeastLoadedRouter)
        custom = LeastLoadedRouter()
        assert make_router(custom) is custom

    def test_make_router_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="unknown router"):
            make_router("random-teleport")

    def test_unbound_router_refuses_to_route(self):
        with pytest.raises(ConfigurationError, match="not bound"):
            RoundRobinRouter().route(10)

    def test_bind_validates_and_rejects_rebinding(self):
        router = RoundRobinRouter()
        with pytest.raises(ConfigurationError):
            router.bind(0)
        router.bind(3)
        router.bind(3)  # idempotent
        with pytest.raises(ConfigurationError):
            router.bind(5)

    def test_round_robin_cycles(self):
        router = RoundRobinRouter().bind(3)
        assert [router.route(1) for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_hash_router_is_sticky_and_deterministic(self):
        first = HashRouter().bind(8)
        second = HashRouter().bind(8)
        for key in ["user-1", "user-2", 12345, b"device"]:
            assert first.route(10, key=key) == second.route(10, key=key)
            assert first.route(10, key=key) == first.route(99, key=key)

    def test_hash_router_spreads_keyless_batches(self):
        router = HashRouter().bind(4)
        shards = {router.route(1) for _ in range(64)}
        assert len(shards) > 1

    def test_hash_router_rejects_bad_key_type(self):
        router = HashRouter().bind(2)
        with pytest.raises(ConfigurationError):
            router.route(1, key=3.14)

    def test_least_loaded_balances_skewed_batches(self):
        router = LeastLoadedRouter().bind(2)
        shard = router.route(1000)
        router.observe(shard, 1000)
        other = router.route(10)
        assert other != shard
        router.observe(other, 10)
        # Next batch goes to the lighter shard again.
        assert router.route(10) == other

    def test_router_state_round_trip(self):
        router = RoundRobinRouter().bind(3)
        router.route(1)
        restored = RoundRobinRouter().bind(3).load_state_dict(router.state_dict())
        assert restored.route(1) == router.route(1)

        loaded = LeastLoadedRouter().bind(2)
        loaded.observe(0, 500)
        restored = LeastLoadedRouter().bind(2).load_state_dict(loaded.state_dict())
        assert restored.loads == [500, 0]
        with pytest.raises(ConfigurationError):
            LeastLoadedRouter().bind(3).load_state_dict(loaded.state_dict())


class TestCollectorRouting:
    def test_least_loaded_avoids_heavy_shards(self, items):
        collector = make_collector(router="least-loaded")
        sizes = [5000, 100, 100, 100, 5000, 100]
        start = 0
        targets = []
        for size in sizes:
            targets.append(collector.submit(items[start : start + size]))
            start += size
        # The first heavy batch loads one shard; the second heavy batch and
        # every later batch must land elsewhere.
        assert targets[0] not in targets[1:]
        # Equal-sized batches spread over the remaining shards before reuse.
        assert len(set(targets[1:4])) == 3

    def test_hash_routing_pins_keys_to_shards(self, items):
        collector = make_collector(router="hash")
        batches = np.array_split(items, 10)
        first = [collector.submit(batch, key=f"tenant-{i % 2}") for i, batch in enumerate(batches)]
        assert len({shard for i, shard in enumerate(first) if i % 2 == 0}) == 1
        assert len({shard for i, shard in enumerate(first) if i % 2 == 1}) == 1

    def test_route_reserves_a_decision(self):
        collector = make_collector()
        assert collector.route(10) == 0
        assert collector.route(10) == 1
        # Explicit submission does not consult the router.
        collector.submit(np.arange(10, dtype=np.int64) % DOMAIN, shard=3)
        assert collector.route(10) == 2


class TestIngestionService:
    def test_requires_collector(self):
        with pytest.raises(ConfigurationError):
            IngestionService("not a collector")

    def test_validates_queue_size_and_parallelism(self):
        collector = make_collector()
        with pytest.raises(ConfigurationError):
            IngestionService(collector, queue_size=0)
        with pytest.raises(ConfigurationError):
            IngestionService(collector, parallelism=-1)

    def test_submit_requires_started_service(self, items):
        service = IngestionService(make_collector())
        with pytest.raises(ConfigurationError, match="not running"):
            asyncio.run(service.submit(items[:10]))

    def test_double_start_rejected(self):
        async def scenario():
            async with IngestionService(make_collector()) as service:
                with pytest.raises(ConfigurationError, match="already started"):
                    await service.start()

        asyncio.run(scenario())

    def test_concurrent_producers_collect_everything(self, items):
        collector = make_collector(router="least-loaded", spec="hhc_4")
        batches = np.array_split(items, 16)

        async def producer(service, mine):
            for batch in mine:
                await service.submit(batch)

        async def scenario():
            async with IngestionService(collector, queue_size=2) as service:
                await asyncio.gather(
                    *(producer(service, batches[p::4]) for p in range(4))
                )
            return collector.reduce()

        mechanism = asyncio.run(scenario())
        assert mechanism.n_users == items.size
        truth = np.mean((items >= 10) & (items <= 50))
        assert mechanism.answer_range(10, 50) == pytest.approx(truth, abs=0.08)

    def test_backpressure_bounds_queue_depth(self, items):
        collector = make_collector()
        batches = np.array_split(items, 32)

        async def scenario():
            async with IngestionService(collector, queue_size=2) as service:
                for batch in batches:
                    await service.submit(batch)
            return service.shard_stats

        stats = asyncio.run(scenario())
        assert sum(s.batches for s in stats) == len(batches)
        assert all(s.queue_peak <= 2 for s in stats)

    def test_stats_exposes_queue_and_materialization_counters(self, items):
        collector = make_collector(spec="hhc_4")
        service = IngestionService(collector)

        # Safe before start: no queues yet, all counters zero.
        idle = service.stats()
        assert idle["started"] is False
        assert idle["submitted_batches"] == 0
        assert idle["queue_depths"] == [0] * collector.n_shards
        assert idle["materializations_performed"] == 0

        batches = np.array_split(items, 12)

        async def scenario():
            async with IngestionService(collector, queue_size=4) as running:
                for batch in batches:
                    await running.submit(batch)
                await running.join()
                return running.stats()

        stats = asyncio.run(scenario())
        assert stats["started"] is True
        assert stats["n_shards"] == collector.n_shards
        assert stats["submitted_batches"] == len(batches)
        assert stats["submitted_users"] == items.size
        assert stats["absorbed_batches"] == len(batches)
        assert stats["absorbed_users"] == items.size
        # Ingestion is pure accumulation: every absorbed batch bumped a
        # shard's generation and not a single materialization ran.
        assert stats["materializations_performed"] == 0
        assert stats["materializations_deferred"] == len(batches)
        assert sum(
            entry["ingest_generation"] for entry in stats["per_shard"]
        ) == len(batches)
        for entry in stats["per_shard"]:
            assert entry["queue_depth"] == 0  # drained by join()
            assert entry["queue_peak"] <= 4

        # Reading the reduced mechanism does not touch the shards ...
        collector.reduce().estimate_frequencies()
        after = service.stats()
        assert after["materializations_performed"] == 0
        # ... but reading a shard directly is counted.
        shard = next(s for s in collector.shards if s.is_fitted)
        shard.estimate_frequencies()
        assert service.stats()["materializations_performed"] == 1

    def test_invalid_batch_rejected_at_submit_without_routing(self, items):
        """Validation precedes routing: a bad batch costs no routing state."""
        collector = make_collector(router="least-loaded")

        async def scenario():
            async with IngestionService(collector) as service:
                with pytest.raises(InvalidQueryError):
                    await service.submit(np.array([DOMAIN + 7]))  # out of domain
                with pytest.raises(InvalidQueryError):
                    await service.submit(np.array([1.5, 2.5]))    # float dtype

        asyncio.run(scenario())
        assert collector.router.loads == [0, 0, 0, 0]

    def test_worker_errors_surface_on_join(self, items, monkeypatch):
        """A batch failing *inside* a shard worker is re-raised on drain."""
        collector = make_collector()
        monkeypatch.setattr(
            collector.shards[0],
            "partial_fit",
            lambda *a, **k: (_ for _ in ()).throw(InvalidQueryError("shard died")),
        )

        async def scenario():
            async with IngestionService(collector) as service:
                await service.submit(items[:100])  # routed to shard 0

        with pytest.raises(InvalidQueryError, match="shard died"):
            asyncio.run(scenario())

    def test_stop_surfaces_dead_worker_exceptions(self, items):
        """Regression: stop() used to gather worker results with
        ``return_exceptions=True`` and discard them, so a worker task that
        died of anything but cancellation looked like a clean shutdown.
        stop() must complete the teardown and then re-raise the failure."""
        collector = make_collector()
        boom = RuntimeError("shard worker died")

        async def dying_worker():
            raise boom

        async def scenario():
            service = await IngestionService(collector).start()
            # Simulate a worker task killed by a plumbing bug (not by a bad
            # batch, which the workers catch and report via join()).
            service._workers.append(
                asyncio.get_running_loop().create_task(dying_worker())
            )
            await asyncio.sleep(0)  # let the dying task reach its exception
            with pytest.raises(RuntimeError, match="shard worker died"):
                await service.stop()
            # Teardown still completed, and the failure is kept for
            # post-mortem inspection alongside batch errors.
            assert not service.started
            assert service._workers == []
            assert boom in service._errors

        asyncio.run(scenario())

    def test_stop_without_worker_failures_raises_nothing(self, items):
        """The happy teardown path stays silent (cancellations are not
        failures)."""
        collector = make_collector()

        async def scenario():
            service = await IngestionService(collector).start()
            await service.submit(items[:100])
            await service.join()
            await service.stop()
            assert service._errors == []
            assert not service.started

        asyncio.run(scenario())

    def test_workers_stopped_even_when_exit_raises(self, items, monkeypatch):
        """A failing drain must still tear the service down (no task leak)."""
        collector = make_collector()
        monkeypatch.setattr(
            collector.shards[0],
            "partial_fit",
            lambda *a, **k: (_ for _ in ()).throw(InvalidQueryError("shard died")),
        )
        holder = {}

        async def scenario():
            service = IngestionService(collector, parallelism=1)
            holder["service"] = service
            async with service:
                await service.submit(items[:100])

        with pytest.raises(InvalidQueryError):
            asyncio.run(scenario())
        service = holder["service"]
        assert not service.started
        assert service._workers == [] and service._pool is None

    def test_huge_integer_routing_keys(self, items):
        """128-bit ids (UUID ints) must route, not overflow."""
        import uuid

        collector = make_collector(router="hash")
        key = uuid.UUID("ffffffff-ffff-ffff-ffff-ffffffffffff").int
        first = collector.submit(items[:100], key=key)
        second = collector.submit(items[100:200], key=key)
        assert first == second


class TestRunIngestion:
    @pytest.mark.parametrize("router", ["round-robin", "hash", "least-loaded"])
    @pytest.mark.parametrize("n_producers", [1, 3])
    def test_matches_population_and_accuracy(self, items, router, n_producers):
        collector = make_collector(router=router, spec="hhc_4")
        report = run_ingestion(
            collector,
            np.array_split(items, 12),
            n_producers=n_producers,
            queue_size=3,
        )
        assert report.n_users == items.size == collector.n_users
        assert report.n_producers == n_producers
        assert report.router == router
        assert report.users_per_second > 0
        truth = np.mean((items >= 10) & (items <= 50))
        merged = collector.reduce()
        assert merged.answer_range(10, 50) == pytest.approx(truth, abs=0.08)

    def test_thread_parallelism_path(self, items):
        collector = make_collector(spec="hhc_4")
        report = run_ingestion(
            collector, np.array_split(items, 8), n_producers=2, parallelism=2
        )
        assert report.n_users == items.size
        assert collector.n_batches == 8

    def test_validates_inputs(self, items):
        collector = make_collector()
        with pytest.raises(ConfigurationError):
            run_ingestion(collector, [items], n_producers=0)
        with pytest.raises(ConfigurationError, match="routing keys"):
            run_ingestion(collector, np.array_split(items, 4), keys=["only-one"])

    def test_rejected_inside_running_loop(self, items):
        async def scenario():
            run_ingestion(make_collector(), [items[:100]])

        with pytest.raises(ConfigurationError, match="running event loop"):
            asyncio.run(scenario())

    def test_routing_keys_reach_the_router(self, items):
        collector = make_collector(router="hash")
        batches = np.array_split(items, 8)
        run_ingestion(
            collector, batches, keys=["pin"] * len(batches), n_producers=1
        )
        fitted = [shard for shard in collector.shards if shard.is_fitted]
        assert len(fitted) == 1
        assert fitted[0].n_users == items.size


class TestCollectAcrossProcesses:
    def test_inline_executor_matches_accuracy(self, items):
        mechanism = collect_across_processes(
            "hhc_4",
            np.array_split(items, 6),
            epsilon=EPSILON,
            domain_size=DOMAIN,
            n_workers=0,
            random_state=5,
        )
        assert mechanism.n_users == items.size
        truth = np.mean((items >= 10) & (items <= 50))
        assert mechanism.answer_range(10, 50) == pytest.approx(truth, abs=0.08)

    def test_worker_processes_round_trip(self, items):
        mechanism = collect_across_processes(
            "flat_oue",
            np.array_split(items, 6),
            epsilon=EPSILON,
            domain_size=DOMAIN,
            n_workers=2,
            random_state=5,
        )
        assert mechanism.n_users == items.size
        truth = np.mean(items <= 31)
        assert mechanism.answer_range(0, 31) == pytest.approx(truth, abs=0.05)

    def test_deterministic_for_fixed_seed(self, items):
        def run():
            return collect_across_processes(
                "flat_oue",
                np.array_split(items, 5),
                epsilon=EPSILON,
                domain_size=DOMAIN,
                n_workers=0,
                random_state=11,
            ).estimate_frequencies()

        np.testing.assert_array_equal(run(), run())

    def test_accepts_template_instance(self, items):
        from repro.core.wavelet import HaarWaveletMechanism

        template = HaarWaveletMechanism(EPSILON, DOMAIN)
        mechanism = collect_across_processes(
            template, np.array_split(items, 4), n_workers=0, random_state=1
        )
        assert mechanism.n_users == items.size
        assert not template.is_fitted  # the template itself is untouched

    def test_validates_inputs(self, items):
        with pytest.raises(ConfigurationError):
            collect_across_processes("flat", [items], n_workers=-1,
                                     epsilon=EPSILON, domain_size=DOMAIN)
        with pytest.raises(ConfigurationError):
            collect_across_processes("flat", [items])  # missing epsilon/domain
        with pytest.raises(ConfigurationError):
            collect_across_processes("flat", [], epsilon=EPSILON, domain_size=DOMAIN)

    def test_template_conflicting_parameters_rejected(self, items):
        from repro.core.flat import FlatMechanism

        template = FlatMechanism(EPSILON, DOMAIN)
        with pytest.raises(ConfigurationError):
            collect_across_processes(template, [items], epsilon=2.0)
        with pytest.raises(ConfigurationError):
            collect_across_processes(template, [items], domain_size=2 * DOMAIN)
