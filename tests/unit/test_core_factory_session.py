"""Unit tests for the mechanism factory, spec parser and session wrapper."""

import numpy as np
import pytest

from repro.core.factory import make_mechanism, mechanism_from_spec
from repro.core.flat import FlatMechanism
from repro.core.hierarchical import HierarchicalHistogramMechanism
from repro.core.multidim import HierarchicalGrid2D
from repro.core.session import LdpRangeQuerySession
from repro.core.wavelet import HaarWaveletMechanism
from repro.exceptions import ConfigurationError, NotFittedError


class TestMakeMechanism:
    def test_kinds(self):
        assert isinstance(make_mechanism("flat", 1.0, 64), FlatMechanism)
        assert isinstance(make_mechanism("hh", 1.0, 64), HierarchicalHistogramMechanism)
        assert isinstance(make_mechanism("hierarchical", 1.0, 64), HierarchicalHistogramMechanism)
        assert isinstance(make_mechanism("haar", 1.0, 64), HaarWaveletMechanism)
        assert isinstance(make_mechanism("wavelet", 1.0, 64), HaarWaveletMechanism)
        assert isinstance(make_mechanism("grid2d", 1.0, 16), HierarchicalGrid2D)
        assert isinstance(make_mechanism("grid", 1.0, 16), HierarchicalGrid2D)
        assert make_mechanism("grid2d", 1.0, 16).branching == 2
        assert make_mechanism("grid2d", 1.0, 16, branching=4).branching == 4

    def test_options_forwarded(self):
        mechanism = make_mechanism("hh", 1.0, 64, branching=8, oracle="hrr", consistency=False)
        assert mechanism.branching == 8
        assert not mechanism.consistency

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_mechanism("unknown", 1.0, 64)


class TestSpecParser:
    @pytest.mark.parametrize(
        "spec,expected_type",
        [
            ("flat", FlatMechanism),
            ("flat_oue", FlatMechanism),
            ("flat_hrr", FlatMechanism),
            ("haar", HaarWaveletMechanism),
            ("haar_hrr", HaarWaveletMechanism),
            ("hh_4", HierarchicalHistogramMechanism),
            ("hhc_16", HierarchicalHistogramMechanism),
            ("tree_8", HierarchicalHistogramMechanism),
            ("hhc_8_hrr", HierarchicalHistogramMechanism),
            ("grid2d", HierarchicalGrid2D),
            ("grid2d_4", HierarchicalGrid2D),
            ("grid2d_2_hrr", HierarchicalGrid2D),
        ],
    )
    def test_accepted_specs(self, spec, expected_type):
        assert isinstance(mechanism_from_spec(spec, 1.0, 64), expected_type)

    def test_grid2d_spec_options(self):
        grid = mechanism_from_spec("grid2d_4_hrr", 1.0, 32)
        assert grid.branching == 4
        assert grid.domain_size == 32
        assert grid._oracle_name == "hrr"
        assert mechanism_from_spec("grid2d", 1.0, 32).branching == 2

    def test_consistency_flag(self):
        assert not mechanism_from_spec("hh_4", 1.0, 64).consistency
        assert mechanism_from_spec("hhc_4", 1.0, 64).consistency

    def test_branching_parsed(self):
        assert mechanism_from_spec("hhc_16", 1.0, 256).branching == 16

    def test_oracle_parsed(self):
        mechanism = mechanism_from_spec("hhc_4_hrr", 1.0, 64)
        assert "hrr" in type(mechanism._oracles[1]).__name__.lower() or True
        assert mechanism._oracle_name == "hrr"

    def test_name_preserves_spec(self):
        assert mechanism_from_spec("hhc_4", 1.0, 64).name == "hhc_4"

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            mechanism_from_spec("pyramid_3", 1.0, 64)
        with pytest.raises(ConfigurationError):
            mechanism_from_spec("hh_", 1.0, 64)


class TestSession:
    def test_collect_and_query(self, rng):
        items = rng.integers(0, 64, size=20_000)
        session = LdpRangeQuerySession(epsilon=1.1, domain_size=64, mechanism="hhc_4")
        session.collect(items, random_state=0)
        truth = np.mean((items >= 10) & (items <= 40))
        assert session.range_query(10, 40) == pytest.approx(truth, abs=0.08)

    def test_collect_counts(self, small_counts):
        session = LdpRangeQuerySession(epsilon=1.0, domain_size=64, mechanism="haar")
        session.collect_counts(small_counts, random_state=0)
        assert session.n_users == int(small_counts.sum())

    def test_accepts_prebuilt_mechanism(self, small_counts):
        mechanism = FlatMechanism(1.0, 64)
        session = LdpRangeQuerySession(epsilon=1.0, domain_size=64, mechanism=mechanism)
        session.collect_counts(small_counts, random_state=0)
        assert session.mechanism is mechanism

    def test_prebuilt_mechanism_epsilon_mismatch_rejected(self):
        # Regression: `session.epsilon` used to silently disagree with the
        # budget the mechanism actually spends.
        with pytest.raises(ConfigurationError):
            LdpRangeQuerySession(epsilon=2.0, domain_size=64, mechanism=FlatMechanism(1.0, 64))

    def test_prebuilt_mechanism_domain_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            LdpRangeQuerySession(epsilon=1.0, domain_size=128, mechanism=FlatMechanism(1.0, 64))

    def test_collect_batch_accumulates(self, rng):
        items = rng.integers(0, 64, size=30_000)
        session = LdpRangeQuerySession(epsilon=1.1, domain_size=64, mechanism="hhc_4")
        stream = np.random.default_rng(0)
        for batch in np.array_split(items, 3):
            session.collect_batch(batch, random_state=stream)
        assert session.n_users == items.size
        truth = np.mean((items >= 10) & (items <= 40))
        assert session.range_query(10, 40) == pytest.approx(truth, abs=0.1)

    def test_merge_from_other_session(self, rng):
        items = rng.integers(0, 64, size=40_000)
        first = LdpRangeQuerySession(epsilon=1.0, domain_size=64, mechanism="haar")
        second = LdpRangeQuerySession(epsilon=1.0, domain_size=64, mechanism="haar")
        first.collect(items[:25_000], random_state=1)
        second.collect(items[25_000:], random_state=2)
        first.merge_from(second)
        assert first.n_users == items.size

    def test_histogram_cdf_quantiles(self, small_counts):
        session = LdpRangeQuerySession(epsilon=1.5, domain_size=64, mechanism="hhc_4")
        session.collect_counts(small_counts, random_state=1)
        assert session.histogram().shape == (64,)
        cdf = session.cdf()
        assert np.all(np.diff(cdf) >= 0)
        deciles = session.quantiles()
        assert len(deciles) == 9
        assert 0 <= session.median() < 64

    def test_summary_requires_collection(self):
        session = LdpRangeQuerySession(epsilon=1.0, domain_size=64)
        with pytest.raises(NotFittedError):
            session.summary()

    def test_summary_fields(self, small_counts):
        session = LdpRangeQuerySession(epsilon=1.0, domain_size=64, mechanism="hhc_2")
        session.collect_counts(small_counts, random_state=0)
        summary = session.summary()
        assert summary["n_users"] == int(small_counts.sum())
        assert summary["mechanism"] == "hhc_2"
