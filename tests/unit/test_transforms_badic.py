"""Unit tests for repro.transforms.badic."""

import pytest

from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.transforms.badic import (
    BAdicInterval,
    badic_decompose,
    badic_node_count_bound,
    is_badic_interval,
)


class TestIsBadicInterval:
    @pytest.mark.parametrize(
        "start,end,branching",
        [(0, 0, 2), (4, 7, 2), (8, 15, 2), (0, 31, 2), (9, 9, 3), (3, 5, 3), (0, 8, 3)],
    )
    def test_badic(self, start, end, branching):
        assert is_badic_interval(start, end, branching)

    @pytest.mark.parametrize(
        "start,end,branching",
        [(1, 2, 2), (2, 5, 2), (0, 2, 2), (4, 6, 3), (-1, 0, 2)],
    )
    def test_not_badic(self, start, end, branching):
        assert not is_badic_interval(start, end, branching)

    def test_rejects_bad_branching(self):
        with pytest.raises(ConfigurationError):
            is_badic_interval(0, 1, 1)


class TestDecompose:
    def test_paper_example(self):
        # The worked example after Fact 3: [2, 22] with B = 2 decomposes into
        # [2,3] [4,7] [8,15] [16,19] [20,21] [22,22].
        intervals = badic_decompose(2, 22, 2)
        observed = [(piece.start, piece.end) for piece in intervals]
        assert observed == [(2, 3), (4, 7), (8, 15), (16, 19), (20, 21), (22, 22)]

    def test_every_piece_is_badic(self):
        for branching in (2, 3, 4, 8):
            for start, end in [(0, 99), (17, 63), (5, 5), (1, 98)]:
                for piece in badic_decompose(start, end, branching):
                    assert is_badic_interval(piece.start, piece.end, branching)

    def test_pieces_cover_range_exactly(self):
        intervals = badic_decompose(13, 200, 4)
        covered = []
        for piece in intervals:
            covered.extend(range(piece.start, piece.end + 1))
        assert covered == list(range(13, 201))

    def test_single_item(self):
        (piece,) = badic_decompose(7, 7, 2)
        assert piece == BAdicInterval(start=7, end=7, level=0, index=7)

    def test_whole_domain(self):
        (piece,) = badic_decompose(0, 63, 2)
        assert (piece.start, piece.end, piece.level) == (0, 63, 6)

    def test_count_within_bound(self):
        for branching in (2, 4, 16):
            for start, end in [(3, 61), (0, 1023), (100, 900)]:
                pieces = badic_decompose(start, end, branching)
                assert len(pieces) <= badic_node_count_bound(end - start + 1, branching)

    def test_domain_size_validation(self):
        with pytest.raises(InvalidQueryError):
            badic_decompose(0, 64, 2, domain_size=64)

    def test_invalid_range(self):
        with pytest.raises(InvalidQueryError):
            badic_decompose(5, 4, 2)

    def test_interval_length_property(self):
        piece = BAdicInterval(start=8, end=15, level=3, index=1)
        assert piece.length == 8


class TestNodeCountBound:
    def test_formula(self):
        # (B - 1)(2 log_B r + 1) rounded up.
        assert badic_node_count_bound(1, 2) == 1
        assert badic_node_count_bound(16, 2) == 9
        assert badic_node_count_bound(16, 4) >= 6

    def test_rejects_zero_length(self):
        with pytest.raises(InvalidQueryError):
            badic_node_count_bound(0, 2)
