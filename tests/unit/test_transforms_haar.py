"""Unit tests for repro.transforms.haar."""

import numpy as np
import pytest

from repro.exceptions import InvalidDomainError, InvalidQueryError
from repro.transforms.haar import (
    haar_coefficient_index,
    haar_forward,
    haar_inverse,
    haar_level_slices,
    haar_matrix,
    haar_range_weights,
    haar_user_coefficients,
    tree_height,
)


class TestTreeHeight:
    def test_values(self):
        assert tree_height(2) == 1
        assert tree_height(8) == 3
        assert tree_height(1024) == 10

    def test_rejects_non_power_of_two(self):
        with pytest.raises(InvalidDomainError):
            tree_height(12)


class TestForwardInverse:
    def test_roundtrip(self, rng):
        vector = rng.normal(size=128)
        np.testing.assert_allclose(haar_inverse(haar_forward(vector)), vector, atol=1e-9)

    def test_scaling_coefficient_is_total_over_sqrt_d(self):
        vector = np.arange(16, dtype=float)
        coefficients = haar_forward(vector)
        assert coefficients[0] == pytest.approx(vector.sum() / 4.0)

    def test_detail_coefficient_definition(self):
        # The root split coefficient is (left sum - right sum) / 2^{h/2}.
        vector = np.array([4.0, 2.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0])
        coefficients = haar_forward(vector)
        assert coefficients[1] == pytest.approx((8.0 - 0.0) / (2 ** 1.5))

    def test_constant_vector_has_no_detail(self):
        coefficients = haar_forward(np.full(32, 3.0))
        np.testing.assert_allclose(coefficients[1:], 0.0, atol=1e-12)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(InvalidDomainError):
            haar_forward(np.ones(12))


class TestHaarMatrix:
    def test_orthonormal(self):
        matrix = haar_matrix(16)
        np.testing.assert_allclose(matrix @ matrix.T, np.eye(16), atol=1e-9)

    def test_paper_figure3_first_row(self):
        # Figure 3 of the paper: the synthesis weights of item 0 for D = 8
        # are (1, 1, sqrt(2), 0, 2, 0, 0, 0) / sqrt(8).
        synthesis = haar_matrix(8).T
        expected = np.array([1.0, 1.0, np.sqrt(2.0), 0.0, 2.0, 0.0, 0.0, 0.0]) / np.sqrt(8.0)
        np.testing.assert_allclose(synthesis[0], expected, atol=1e-12)

    def test_matches_fast_transform(self, rng):
        vector = rng.normal(size=8)
        np.testing.assert_allclose(haar_matrix(8) @ vector, haar_forward(vector), atol=1e-9)


class TestLevelLayout:
    def test_level_slices_partition_detail_coefficients(self):
        slices = haar_level_slices(16)
        covered = []
        for level, sl in slices.items():
            covered.extend(range(sl.start, sl.stop))
            assert sl.stop - sl.start == 16 >> level
        assert sorted(covered) == list(range(1, 16))

    def test_coefficient_index(self):
        # Height 3 (root split) of D=8 is index 1; height 1 block 2 is index 6.
        assert haar_coefficient_index(3, 0, 8) == 1
        assert haar_coefficient_index(1, 2, 8) == 6

    def test_coefficient_index_validation(self):
        with pytest.raises(InvalidQueryError):
            haar_coefficient_index(4, 0, 8)
        with pytest.raises(InvalidQueryError):
            haar_coefficient_index(1, 4, 8)


class TestUserCoefficients:
    def test_one_nonzero_per_level_matches_transform(self):
        domain = 16
        for item in (0, 5, 15):
            one_hot = np.zeros(domain)
            one_hot[item] = 1.0
            coefficients = haar_forward(one_hot)
            user = haar_user_coefficients(item, domain)
            for level, (block, sign) in user.items():
                index = haar_coefficient_index(level, block, domain)
                expected = sign / (2.0 ** (level / 2.0))
                assert coefficients[index] == pytest.approx(expected)

    def test_item_out_of_domain(self):
        with pytest.raises(InvalidQueryError):
            haar_user_coefficients(16, 16)


class TestRangeWeights:
    def test_reconstructs_range_sums(self, rng):
        domain = 64
        vector = rng.normal(size=domain)
        coefficients = haar_forward(vector)
        for start, end in [(0, 63), (5, 5), (3, 40), (32, 47), (1, 62)]:
            indices, weights = haar_range_weights(start, end, domain)
            estimate = float(np.dot(coefficients[indices], weights))
            assert estimate == pytest.approx(vector[start : end + 1].sum(), rel=1e-9, abs=1e-9)

    def test_number_of_weights_is_logarithmic(self):
        domain = 1024
        indices, _ = haar_range_weights(3, 1000, domain)
        # Scaling coefficient + at most 2 per level.
        assert len(indices) <= 2 * 10 + 1

    def test_invalid_range_rejected(self):
        with pytest.raises(InvalidQueryError):
            haar_range_weights(5, 4, 16)
        with pytest.raises(InvalidQueryError):
            haar_range_weights(0, 16, 16)
