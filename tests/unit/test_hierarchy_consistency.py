"""Unit tests for repro.hierarchy.consistency."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, InvalidDomainError
from repro.hierarchy.consistency import (
    enforce_consistency,
    least_squares_consistency,
    subtree_counts,
)


def _noisy_tree(rng, branching, height, scale=0.05):
    """A random ground-truth hierarchy plus i.i.d. noise per node."""
    leaves = rng.dirichlet(np.ones(branching**height))
    true_levels = []
    for depth in range(1, height + 1):
        block = branching ** (height - depth)
        true_levels.append(leaves.reshape(-1, block).sum(axis=1))
    noisy_levels = [level + rng.normal(0, scale, size=level.shape) for level in true_levels]
    return true_levels, noisy_levels


class TestSubtreeCounts:
    def test_values(self):
        assert subtree_counts(1, 2) == 1
        assert subtree_counts(2, 2) == 3
        assert subtree_counts(3, 2) == 7
        assert subtree_counts(2, 4) == 5


class TestEnforceConsistency:
    def test_output_shapes_match_input(self, rng):
        _, noisy = _noisy_tree(rng, branching=3, height=3)
        adjusted = enforce_consistency(noisy, 3)
        assert [a.shape for a in adjusted] == [n.shape for n in noisy]

    def test_parent_equals_sum_of_children(self, rng):
        _, noisy = _noisy_tree(rng, branching=4, height=3)
        adjusted = enforce_consistency(noisy, 4)
        for depth in range(len(adjusted) - 1):
            parents = adjusted[depth]
            child_sums = adjusted[depth + 1].reshape(-1, 4).sum(axis=1)
            np.testing.assert_allclose(parents, child_sums, atol=1e-10)

    def test_root_value_constraint(self, rng):
        _, noisy = _noisy_tree(rng, branching=2, height=4)
        adjusted = enforce_consistency(noisy, 2, root_value=1.0)
        assert adjusted[0].sum() == pytest.approx(1.0)
        # Consistency then propagates the constraint to every level.
        for level in adjusted:
            assert level.sum() == pytest.approx(1.0)

    def test_consistent_input_is_unchanged(self, rng):
        true_levels, _ = _noisy_tree(rng, branching=2, height=3, scale=0.0)
        adjusted = enforce_consistency(true_levels, 2, root_value=1.0)
        for adjusted_level, true_level in zip(adjusted, true_levels):
            np.testing.assert_allclose(adjusted_level, true_level, atol=1e-10)

    def test_matches_least_squares_without_root(self, rng):
        # Hay et al.'s two-stage algorithm computes the exact least-squares
        # solution of the hierarchy constraints.
        _, noisy = _noisy_tree(rng, branching=2, height=3)
        fast = enforce_consistency(noisy, 2, root_value=None)
        exact = least_squares_consistency(noisy, 2)
        for fast_level, exact_level in zip(fast, exact):
            np.testing.assert_allclose(fast_level, exact_level, atol=1e-8)

    def test_matches_least_squares_branching_three(self, rng):
        _, noisy = _noisy_tree(rng, branching=3, height=2)
        fast = enforce_consistency(noisy, 3, root_value=None)
        exact = least_squares_consistency(noisy, 3)
        for fast_level, exact_level in zip(fast, exact):
            np.testing.assert_allclose(fast_level, exact_level, atol=1e-8)

    def test_reduces_leaf_error_on_average(self, rng):
        # Lemma 4.6: consistency cannot increase the (expected) error.
        branching, height = 4, 3
        improvements = []
        for _ in range(30):
            true_levels, noisy = _noisy_tree(rng, branching, height, scale=0.02)
            adjusted = enforce_consistency(noisy, branching, root_value=1.0)
            raw_error = np.mean((noisy[-1] - true_levels[-1]) ** 2)
            adjusted_error = np.mean((adjusted[-1] - true_levels[-1]) ** 2)
            improvements.append(raw_error - adjusted_error)
        assert np.mean(improvements) > 0

    def test_validation(self):
        with pytest.raises(InvalidDomainError):
            enforce_consistency([], 2)
        with pytest.raises(InvalidDomainError):
            enforce_consistency([np.zeros(3)], 2)
        with pytest.raises(ConfigurationError):
            enforce_consistency([np.zeros(2)], 1)


class TestLeastSquares:
    def test_single_level_is_identity(self, rng):
        noisy = [rng.normal(size=2)]
        np.testing.assert_allclose(least_squares_consistency(noisy, 2)[0], noisy[0])

    def test_consistency_of_solution(self, rng):
        _, noisy = _noisy_tree(rng, branching=2, height=3)
        solution = least_squares_consistency(noisy, 2)
        for depth in range(len(solution) - 1):
            np.testing.assert_allclose(
                solution[depth], solution[depth + 1].reshape(-1, 2).sum(axis=1), atol=1e-8
            )
