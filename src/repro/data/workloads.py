"""Range-query workloads.

A *workload* is an array of closed intervals ``[a, b]`` over the domain plus
the machinery to evaluate them exactly (for ground truth) and to summarise a
mechanism's squared error over them.  The generators mirror how the paper
samples queries:

* for small / medium domains, **all** ``D (D + 1) / 2`` closed intervals are
  evaluated (Section 5, "Sampling range queries for evaluation");
* for large domains, evenly spaced starting points are chosen and every
  range beginning at one of them is evaluated;
* Figure 4 uses all ranges of a **fixed length** ``r``;
* Section 5.3 evaluates every **prefix** query;
* Section 5.5 targets the deciles (quantiles 0.1 .. 0.9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.privacy.randomness import RandomState, as_generator

__all__ = [
    "BoxWorkload",
    "RangeWorkload",
    "all_range_queries",
    "sampled_range_queries",
    "fixed_length_queries",
    "prefix_queries",
    "random_range_queries",
    "random_boxes",
    "random_rectangles",
    "evaluate_exact",
    "evaluate_exact_boxes",
]


def _as_query_array(queries: Iterable) -> np.ndarray:
    array = np.asarray(list(queries) if not isinstance(queries, np.ndarray) else queries)
    if array.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    array = array.astype(np.int64)
    if array.ndim != 2 or array.shape[1] != 2:
        raise InvalidQueryError("queries must be an (n, 2) array of [start, end] pairs")
    if np.any(array[:, 0] > array[:, 1]) or np.any(array[:, 0] < 0):
        raise InvalidQueryError("every query must satisfy 0 <= start <= end")
    return array


@dataclass(frozen=True)
class RangeWorkload:
    """An immutable batch of range queries over a fixed domain.

    Attributes
    ----------
    domain_size:
        The domain ``D`` the queries are posed over.
    queries:
        Integer array of shape ``(n, 2)`` holding inclusive ``[start, end]``
        pairs.
    name:
        Human-readable label used by the experiment reports.
    """

    domain_size: int
    queries: np.ndarray
    name: str = "workload"

    def __post_init__(self) -> None:
        queries = _as_query_array(self.queries)
        if queries.size and queries[:, 1].max() >= self.domain_size:
            raise InvalidQueryError("queries exceed the domain")
        object.__setattr__(self, "queries", queries)

    def __len__(self) -> int:
        return self.queries.shape[0]

    @property
    def lengths(self) -> np.ndarray:
        """Lengths ``b - a + 1`` of every query."""
        if len(self) == 0:
            return np.empty(0, dtype=np.int64)
        return self.queries[:, 1] - self.queries[:, 0] + 1

    def true_answers(self, counts: np.ndarray) -> np.ndarray:
        """Exact normalized answers of every query on per-item counts."""
        return evaluate_exact(counts, self.queries)

    def subset(self, max_queries: int, random_state: RandomState = None) -> "RangeWorkload":
        """Uniformly subsample at most ``max_queries`` queries.

        Used to keep benchmark runtimes bounded; the subsample is reported
        with the same name suffixed by ``~``.
        """
        if max_queries <= 0:
            raise ConfigurationError(f"max_queries must be positive, got {max_queries!r}")
        if len(self) <= max_queries:
            return self
        rng = as_generator(random_state)
        chosen = rng.choice(len(self), size=max_queries, replace=False)
        return RangeWorkload(
            domain_size=self.domain_size,
            queries=self.queries[np.sort(chosen)],
            name=f"{self.name}~{max_queries}",
        )


def evaluate_exact(counts: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Exact normalized range answers ``R[a, b]`` from per-item counts.

    Answers are fractions of the population, matching the paper's problem
    definition (Section 4.1).  Uses a prefix-sum so evaluating a workload of
    ``n`` queries costs ``O(D + n)``.
    """
    counts = np.asarray(counts, dtype=np.float64)
    queries = _as_query_array(queries)
    if queries.size and queries[:, 1].max() >= counts.shape[0]:
        raise InvalidQueryError("queries exceed the counts vector")
    total = counts.sum()
    if total <= 0:
        return np.zeros(queries.shape[0])
    prefix = np.concatenate([[0.0], np.cumsum(counts)])
    sums = prefix[queries[:, 1] + 1] - prefix[queries[:, 0]]
    return sums / total


@dataclass(frozen=True)
class BoxWorkload:
    """An immutable batch of axis-aligned box queries over a ``[D]^d`` grid.

    The d-dimensional counterpart of :class:`RangeWorkload` and the planning
    input of :func:`repro.planner.plan`: the per-axis side lengths of its
    queries drive the closed-form variance bounds the planner ranks
    candidate configurations by.

    Attributes
    ----------
    domain_size:
        Per-axis side length ``D`` of the grid the boxes are posed over.
    dims:
        Number of axes ``d``.
    queries:
        Integer array of shape ``(n, 2d)`` holding inclusive per-axis
        ``(start, end)`` pairs in axis order —
        ``(a_1, b_1, a_2, b_2, ..., a_d, b_d)``; for ``d = 2`` this is the
        ``(x_start, x_end, y_start, y_end)`` layout of
        :func:`random_rectangles` and
        :meth:`~repro.core.multidim.HierarchicalGrid2D.answer_rectangles`.
    name:
        Human-readable label used by experiment and planner reports.
    """

    domain_size: int
    dims: int
    queries: np.ndarray
    name: str = "boxes"

    def __post_init__(self) -> None:
        dims = int(self.dims)
        if dims < 1:
            raise ConfigurationError(f"dims must be a positive integer, got {self.dims!r}")
        queries = np.asarray(self.queries)
        if queries.size == 0:
            queries = np.empty((0, 2 * dims), dtype=np.int64)
        queries = queries.astype(np.int64)
        if queries.ndim != 2 or queries.shape[1] != 2 * dims:
            raise InvalidQueryError(
                f"box queries must be an (n, {2 * dims}) array of per-axis "
                "(start, end) pairs"
            )
        starts, ends = queries[:, 0::2], queries[:, 1::2]
        if queries.size and (starts.min() < 0 or np.any(starts > ends)):
            raise InvalidQueryError("every axis must satisfy 0 <= start <= end")
        if queries.size and ends.max() >= self.domain_size:
            raise InvalidQueryError("box queries exceed the domain")
        object.__setattr__(self, "dims", dims)
        object.__setattr__(self, "queries", queries)

    def __len__(self) -> int:
        return self.queries.shape[0]

    @property
    def axis_lengths(self) -> np.ndarray:
        """Per-axis side lengths ``b_k - a_k + 1`` of every box, ``(n, d)``."""
        if len(self) == 0:
            return np.empty((0, self.dims), dtype=np.int64)
        return self.queries[:, 1::2] - self.queries[:, 0::2] + 1

    def true_answers(self, counts: np.ndarray) -> np.ndarray:
        """Exact normalized box answers on a d-dimensional count grid."""
        return evaluate_exact_boxes(counts, self.queries, dims=self.dims)

    def subset(self, max_queries: int, random_state: RandomState = None) -> "BoxWorkload":
        """Uniformly subsample at most ``max_queries`` boxes."""
        if max_queries <= 0:
            raise ConfigurationError(f"max_queries must be positive, got {max_queries!r}")
        if len(self) <= max_queries:
            return self
        rng = as_generator(random_state)
        chosen = rng.choice(len(self), size=max_queries, replace=False)
        return BoxWorkload(
            domain_size=self.domain_size,
            dims=self.dims,
            queries=self.queries[np.sort(chosen)],
            name=f"{self.name}~{max_queries}",
        )


def evaluate_exact_boxes(
    counts: np.ndarray, queries: np.ndarray, dims: Optional[int] = None
) -> np.ndarray:
    """Exact normalized box answers from a d-dimensional count grid.

    ``counts`` is a ``D x ... x D`` array of per-cell counts; ``queries``
    follows the ``(n, 2d)`` axis-blocked layout of :class:`BoxWorkload`.
    Uses a d-dimensional prefix sum and one fancy-indexed gather per corner,
    so a workload of ``n`` boxes costs ``O(D^d + 2^d n)``.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if dims is None:
        dims = counts.ndim
    if counts.ndim != dims:
        raise InvalidQueryError(
            f"counts must be a {dims}-dimensional grid, got shape {counts.shape}"
        )
    queries = np.asarray(queries)
    if queries.size == 0:
        queries = np.empty((0, 2 * dims), dtype=np.int64)
    queries = queries.astype(np.int64)
    if queries.ndim != 2 or queries.shape[1] != 2 * dims:
        raise InvalidQueryError(
            f"box queries must be an (n, {2 * dims}) array of per-axis "
            "(start, end) pairs"
        )
    starts, ends = queries[:, 0::2], queries[:, 1::2]
    if queries.size and (starts.min() < 0 or np.any(starts > ends)):
        raise InvalidQueryError("every axis must satisfy 0 <= start <= end")
    for axis in range(dims):
        if queries.size and ends[:, axis].max() >= counts.shape[axis]:
            raise InvalidQueryError("box queries exceed the counts grid")
    total = counts.sum()
    if total <= 0:
        return np.zeros(queries.shape[0])
    prefix = np.zeros(tuple(n + 1 for n in counts.shape))
    inner = counts
    for axis in range(dims):
        inner = np.cumsum(inner, axis=axis)
    prefix[(slice(1, None),) * dims] = inner
    sums = np.zeros(queries.shape[0], dtype=np.float64)
    for corner in range(1 << dims):
        index = tuple(
            starts[:, axis] if (corner >> axis) & 1 else ends[:, axis] + 1
            for axis in range(dims)
        )
        term = prefix[index]
        sums += -term if bin(corner).count("1") % 2 else term
    return sums / total


def all_range_queries(domain_size: int, name: str = "all-ranges") -> RangeWorkload:
    """Every closed interval ``[a, b]`` with ``0 <= a <= b < D``.

    There are ``D (D + 1) / 2`` of them; intended for ``D`` up to a few
    thousand (the paper evaluates all queries up to ``D = 2^16``; here the
    exhaustive workload is used for the small-domain cells and the sampled
    workload everywhere else).
    """
    rows, cols = np.tril_indices(int(domain_size))
    # tril gives pairs with cols <= rows, i.e. [start=cols, end=rows].
    queries = np.stack([cols, rows], axis=1)
    return RangeWorkload(domain_size=int(domain_size), queries=queries, name=name)


def sampled_range_queries(
    domain_size: int, start_step: int, name: Optional[str] = None
) -> RangeWorkload:
    """All ranges beginning at evenly spaced starting points.

    This is the paper's strategy for ``D = 2^20`` and ``2^22`` (start points
    every ``2^15`` / ``2^16`` items).  Every range ``[s, b]`` with ``s`` a
    sampled start and ``b >= s`` is included.
    """
    domain_size = int(domain_size)
    if start_step < 1:
        raise ConfigurationError(f"start_step must be >= 1, got {start_step!r}")
    starts = np.arange(0, domain_size, int(start_step), dtype=np.int64)
    pieces = [
        np.stack([np.full(domain_size - s, s, dtype=np.int64), np.arange(s, domain_size)], axis=1)
        for s in starts
    ]
    queries = np.concatenate(pieces, axis=0)
    return RangeWorkload(
        domain_size=domain_size,
        queries=queries,
        name=name or f"sampled-starts-{start_step}",
    )


def fixed_length_queries(
    domain_size: int, length: int, name: Optional[str] = None
) -> RangeWorkload:
    """All ``D - r + 1`` ranges of a fixed length ``r`` (Figure 4's x-axis)."""
    domain_size = int(domain_size)
    if not 1 <= length <= domain_size:
        raise InvalidQueryError(
            f"length must be in [1, {domain_size}], got {length!r}"
        )
    starts = np.arange(0, domain_size - length + 1, dtype=np.int64)
    queries = np.stack([starts, starts + length - 1], axis=1)
    return RangeWorkload(
        domain_size=domain_size, queries=queries, name=name or f"length-{length}"
    )


def prefix_queries(domain_size: int, name: str = "prefixes") -> RangeWorkload:
    """Every prefix query ``[0, b]`` (Section 4.7 / Table 6)."""
    domain_size = int(domain_size)
    ends = np.arange(domain_size, dtype=np.int64)
    queries = np.stack([np.zeros(domain_size, dtype=np.int64), ends], axis=1)
    return RangeWorkload(domain_size=domain_size, queries=queries, name=name)


def random_range_queries(
    domain_size: int,
    count: int,
    random_state: RandomState = None,
    name: Optional[str] = None,
) -> RangeWorkload:
    """Uniformly random ranges (endpoints drawn independently and sorted)."""
    domain_size = int(domain_size)
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count!r}")
    rng = as_generator(random_state)
    endpoints = rng.integers(0, domain_size, size=(int(count), 2))
    queries = np.sort(endpoints, axis=1)
    return RangeWorkload(
        domain_size=domain_size, queries=queries, name=name or f"random-{count}"
    )


def random_boxes(
    side: int,
    count: int,
    dims: int = 2,
    random_state: RandomState = None,
) -> np.ndarray:
    """Uniformly random axis-aligned boxes on a ``[side]^dims`` grid.

    Returns a ``(count, 2 * dims)`` ``int64`` array of per-axis inclusive
    ``(start, end)`` pairs in axis order (each axis's endpoints drawn
    independently and sorted) — the query format of
    :meth:`repro.core.multidim.HierarchicalGridND.answer_boxes` and
    :class:`BoxWorkload`.  Axes consume the random stream in order, so
    ``dims=2`` reproduces the historical :func:`random_rectangles` draws
    exactly.
    """
    side = int(side)
    if side < 1:
        raise ConfigurationError(f"side must be a positive integer, got {side!r}")
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count!r}")
    if not isinstance(dims, (int, np.integer)) or dims < 1:
        raise ConfigurationError(f"dims must be a positive integer, got {dims!r}")
    rng = as_generator(random_state)
    axes = [
        np.sort(rng.integers(0, side, size=(int(count), 2)), axis=1)
        for _ in range(int(dims))
    ]
    return np.concatenate(axes, axis=1)


def random_rectangles(
    side: int,
    count: int,
    random_state: RandomState = None,
) -> np.ndarray:
    """Uniformly random axis-aligned rectangles on a ``side x side`` grid —
    :func:`random_boxes` at ``dims=2`` (kept as the historical name).

    Returns an ``(count, 4)`` ``int64`` array of
    ``(x_start, x_end, y_start, y_end)`` rows, the query format of
    :meth:`repro.core.multidim.HierarchicalGrid2D.answer_rectangles`.
    """
    return random_boxes(side, count, dims=2, random_state=random_state)
