"""End-to-end persistence: crash recovery, session save/load, async collect.

The acceptance story of the persistence + service tier, exercised the way a
deployment would: a shard fleet dies mid-collection and resumes from its
checkpoint with no statistical trace; an analyst saves a fitted session and
re-opens it later; a population arrives through the async multi-producer
ingestion path and lands on the same answers as a one-shot fit.
"""

import numpy as np
import pytest

from repro import LdpRangeQuerySession, persist
from repro.data.synthetic import cauchy_probabilities, sample_items
from repro.streaming import ShardedCollector

DOMAIN = 256
EPSILON = 1.1
N_USERS = 100_000


@pytest.fixture(scope="module")
def population():
    return sample_items(
        cauchy_probabilities(DOMAIN), N_USERS, random_state=20190630
    )


class TestCrashRecovery:
    @pytest.mark.parametrize("spec", ["hhc_4", "haar", "flat_oue"])
    @pytest.mark.parametrize("crash_after", [1, 7])
    def test_killed_shard_fleet_resumes_exactly(
        self, population, tmp_path, spec, crash_after
    ):
        """A restored collector finishes with the uninterrupted run's exact
        reduced estimates — early and late crash points."""
        batches = np.array_split(population, 12)

        def build():
            return ShardedCollector(
                spec, EPSILON, DOMAIN, n_shards=4, random_state=99
            )

        uninterrupted = build()
        for batch in batches:
            uninterrupted.submit(batch)
        reference = uninterrupted.reduce()

        collector = build()
        for batch in batches[:crash_after]:
            collector.submit(batch)
        path = collector.checkpoint(tmp_path / f"{spec}-{crash_after}.snap")
        del collector  # the crash

        resumed = ShardedCollector.restore(path)
        for batch in batches[crash_after:]:
            resumed.submit(batch)
        recovered = resumed.reduce()

        assert recovered.n_users == reference.n_users == N_USERS
        np.testing.assert_array_equal(
            recovered.estimate_frequencies(), reference.estimate_frequencies()
        )
        queries = np.array([[0, 31], [10, 200], [0, DOMAIN - 1]])
        np.testing.assert_array_equal(
            recovered.answer_ranges(queries), reference.answer_ranges(queries)
        )

    def test_checkpoint_chain_across_repeated_crashes(self, population, tmp_path):
        """Checkpoint -> crash -> restore -> checkpoint -> crash -> restore."""
        batches = np.array_split(population, 9)
        uninterrupted = ShardedCollector("hhc_4", EPSILON, DOMAIN, n_shards=3, random_state=5)
        for batch in batches:
            uninterrupted.submit(batch)
        expected = uninterrupted.reduce().estimate_frequencies()

        collector = ShardedCollector("hhc_4", EPSILON, DOMAIN, n_shards=3, random_state=5)
        for index, batch in enumerate(batches):
            collector.submit(batch)
            if index in (2, 5):
                path = collector.checkpoint(tmp_path / f"chain-{index}.snap")
                del collector
                collector = ShardedCollector.restore(path)
        np.testing.assert_array_equal(
            collector.reduce().estimate_frequencies(), expected
        )


class TestSessionPersistence:
    def test_save_load_answers_identically(self, population, tmp_path):
        session = LdpRangeQuerySession(
            epsilon=EPSILON, domain_size=DOMAIN, mechanism="hhc_4"
        )
        session.collect(population, random_state=3)
        path = session.save(tmp_path / "session.snap")

        reopened = LdpRangeQuerySession.load(path)
        assert reopened.epsilon == session.epsilon
        assert reopened.domain_size == session.domain_size
        assert reopened.n_users == session.n_users
        np.testing.assert_array_equal(reopened.histogram(), session.histogram())
        np.testing.assert_array_equal(reopened.cdf(), session.cdf())
        assert reopened.quantiles() == session.quantiles()
        assert reopened.median() == session.median()

    def test_bytes_round_trip_continues_collection(self, population):
        session = LdpRangeQuerySession(
            epsilon=EPSILON, domain_size=DOMAIN, mechanism="haar"
        )
        session.collect_batch(population[:50_000], random_state=1)
        reopened = LdpRangeQuerySession.from_bytes(session.to_bytes())
        reopened.collect_batch(population[50_000:], random_state=2)
        assert reopened.n_users == N_USERS

    def test_accumulator_snapshot_rejected_by_session_load(self, population):
        from repro.frequency_oracles.registry import make_oracle

        oracle = make_oracle("oue", epsilon=EPSILON, domain_size=DOMAIN)
        accumulator = oracle.accumulator().add_items(
            population[:1000], np.random.default_rng(0)
        )
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            LdpRangeQuerySession.from_bytes(persist.to_bytes(accumulator))


class TestAsyncCollection:
    def test_collect_async_matches_one_shot_accuracy(self, population):
        counts = np.bincount(population, minlength=DOMAIN)
        truth = counts / counts.sum()

        session = LdpRangeQuerySession(
            epsilon=EPSILON, domain_size=DOMAIN, mechanism="hhc_4"
        )
        session.collect_async(
            np.array_split(population, 20),
            n_shards=4,
            n_producers=4,
            router="least-loaded",
            random_state=13,
        )
        assert session.n_users == N_USERS
        report = session.last_ingestion_report
        assert report is not None and report.n_users == N_USERS

        one_shot = LdpRangeQuerySession(
            epsilon=EPSILON, domain_size=DOMAIN, mechanism="hhc_4"
        )
        one_shot.collect(population, random_state=13)

        async_mse = float(np.mean((session.histogram() - truth) ** 2))
        one_shot_mse = float(np.mean((one_shot.histogram() - truth) ** 2))
        assert async_mse < 3.0 * one_shot_mse + 1e-9

    def test_collect_async_on_top_of_prior_collection(self, population):
        session = LdpRangeQuerySession(
            epsilon=EPSILON, domain_size=DOMAIN, mechanism="flat_oue"
        )
        session.collect(population[:40_000], random_state=1)
        session.collect_async(
            np.array_split(population[40_000:], 6),
            n_shards=2,
            random_state=2,
        )
        assert session.n_users == N_USERS
