"""End-to-end accuracy tests reproducing the paper's qualitative claims.

These run the full pipeline (synthetic data -> mechanism -> workload
evaluation) at a small scale and assert the *relationships* the paper
establishes, which are scale-invariant:

* hierarchical and wavelet methods beat the flat method by a wide margin on
  long ranges over non-trivial domains (Section 4.3 / Figure 4);
* the flat method remains the best for point queries (Figure 4, r = 1);
* consistency reliably improves hierarchical histograms (Section 4.5);
* measured errors respect the theoretical variance bounds (Fact 1, eq. (1),
  (2), (3));
* error decreases as epsilon grows (Tables 5/6).
"""

import numpy as np
import pytest

from repro.analysis.metrics import mean_squared_error
from repro.analysis.variance import (
    flat_range_variance,
    haar_range_variance,
    hh_consistent_range_variance,
)
from repro.core.factory import mechanism_from_spec
from repro.data.synthetic import cauchy_probabilities, expected_counts
from repro.data.workloads import all_range_queries, fixed_length_queries
from repro.privacy.randomness import spawn_generators

DOMAIN = 1024
N_USERS = 1 << 17
EPSILON = 1.1


@pytest.fixture(scope="module")
def counts():
    return expected_counts(cauchy_probabilities(DOMAIN), N_USERS)


def _mse(spec, counts, workload, seed, epsilon=EPSILON, repetitions=3):
    errors = []
    truth = workload.true_answers(counts)
    for rng in spawn_generators(seed, repetitions):
        mechanism = mechanism_from_spec(spec, epsilon=epsilon, domain_size=DOMAIN)
        mechanism.fit_counts(counts, random_state=rng, mode="aggregate")
        errors.append(mean_squared_error(truth, mechanism.answer_workload(workload)))
    return float(np.mean(errors))


class TestHierarchyVersusFlat:
    def test_long_ranges_favor_hierarchical_and_wavelet(self, counts):
        workload = fixed_length_queries(DOMAIN, DOMAIN // 2).subset(300, random_state=0)
        flat = _mse("flat_oue", counts, workload, seed=1)
        tree = _mse("hhc_4", counts, workload, seed=2)
        haar = _mse("haar", counts, workload, seed=3)
        assert tree < flat / 4, "HH should beat flat by a wide margin on long ranges"
        assert haar < flat / 4, "Haar should beat flat by a wide margin on long ranges"

    def test_point_queries_favor_flat(self, counts):
        workload = fixed_length_queries(DOMAIN, 1).subset(400, random_state=0)
        flat = _mse("flat_oue", counts, workload, seed=4)
        tree = _mse("hhc_2", counts, workload, seed=5)
        assert flat < tree

    def test_consistency_never_hurts(self, counts):
        workload = all_range_queries(DOMAIN).subset(2000, random_state=1)
        for branching in (4, 16):
            raw = _mse(f"hh_{branching}", counts, workload, seed=6 + branching)
            consistent = _mse(f"hhc_{branching}", counts, workload, seed=6 + branching)
            assert consistent <= raw * 1.1

    def test_hh_and_haar_are_competitive_with_each_other(self, counts):
        workload = all_range_queries(DOMAIN).subset(2000, random_state=2)
        tree = _mse("hhc_4", counts, workload, seed=11)
        haar = _mse("haar", counts, workload, seed=12)
        ratio = max(tree, haar) / min(tree, haar)
        assert ratio < 3.0, "the two families should be within a small factor of each other"


class TestTheoreticalBounds:
    def test_flat_error_within_fact1_bound(self, counts):
        length = 64
        workload = fixed_length_queries(DOMAIN, length).subset(300, random_state=3)
        measured = _mse("flat_oue", counts, workload, seed=13)
        bound = flat_range_variance(EPSILON, N_USERS, length, DOMAIN)
        assert measured < 2.0 * bound

    def test_consistent_hh_error_within_section45_bound(self, counts):
        length = 256
        workload = fixed_length_queries(DOMAIN, length).subset(300, random_state=4)
        measured = _mse("hhc_8", counts, workload, seed=14)
        bound = hh_consistent_range_variance(EPSILON, N_USERS, length, DOMAIN, 8)
        assert measured < 2.0 * bound

    def test_haar_error_within_eq3_bound(self, counts):
        workload = all_range_queries(DOMAIN).subset(2000, random_state=5)
        measured = _mse("haar", counts, workload, seed=15)
        bound = haar_range_variance(EPSILON, N_USERS, DOMAIN)
        assert measured < 2.0 * bound


class TestEpsilonBehaviour:
    def test_error_decreases_with_epsilon(self, counts):
        workload = all_range_queries(DOMAIN).subset(1500, random_state=6)
        high_privacy = _mse("hhc_4", counts, workload, seed=16, epsilon=0.2)
        low_privacy = _mse("hhc_4", counts, workload, seed=17, epsilon=1.4)
        assert low_privacy < high_privacy / 3

    def test_wavelet_preferred_at_high_privacy(self, counts):
        # Section 5.2: for small epsilon HaarHRR is (weakly) preferred.
        workload = all_range_queries(DOMAIN).subset(1500, random_state=7)
        haar = _mse("haar", counts, workload, seed=18, epsilon=0.2, repetitions=5)
        tree16 = _mse("hhc_16", counts, workload, seed=19, epsilon=0.2, repetitions=5)
        assert haar < tree16 * 1.25
