"""Unit tests for repro.hierarchy.tree."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, InvalidDomainError, InvalidQueryError
from repro.hierarchy.tree import DomainTree


class TestConstruction:
    def test_power_of_branching_domain(self):
        tree = DomainTree(64, 4)
        assert tree.height == 3
        assert tree.padded_size == 64

    def test_padding_for_awkward_domain(self):
        tree = DomainTree(100, 4)
        assert tree.height == 4
        assert tree.padded_size == 256
        assert tree.domain_size == 100

    def test_binary_tree_heights(self):
        assert DomainTree(256, 2).height == 8
        assert DomainTree(256, 16).height == 2

    def test_rejects_invalid_domain(self):
        with pytest.raises(InvalidDomainError):
            DomainTree(0, 2)

    def test_rejects_invalid_branching(self):
        with pytest.raises(ConfigurationError):
            DomainTree(64, 1)

    def test_trivial_domain(self):
        tree = DomainTree(1, 2)
        assert tree.height == 1
        assert tree.padded_size == 2


class TestGeometry:
    def test_levels_and_node_counts(self):
        tree = DomainTree(64, 4)
        assert list(tree.levels) == [1, 2, 3]
        assert [tree.nodes_at_level(level) for level in tree.levels] == [4, 16, 64]
        assert [tree.block_size(level) for level in tree.levels] == [16, 4, 1]

    def test_total_nodes(self):
        tree = DomainTree(64, 4)
        assert tree.total_nodes() == 4 + 16 + 64

    def test_node_of_item(self):
        tree = DomainTree(64, 4)
        assert tree.node_of_item(1, 0) == 0
        assert tree.node_of_item(1, 63) == 3
        assert tree.node_of_item(3, 17) == 17

    def test_path_of_item(self):
        tree = DomainTree(64, 2)
        path = tree.path_of_item(5)
        assert path[0] == (1, 0)
        assert path[-1] == (6, 5)
        assert len(path) == tree.height

    def test_node_range_and_clipping(self):
        tree = DomainTree(100, 4)  # padded to 256
        assert tree.node_range(1, 0) == (0, 63)
        # Node covering [64, 127] is clipped to the true domain end (99).
        assert tree.node_range(1, 1) == (64, 99)

    def test_children_and_parent(self):
        tree = DomainTree(64, 4)
        assert list(tree.children(1, 2)) == [8, 9, 10, 11]
        assert tree.parent(2, 9) == (1, 2)
        with pytest.raises(InvalidQueryError):
            tree.parent(1, 0)
        with pytest.raises(InvalidQueryError):
            tree.children(3, 0)

    def test_level_validation(self):
        tree = DomainTree(64, 4)
        with pytest.raises(InvalidQueryError):
            tree.nodes_at_level(0)
        with pytest.raises(InvalidQueryError):
            tree.nodes_at_level(4)

    def test_item_validation(self):
        tree = DomainTree(64, 4)
        with pytest.raises(InvalidQueryError):
            tree.node_of_item(1, 64)
        with pytest.raises(InvalidQueryError):
            tree.path_of_item(-1)


class TestHistograms:
    def test_level_histogram_from_items(self):
        tree = DomainTree(16, 2)
        items = np.array([0, 0, 1, 8, 15])
        histogram = tree.level_histogram(1, items)
        np.testing.assert_array_equal(histogram, [3, 2])

    def test_level_histogram_from_counts_matches_items(self, rng):
        tree = DomainTree(64, 4)
        items = rng.integers(0, 64, size=500)
        counts = np.bincount(items, minlength=64)
        for level in tree.levels:
            np.testing.assert_allclose(
                tree.level_histogram(level, items),
                tree.level_histogram_from_counts(level, counts),
            )

    def test_level_histogram_counts_shape_validation(self):
        tree = DomainTree(64, 4)
        with pytest.raises(InvalidDomainError):
            tree.level_histogram_from_counts(1, np.zeros(63))

    def test_padded_domain_histogram(self):
        tree = DomainTree(100, 4)
        counts = np.ones(100)
        leaf_histogram = tree.level_histogram_from_counts(tree.height, counts)
        assert leaf_histogram.shape[0] == 256
        assert leaf_histogram[:100].sum() == 100
        assert leaf_histogram[100:].sum() == 0
