"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError` so downstream code can
catch library-specific failures with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class InvalidPrivacyBudgetError(ReproError, ValueError):
    """Raised when an ``epsilon`` value is not a positive finite number."""


class InvalidDomainError(ReproError, ValueError):
    """Raised when a domain size is not a positive integer (or not a power
    of the required base, e.g. the Hadamard transform needs powers of two)."""


class InvalidQueryError(ReproError, ValueError):
    """Raised when a range/prefix/quantile query is outside the domain or
    malformed (e.g. ``a > b`` or ``phi`` outside ``[0, 1]``)."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when query answering is attempted before any user reports have
    been aggregated (mechanism not yet *fitted*)."""


class ProtocolError(ReproError, RuntimeError):
    """Raised when user reports are malformed or inconsistent with the
    mechanism configuration (wrong level id, wrong report length, ...)."""


class ConfigurationError(ReproError, ValueError):
    """Raised for invalid mechanism / experiment configuration values, such
    as a branching factor below two or a non-positive population size."""


class ServiceOverloadedError(ReproError, RuntimeError):
    """Raised when a non-blocking submission finds the target shard's queue
    full (or the service mid-scale).  The network tier maps this to HTTP
    ``503 Service Unavailable`` with a ``Retry-After`` hint — the batch was
    *not* absorbed and should be retried by the producer."""
