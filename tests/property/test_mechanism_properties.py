"""Property-based tests on whole mechanisms.

These check structural invariants that must hold for *every* realisation of
the privacy noise, not just on average:

* consistent hierarchical histograms and the wavelet mechanism answer
  queries *additively* (splitting a range cannot change the answer);
* the full-domain query is exactly 1 for consistent HH (the root is known);
* estimates returned by ``estimate_frequencies`` reproduce the range
  answers when summed;
* quantiles returned for increasing targets are monotone.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.factory import mechanism_from_spec
from repro.core.quantiles import estimate_quantiles
from repro.data.synthetic import expected_counts, zipf_probabilities

DOMAIN = 64

specs = st.sampled_from(["hhc_2", "hhc_4", "hhc_8", "haar", "flat_oue"])
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _fit(spec, seed, epsilon=1.1):
    counts = expected_counts(zipf_probabilities(DOMAIN, 1.2), 30_000)
    mechanism = mechanism_from_spec(spec, epsilon=epsilon, domain_size=DOMAIN)
    mechanism.fit_counts(counts, random_state=seed, mode="aggregate")
    return mechanism, counts


@given(spec=specs, seed=seeds, data=st.data())
@settings(max_examples=40, deadline=None)
def test_additivity_of_adjacent_ranges(spec, seed, data):
    mechanism, _ = _fit(spec, seed)
    start = data.draw(st.integers(min_value=0, max_value=DOMAIN - 2))
    end = data.draw(st.integers(min_value=start + 1, max_value=DOMAIN - 1))
    middle = data.draw(st.integers(min_value=start, max_value=end - 1))
    whole = mechanism.answer_range(start, end)
    split = mechanism.answer_range(start, middle) + mechanism.answer_range(middle + 1, end)
    assert whole == pytest.approx(split, abs=1e-8)


@given(seed=seeds)
@settings(max_examples=25, deadline=None)
def test_consistent_hh_full_domain_is_exactly_one(seed):
    mechanism, _ = _fit("hhc_4", seed)
    assert mechanism.answer_range(0, DOMAIN - 1) == pytest.approx(1.0, abs=1e-8)


@given(spec=specs, seed=seeds, data=st.data())
@settings(max_examples=40, deadline=None)
def test_frequencies_sum_to_range_answers(spec, seed, data):
    mechanism, _ = _fit(spec, seed)
    frequencies = mechanism.estimate_frequencies()
    start = data.draw(st.integers(min_value=0, max_value=DOMAIN - 1))
    end = data.draw(st.integers(min_value=start, max_value=DOMAIN - 1))
    assert mechanism.answer_range(start, end) == pytest.approx(
        frequencies[start : end + 1].sum(), abs=1e-8
    )


@given(spec=specs, seed=seeds)
@settings(max_examples=30, deadline=None)
def test_quantiles_are_monotone_in_target(spec, seed):
    mechanism, _ = _fit(spec, seed)
    quantiles = estimate_quantiles(mechanism, (0.1, 0.3, 0.5, 0.7, 0.9))
    assert quantiles == sorted(quantiles)


@given(spec=specs, seed=seeds)
@settings(max_examples=20, deadline=None)
def test_answers_stay_in_a_sane_interval(spec, seed):
    # Estimates are unbiased, not clipped, but with 30k users and eps=1.1
    # they must stay within a generous constant of [0, 1].
    mechanism, _ = _fit(spec, seed)
    answers = mechanism.answer_ranges(
        np.array([[0, DOMAIN - 1], [0, 0], [10, 50], [32, 63]])
    )
    assert np.all(answers > -0.5) and np.all(answers < 1.5)
