"""Ablation A — level sampling vs budget splitting (Section 4.4).

The paper's key protocol decision for the local model is to have every user
*sample* one tree level and spend the whole budget there, instead of
*splitting* the budget across all h levels as centralized algorithms do.
The analysis says splitting inflates the error from O(h) to O(h^2); this
ablation measures both variants on the same dataset and workload.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import ablation_sampling_vs_splitting
from repro.experiments.reporting import format_table


@pytest.mark.benchmark(group="ablation")
def test_sampling_beats_splitting(run_once, bench_config):
    domain = 1 << 10
    results = run_once(
        ablation_sampling_vs_splitting, bench_config, domain, branching=2
    )
    rows = [
        [label, cell.scaled_mse]
        for label, cell in sorted(results.items())
    ]
    print(f"\n=== Ablation A | D = 2^10, B = 2, eps = 1.1 | MSE x 1000 ===")
    print(format_table(["budget strategy", "mse x1000"], rows))

    # Sampling must win, and by a visible margin for a deep binary tree
    # (h = 10 here, so the h^2 / h gap is large).
    assert results["sampling"].mse_mean < results["splitting"].mse_mean / 1.5
