"""Experiment configuration.

Two named presets are provided:

* :data:`PAPER_SCALE` — the parameters of the paper's evaluation
  (``N = 2^26`` users, domains up to ``2^22``, 5 repetitions).  Running at
  this scale is possible with the aggregate simulation mode but takes hours
  on a laptop; it exists so that the exact original setting is encoded in
  code rather than prose.
* :data:`LAPTOP_SCALE` — the defaults used by the benchmark suite
  (``N = 2^17`` users, domains up to ``2^14``, 3 repetitions).  Because all
  estimators are unbiased with variance proportional to ``1/N``, shrinking
  ``N`` scales every mean-squared-error cell by the same factor and
  preserves the comparisons between methods (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

import numpy as np

from repro.data.synthetic import cauchy_probabilities, expected_counts
from repro.exceptions import ConfigurationError

__all__ = ["DataConfig", "ExperimentConfig", "PAPER_SCALE", "LAPTOP_SCALE"]


@dataclass(frozen=True)
class DataConfig:
    """Synthetic input distribution configuration (Section 5, Dataset Used).

    Attributes
    ----------
    center_fraction:
        The paper's ``P``: the Cauchy mode sits at ``P * D`` (default 0.4).
    height_fraction:
        Cauchy scale as a fraction of ``D`` (default 0.1, i.e. ``D / 10``).
    """

    center_fraction: float = 0.4
    height_fraction: float = 0.1

    def probabilities(self, domain_size: int) -> np.ndarray:
        """The item distribution over a domain of the given size."""
        return cauchy_probabilities(
            domain_size,
            center_fraction=self.center_fraction,
            height_fraction=self.height_fraction,
        )

    def counts(self, domain_size: int, n_users: int) -> np.ndarray:
        """Deterministic per-item counts for ``n_users`` (largest remainders).

        The experiments use deterministic input counts so that the only
        randomness across repetitions is the privacy noise, matching how the
        paper reports means and standard deviations over 5 runs of the
        mechanisms on a fixed dataset.
        """
        return expected_counts(self.probabilities(domain_size), n_users)


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale parameters shared by the table/figure generators."""

    n_users: int = 1 << 17
    repetitions: int = 3
    epsilon: float = 1.1
    domain_sizes: Tuple[int, ...] = (1 << 8, 1 << 12, 1 << 14)
    epsilons: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0, 1.1, 1.2, 1.4)
    max_queries_per_workload: int = 20_000
    seed: int = 20190630
    #: Process count for the (epsilon, spec, repetition) fan-out of the grid
    #: drivers; 1 runs serially.  Any value yields bit-identical results.
    workers: int = 1
    data: DataConfig = field(default_factory=DataConfig)

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ConfigurationError("n_users must be positive")
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be positive")
        if self.max_queries_per_workload < 1:
            raise ConfigurationError("max_queries_per_workload must be positive")
        if self.workers < 1:
            raise ConfigurationError("workers must be positive")

    def scaled(self, **overrides) -> "ExperimentConfig":
        """Return a copy with some fields overridden (dataclass replace)."""
        return replace(self, **overrides)


#: The paper's original evaluation scale (Section 5).
PAPER_SCALE = ExperimentConfig(
    n_users=1 << 26,
    repetitions=5,
    domain_sizes=(1 << 8, 1 << 16, 1 << 20, 1 << 22),
    max_queries_per_workload=17_000_000,
)

#: The default laptop-scale configuration used by the benchmark suite.
LAPTOP_SCALE = ExperimentConfig()
