"""Range query decomposition onto tree nodes.

A range query ``[a, b]`` is answered by summing the estimated weights of the
nodes in its B-adic decomposition.  To make evaluating large query workloads
cheap, the decomposition is expressed as *runs*: per tree level, a contiguous
span of node indices.  With per-level prefix sums of the estimates, each run
costs O(1) to evaluate, so a query costs ``O(B log_B D)`` regardless of its
length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.exceptions import InvalidQueryError
from repro.hierarchy.tree import DomainTree
from repro.transforms.badic import badic_decompose

__all__ = [
    "NodeRun",
    "batched_axis_runs",
    "batched_range_sums",
    "decompose_box_to_runs",
    "decompose_to_runs",
    "runs_per_level",
]


@dataclass(frozen=True)
class NodeRun:
    """A contiguous run of node indices at one tree level.

    Attributes
    ----------
    level:
        Tree level of the run (1 = children of the root, ``h`` = leaves).
    first, last:
        Inclusive node-index bounds of the run.
    """

    level: int
    first: int
    last: int

    @property
    def count(self) -> int:
        return self.last - self.first + 1


def decompose_to_runs(tree: DomainTree, start: int, end: int) -> List[NodeRun]:
    """Decompose a range query into per-level runs of tree nodes.

    Parameters
    ----------
    tree:
        Domain tree describing the hierarchy geometry.
    start, end:
        Inclusive item bounds of the query; must lie inside the original
        domain.

    Returns
    -------
    list of :class:`NodeRun`
        Runs over *tree* levels.  Adjacent B-adic intervals of the same size
        are merged into a single run, so the number of runs is at most two
        per level.
    """
    if not 0 <= start <= end < tree.domain_size:
        raise InvalidQueryError(
            f"invalid range [{start}, {end}] for domain of size {tree.domain_size}"
        )
    intervals = badic_decompose(start, end, tree.branching, domain_size=tree.padded_size)
    runs: List[NodeRun] = []
    for interval in intervals:
        # A B-adic interval of length B^j corresponds to a node at tree level
        # h - j with node index `interval.index`.
        level = tree.height - interval.level
        if level == 0:
            # The whole (padded) domain: weight is the root, which is exactly
            # the total fraction.  Express it as the full run of level-1
            # nodes so that callers never need a special root estimate.
            runs.append(NodeRun(level=1, first=0, last=tree.nodes_at_level(1) - 1))
            continue
        index = interval.index
        if runs and runs[-1].level == level and runs[-1].last == index - 1:
            runs[-1] = NodeRun(level=level, first=runs[-1].first, last=index)
        else:
            runs.append(NodeRun(level=level, first=index, last=index))
    return runs


def decompose_box_to_runs(
    tree: DomainTree,
    ranges: Sequence[Tuple[int, int]],
) -> List[List[NodeRun]]:
    """Per-axis run decompositions of an axis-aligned box query.

    The product-decomposition step of the paper's Section 6 argument: a
    ``d``-dimensional box splits into the Cartesian product of its per-axis
    B-adic decompositions, so the box is covered by the run products
    ``itertools.product(*result)`` and each product evaluates via
    inclusion–exclusion over its ``2^d`` corners.  Every axis shares the
    same *tree* geometry (square domains); bounds are inclusive
    ``(start, end)`` pairs, validated per axis by :func:`decompose_to_runs`.
    """
    return [
        decompose_to_runs(tree, int(start), int(end)) for start, end in ranges
    ]


def runs_per_level(runs: List[NodeRun]) -> Dict[int, List[NodeRun]]:
    """Group runs by tree level (helper for per-level evaluation)."""
    grouped: Dict[int, List[NodeRun]] = {}
    for run in runs:
        grouped.setdefault(run.level, []).append(run)
    return grouped


def batched_axis_runs(
    tree: DomainTree,
    starts: np.ndarray,
    ends: np.ndarray,
) -> Dict[int, List[tuple]]:
    """Per-level node runs of many 1-D B-adic decompositions at once.

    Vectorised counterpart of grouping :func:`decompose_to_runs` output with
    :func:`runs_per_level` for a whole workload.  For every tree level the
    result holds a small fixed number of *run slots*; each slot is a pair of
    integer arrays ``(first, last_exclusive)`` giving, per query, the
    node-index bounds of one contiguous run at that level in prefix-sum
    coordinates (``first == last_exclusive`` marks an empty run for that
    query, which contributes zero through any prefix-difference evaluation).

    This is the single authoritative peeling schedule: one left and one
    right peel per level (up to the next coarser alignment and down from
    the last one), with queries that survive every level (the whole padded
    domain, the implicit root) charged as the full level-1 run — the same
    convention as :func:`decompose_to_runs`.  :func:`batched_range_sums`
    evaluates the slots as 1-D prefix differences, and
    :meth:`repro.core.multidim.HierarchicalGrid2D.answer_rectangles`
    combines *pairs* of axis decompositions into B-adic rectangle products
    without a Python loop per query.

    Parameters
    ----------
    tree:
        Domain tree describing the hierarchy geometry.
    starts, ends:
        Length-``n`` arrays of inclusive, already validated query bounds
        inside the original domain.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    # The peel itself is a pure int64 computation and dispatches to the
    # active repro.kernels backend; every backend returns bit-identical
    # bounds, this wrapper only reshapes them into the per-level dict.
    bounds, survivors = kernels.badic_axis_runs(
        starts, ends, tree.branching, tree.height
    )
    runs: Dict[int, List[tuple]] = {}
    for index, level in enumerate(range(tree.height, 0, -1)):
        runs[level] = [
            (bounds[index, 0], bounds[index, 1]),
            (bounds[index, 2], bounds[index, 3]),
        ]
    # Only the full padded domain survives every level: charge the implicit
    # root as the full level-1 run, exactly like decompose_to_runs.
    if np.any(survivors):
        runs[1].append(
            (
                np.zeros(starts.shape[0], dtype=np.int64),
                np.where(survivors, tree.nodes_at_level(1), 0),
            )
        )
    return runs


def batched_range_sums(
    tree: DomainTree,
    level_prefix: Mapping[int, np.ndarray],
    queries: np.ndarray,
) -> np.ndarray:
    """Evaluate many B-adic decompositions at once from per-level prefix sums.

    Vectorised equivalent of summing :func:`decompose_to_runs` runs for every
    query: all queries walk the tree together, one level per iteration, so a
    workload of ``n`` queries costs ``O(h)`` numpy passes over length-``n``
    arrays instead of ``n`` Python-level decompositions.

    The decomposition itself lives in :func:`batched_axis_runs` (the single
    authoritative peel, shared with the 2-D rectangle path); this function
    just evaluates each run slot as a prefix difference.

    Parameters
    ----------
    tree:
        Domain tree describing the hierarchy geometry.
    level_prefix:
        For every tree level, the prefix-sum array of that level's node
        estimates (length ``nodes_at_level(level) + 1``).
    queries:
        ``(n, 2)`` array of inclusive, already validated ``[start, end]``
        pairs inside the original domain.

    Returns
    -------
    numpy.ndarray
        Length-``n`` float vector of range sums, identical (up to float
        rounding) to evaluating each decomposition separately.
    """
    queries = np.asarray(queries, dtype=np.int64)
    if queries.ndim != 2 or queries.shape[1] != 2:
        raise InvalidQueryError("queries must be an (n, 2) array")
    answers = np.zeros(queries.shape[0], dtype=np.float64)
    runs = batched_axis_runs(tree, queries[:, 0], queries[:, 1])
    for level in range(tree.height, 0, -1):
        prefix = level_prefix[level]
        for first, last in runs[level]:
            answers += prefix[last] - prefix[first]
    return answers
