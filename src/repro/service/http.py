"""Stdlib-asyncio HTTP front for the ingestion service.

The network tier the ROADMAP asked for, built on ``asyncio.start_server``
only — no web framework, because the surface is four routes and the repo's
rule is stdlib + numpy:

* ``POST /v1/batches`` — JSON ``{"items": [...], "mode"?, "key"?,
  "epsilon"?, "domain_size"?}``; routed into the
  :class:`~repro.service.IngestionService` via the non-blocking
  :meth:`~repro.service.IngestionService.try_submit` path.  A full shard
  queue (or an in-progress scale event) surfaces as ``503`` with a
  ``Retry-After`` hint instead of parking the remote producer.
* ``POST /v1/points`` — JSON ``{"points": [[x, y], ...]}`` for 2-D grid
  mechanisms; the collector's mechanism flattens to row-major items before
  any routing decision is consumed.  Both submit endpoints also accept a
  raw ``application/x-npy`` body (the batch array itself, no JSON
  envelope) — the binary fast path that skips JSON encode/decode.
* ``POST /v1/query`` — JSON ``{"boxes": [[a1, b1, ...], ...]}`` or
  ``{"ranges": [[a, b], ...]}``; answered from the service's reduced +
  materialized read view (rebuilt only when the collector's generation
  signature moves) with concurrent requests micro-batched through
  :class:`~repro.service.query.QueryCoalescer`.  ``Accept:
  application/x-npy`` negotiates a binary response body.
* ``POST /v1/quantiles`` — JSON ``{"phis": [0.5, ...]}``, same view and
  content negotiation.
* ``GET /healthz`` — liveness JSON.
* ``GET /metrics`` — Prometheus text exposition (version 0.0.4): the
  service's :meth:`~repro.service.IngestionService.stats` snapshot plus
  the server's own request counters and latency histogram, rendered by
  :mod:`repro.service.metrics`.

Error mapping is deliberate: malformed JSON / bad report payloads → 400,
``epsilon`` or ``domain_size`` claims that contradict the served spec →
409 (the producer and server disagree about the protocol — retrying won't
help), backpressure → 503 + ``Retry-After``.

When an :class:`~repro.service.autoscale.ShardAutoscaler` is attached,
every accepted batch ticks its submission counter and a due check runs
*after* the response is queued for write — the accept/503 decision stays
on the hot path, the quiesce-and-rebalance happens between requests, and
the scale schedule is a deterministic function of the request sequence.

:class:`HttpServerThread` packages service + server + autoscaler on a
dedicated event-loop thread so synchronous tests, benchmarks and the
``python -m repro serve`` CLI can stand up a real localhost endpoint with
two lines.
"""

from __future__ import annotations

import asyncio
import io
import json
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.cache import DEFAULT_ANSWER_CACHE_SIZE
from repro.exceptions import (
    ConfigurationError,
    NotFittedError,
    ReproError,
    ServiceOverloadedError,
)
from repro.service.autoscale import AutoscalePolicy, ShardAutoscaler
from repro.service.ingestion import IngestionService
from repro.service.metrics import (
    MetricsRegistry,
    ingestion_stats_lines,
)
from repro.service.query import QueryCoalescer
from repro.streaming.sharded import ShardedCollector

__all__ = ["HttpServerThread", "ReproHttpServer"]

#: Bound on accepted request bodies; a batch of a million int64 item ids
#: rendered as JSON stays well under this.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Retry hint (seconds) attached to every 503.  Small on purpose: queues
#: are short and drain in milliseconds; the value is a pacing nudge, not
#: an outage estimate.
RETRY_AFTER_SECONDS = 1

_JSON = "application/json"
_PROM = "text/plain; version=0.0.4; charset=utf-8"
#: Binary wire format: one ``.npy`` serialized array as the whole body
#: (``numpy.save``/``numpy.load`` with ``allow_pickle=False``).  Accepted
#: as a request Content-Type on the submit endpoints and negotiated as a
#: response type on the query endpoints via the Accept header.
_NPY = "application/x-npy"

#: Path label used for unknown routes so 404 floods cannot mint unbounded
#: label cardinality in the request counter.
_OTHER_PATH = "<other>"
_KNOWN_PATHS = (
    "/v1/batches",
    "/v1/points",
    "/v1/query",
    "/v1/quantiles",
    "/healthz",
    "/metrics",
)


class _HttpRequest:
    """One parsed request: method, path, headers, raw body."""

    __slots__ = ("method", "path", "headers", "body", "keep_alive")

    def __init__(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive


class _HttpResponse:
    """Status + payload, rendered to the wire by the connection loop."""

    __slots__ = ("status", "reason", "body", "content_type", "extra_headers")

    _REASONS = {
        200: "OK",
        202: "Accepted",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        409: "Conflict",
        413: "Payload Too Large",
        500: "Internal Server Error",
        503: "Service Unavailable",
    }

    def __init__(
        self,
        status: int,
        body: bytes,
        content_type: str = _JSON,
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.status = int(status)
        self.reason = self._REASONS.get(self.status, "Unknown")
        self.body = body
        self.content_type = content_type
        self.extra_headers = dict(extra_headers or {})

    @classmethod
    def json(
        cls,
        status: int,
        payload: Mapping[str, Any],
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> "_HttpResponse":
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        return cls(status, body, _JSON, extra_headers)

    @classmethod
    def error(
        cls,
        status: int,
        message: str,
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> "_HttpResponse":
        return cls.json(status, {"error": message}, extra_headers)

    def encode(self, keep_alive: bool) -> bytes:
        lines = [
            f"HTTP/1.1 {self.status} {self.reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.extra_headers.items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("ascii") + self.body


class ReproHttpServer:
    """The asyncio HTTP listener; owns request metrics, not the service."""

    def __init__(
        self,
        service: IngestionService,
        autoscaler: Optional[ShardAutoscaler] = None,
        max_body_bytes: int = MAX_BODY_BYTES,
        readonly: bool = False,
    ) -> None:
        if not isinstance(service, IngestionService):
            raise ConfigurationError(
                f"ReproHttpServer fronts an IngestionService, got "
                f"{type(service).__name__}"
            )
        if autoscaler is not None and autoscaler.service is not service:
            raise ConfigurationError(
                "the autoscaler must drive the same service the server fronts"
            )
        self._service = service
        self._autoscaler = autoscaler
        self._max_body_bytes = int(max_body_bytes)
        self._readonly = bool(readonly)
        self._coalescer = QueryCoalescer()
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._handler_tasks: set = set()
        self.registry = MetricsRegistry()
        self._requests_total = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method, path and status code.",
            ("method", "path", "status"),
        )
        self._request_seconds = self.registry.histogram(
            "repro_http_request_seconds",
            "Wall-clock seconds from request parse to response write.",
            label_names=("path",),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> "ReproHttpServer":
        if self._server is not None:
            raise ConfigurationError("HTTP server is already listening")
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=int(port)
        )
        return self

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        # Closing a keep-alive transport delivers EOF to its handler, which
        # then returns cleanly — without this, loop teardown would cancel
        # handlers mid-read and log spurious CancelledErrors.
        for writer in list(self._connections):
            writer.close()
        if self._handler_tasks:
            results = await asyncio.gather(
                *list(self._handler_tasks), return_exceptions=True
            )
            failures = [
                result
                for result in results
                if isinstance(result, BaseException)
                and not isinstance(result, asyncio.CancelledError)
            ]
            if failures:
                raise failures[0]

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` to the kernel's pick)."""
        if self._server is None or not self._server.sockets:
            raise ConfigurationError("HTTP server is not listening")
        return int(self._server.sockets[0].getsockname()[1])

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        self._connections.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                started = time.perf_counter()
                if isinstance(request, _HttpResponse):
                    # Unparseable request: answer and drop the connection —
                    # we cannot trust the framing to find the next request.
                    writer.write(request.encode(keep_alive=False))
                    await writer.drain()
                    self._record("?", _OTHER_PATH, request.status, started)
                    break
                response = self._dispatch(request)
                if asyncio.iscoroutine(response):
                    # Query routes coalesce with other in-flight requests,
                    # so they hand back a coroutine instead of a response.
                    response = await response
                writer.write(response.encode(keep_alive=request.keep_alive))
                await writer.drain()
                self._record(
                    request.method, request.path, response.status, started
                )
                # A due autoscale check runs after the reply is on the wire:
                # the producer is never parked behind a quiesce.
                if (
                    self._autoscaler is not None
                    and response.status == 202
                    and self._autoscaler.note_submission(0)
                ):
                    await self._autoscaler.maybe_scale()
                if not request.keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handler_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer reset
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; ``None`` on clean EOF, an error response on
        malformed framing."""
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            return _HttpResponse.error(400, "request line too long")
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return _HttpResponse.error(400, "malformed request line")
        method, raw_path, version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line:
                return None
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if not _:
                return _HttpResponse.error(400, "malformed header line")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            return _HttpResponse.error(400, f"bad Content-Length {raw_length!r}")
        if length < 0:
            return _HttpResponse.error(400, f"bad Content-Length {raw_length!r}")
        if length > self._max_body_bytes:
            return _HttpResponse.error(
                413, f"body of {length} bytes exceeds {self._max_body_bytes}"
            )
        body = await reader.readexactly(length) if length else b""
        path = raw_path.split("?", 1)[0]
        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close" and version != "HTTP/1.0"
        return _HttpRequest(method.upper(), path, headers, body, keep_alive)

    def _record(self, method: str, path: str, status: int, started: float) -> None:
        label_path = path if path in _KNOWN_PATHS else _OTHER_PATH
        self._requests_total.inc(
            labels={"method": method, "path": label_path, "status": str(status)}
        )
        self._request_seconds.observe(
            time.perf_counter() - started, labels={"path": label_path}
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _dispatch(self, request: _HttpRequest):
        """Route to a response, or to a *coroutine* producing one (query
        routes — the connection loop awaits those so concurrent requests
        can coalesce)."""
        if request.path == "/healthz":
            if request.method != "GET":
                return _HttpResponse.error(405, "healthz is GET-only")
            return self._handle_healthz()
        if request.path == "/metrics":
            if request.method != "GET":
                return _HttpResponse.error(405, "metrics is GET-only")
            return self._handle_metrics()
        if request.path == "/v1/batches":
            if request.method != "POST":
                return _HttpResponse.error(405, "batches is POST-only")
            if self._readonly:
                return _HttpResponse.error(
                    405, "read-only replica: ingest endpoints are disabled"
                )
            return self._handle_submit(request, points=False)
        if request.path == "/v1/points":
            if request.method != "POST":
                return _HttpResponse.error(405, "points is POST-only")
            if self._readonly:
                return _HttpResponse.error(
                    405, "read-only replica: ingest endpoints are disabled"
                )
            return self._handle_submit(request, points=True)
        if request.path == "/v1/query":
            if request.method != "POST":
                return _HttpResponse.error(405, "query is POST-only")
            return self._handle_query(request)
        if request.path == "/v1/quantiles":
            if request.method != "POST":
                return _HttpResponse.error(405, "quantiles is POST-only")
            return self._handle_quantiles(request)
        return _HttpResponse.error(404, f"no route for {request.path}")

    def _handle_healthz(self) -> _HttpResponse:
        stats = self._service.stats()
        return _HttpResponse.json(
            200,
            {
                "status": "ok" if stats["started"] else "starting",
                "shards": stats["n_shards"],
                "scaling": stats["scaling"],
                "spec": self._service.collector.spec,
                "epsilon": self._service.collector.epsilon,
                "domain_size": self._service.collector.domain_size,
            },
        )

    def _handle_metrics(self) -> _HttpResponse:
        lines = ingestion_stats_lines(self._service.stats())
        lines.extend(self.registry.render_lines())
        payload = ("\n".join(lines) + "\n").encode("utf-8")
        return _HttpResponse(200, payload, _PROM)

    @staticmethod
    def _is_npy(request: _HttpRequest) -> bool:
        content_type = request.headers.get("content-type", "")
        return content_type.split(";", 1)[0].strip().lower() == _NPY

    @staticmethod
    def _wants_npy(request: _HttpRequest) -> bool:
        accept = request.headers.get("accept", "")
        return any(
            part.split(";", 1)[0].strip().lower() == _NPY
            for part in accept.split(",")
        )

    @staticmethod
    def _decode_npy_body(body: bytes):
        """``(array, None)`` or ``(None, error response)`` for a binary
        request body."""
        try:
            array = np.load(io.BytesIO(body), allow_pickle=False)
        except (ValueError, OSError, EOFError) as error:
            return None, _HttpResponse.error(400, f"malformed npy body: {error}")
        if not isinstance(array, np.ndarray) or not np.issubdtype(
            array.dtype, np.integer
        ):
            return None, _HttpResponse.error(
                400, "npy body must be an integer array"
            )
        return array.astype(np.int64, copy=False), None

    def _handle_submit(self, request: _HttpRequest, points: bool) -> _HttpResponse:
        field = "points" if points else "items"
        mode = None
        key = None
        if self._is_npy(request):
            # Binary fast path: the body is the batch array itself — no
            # JSON envelope, so no mode/key/spec claims to check.
            batch, error = self._decode_npy_body(request.body)
            if error is not None:
                return error
        else:
            try:
                payload = json.loads(request.body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                return _HttpResponse.error(400, f"malformed JSON body: {error}")
            if not isinstance(payload, dict):
                return _HttpResponse.error(400, "body must be a JSON object")

            mismatch = self._spec_mismatch(payload)
            if mismatch is not None:
                return mismatch

            raw = payload.get(field)
            if raw is None:
                return _HttpResponse.error(400, f"missing required field {field!r}")
            try:
                batch = np.asarray(raw, dtype=np.int64)
            except (TypeError, ValueError, OverflowError):
                return _HttpResponse.error(
                    400, f"{field!r} must be an array of integers"
                )
            mode = payload.get("mode")
            key = payload.get("key")
            if key is not None and not isinstance(key, (int, str)):
                return _HttpResponse.error(400, "'key' must be an integer or string")

        collector = self._service.collector
        try:
            if points:
                flatten = getattr(collector.shards[0], "flatten_points", None)
                if flatten is None:
                    return _HttpResponse.error(
                        400,
                        "the served mechanism has no grid point surface; "
                        "POST flattened items to /v1/batches instead",
                    )
                batch = flatten(batch)
            shard = self._service.try_submit(batch, mode=mode, key=key)
        except ServiceOverloadedError as error:
            return _HttpResponse.error(
                503, str(error), {"Retry-After": str(RETRY_AFTER_SECONDS)}
            )
        except ReproError as error:
            return _HttpResponse.error(400, str(error))
        if self._autoscaler is not None:
            self._autoscaler.note_submission()
        stream = collector.stream_ids[shard]
        return _HttpResponse.json(
            202,
            {
                "accepted": int(batch.shape[0]),
                "shard": int(shard),
                "stream": int(stream),
            },
        )

    def _spec_mismatch(self, payload: Mapping[str, Any]) -> Optional[_HttpResponse]:
        """409 when the producer's epsilon/domain claims contradict the
        served spec — a protocol disagreement no retry can fix."""
        collector = self._service.collector
        if "epsilon" in payload:
            try:
                epsilon = float(payload["epsilon"])
            except (TypeError, ValueError):
                return _HttpResponse.error(400, "'epsilon' must be a number")
            if not np.isclose(epsilon, collector.epsilon, rtol=1e-9, atol=0.0):
                return _HttpResponse.error(
                    409,
                    f"server collects at epsilon={collector.epsilon}, "
                    f"producer reported for epsilon={epsilon}",
                )
        if "domain_size" in payload:
            try:
                domain = int(payload["domain_size"])
            except (TypeError, ValueError):
                return _HttpResponse.error(400, "'domain_size' must be an integer")
            if domain != collector.domain_size:
                return _HttpResponse.error(
                    409,
                    f"server domain_size={collector.domain_size}, "
                    f"producer reported for domain_size={domain}",
                )
        return None

    # ------------------------------------------------------------------
    # Query serving
    # ------------------------------------------------------------------
    @staticmethod
    def _answers_response(
        request: _HttpRequest, answers: np.ndarray, generation: int
    ) -> _HttpResponse:
        """Render a query result, honouring ``Accept: application/x-npy``.

        The generation travels in a header either way so binary consumers
        keep the freshness information without a JSON envelope.
        """
        headers = {"X-Repro-Generation": str(int(generation))}
        if ReproHttpServer._wants_npy(request):
            buffer = io.BytesIO()
            np.save(buffer, answers, allow_pickle=False)
            return _HttpResponse(200, buffer.getvalue(), _NPY, headers)
        return _HttpResponse.json(
            200,
            {"answers": answers.tolist(), "generation": int(generation)},
            headers,
        )

    def _decode_query_payload(self, request: _HttpRequest):
        """``(payload dict, None)`` or ``(None, error response)``."""
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return None, _HttpResponse.error(400, f"malformed JSON body: {error}")
        if not isinstance(payload, dict):
            return None, _HttpResponse.error(400, "body must be a JSON object")
        mismatch = self._spec_mismatch(payload)
        if mismatch is not None:
            return None, mismatch
        return payload, None

    async def _query_view(self):
        """``(view, None)`` or ``(None, error response)``.

        ``NotFittedError`` maps to 409: the request is valid but conflicts
        with the server's current state (nothing collected yet) — the
        producer side must land data first, no rephrasing will help.
        """
        try:
            view = await self._service.refresh_query_view()
        except NotFittedError as error:
            return None, _HttpResponse.error(409, str(error))
        except ReproError as error:
            return None, _HttpResponse.error(400, str(error))
        return view, None

    async def _handle_query(self, request: _HttpRequest) -> _HttpResponse:
        payload, error = self._decode_query_payload(request)
        if error is not None:
            return error
        raw_boxes = payload.get("boxes")
        raw_ranges = payload.get("ranges")
        if (raw_boxes is None) == (raw_ranges is None):
            return _HttpResponse.error(
                400, "provide exactly one of 'boxes' or 'ranges'"
            )
        try:
            queries = np.asarray(
                raw_boxes if raw_boxes is not None else raw_ranges, dtype=np.int64
            )
        except (TypeError, ValueError, OverflowError):
            return _HttpResponse.error(
                400, "queries must be an array of integer bounds"
            )
        view, error = await self._query_view()
        if error is not None:
            return error
        if raw_boxes is not None and getattr(view, "answer_boxes", None) is None:
            return _HttpResponse.error(
                400,
                "the served mechanism has no box surface; "
                "query flattened 'ranges' instead",
            )
        try:
            if raw_boxes is not None:
                answers = await self._coalescer.answer_boxes(view, queries)
            else:
                answers = await self._coalescer.answer_ranges(view, queries)
        except ReproError as error:
            return _HttpResponse.error(400, str(error))
        return self._answers_response(
            request, np.asarray(answers, dtype=np.float64), view.ingest_generation
        )

    async def _handle_quantiles(self, request: _HttpRequest) -> _HttpResponse:
        payload, error = self._decode_query_payload(request)
        if error is not None:
            return error
        raw = payload.get("phis")
        if raw is None:
            return _HttpResponse.error(400, "missing required field 'phis'")
        try:
            phis = [float(phi) for phi in np.asarray(raw, dtype=np.float64).reshape(-1)]
        except (TypeError, ValueError):
            return _HttpResponse.error(400, "'phis' must be an array of numbers")
        view, error = await self._query_view()
        if error is not None:
            return error
        try:
            values = view.quantiles(phis)
        except ReproError as error:
            return _HttpResponse.error(400, str(error))
        generation = view.ingest_generation
        if self._wants_npy(request):
            buffer = io.BytesIO()
            np.save(buffer, np.asarray(values, dtype=np.int64), allow_pickle=False)
            return _HttpResponse(
                200, buffer.getvalue(), _NPY,
                {"X-Repro-Generation": str(int(generation))},
            )
        return _HttpResponse.json(
            200,
            {"quantiles": [int(value) for value in values],
             "generation": int(generation)},
            {"X-Repro-Generation": str(int(generation))},
        )


class HttpServerThread:
    """Service + server + (optional) autoscaler on a dedicated loop thread.

    The synchronous world's handle on the network tier: tests, benchmarks
    and the CLI construct one, call :meth:`start` (which blocks until the
    port is bound, resolving ``port=0``), talk to ``http://host:port`` and
    finally :meth:`stop` — which drains the queues before tearing down, so
    :meth:`reduce` afterwards sees every accepted batch.
    """

    def __init__(
        self,
        collector: ShardedCollector,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_size: int = 8,
        parallelism: int = 0,
        autoscale: bool = False,
        policy: Optional[AutoscalePolicy] = None,
        check_interval: int = 16,
        readonly: bool = False,
        query_cache_size: int = DEFAULT_ANSWER_CACHE_SIZE,
    ) -> None:
        self._collector = collector
        self._host = str(host)
        self._requested_port = int(port)
        self._queue_size = int(queue_size)
        self._parallelism = int(parallelism)
        self._autoscale = bool(autoscale) or policy is not None
        self._policy = policy
        self._check_interval = int(check_interval)
        self._readonly = bool(readonly)
        self._query_cache_size = int(query_cache_size)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._port: Optional[int] = None
        self.service: Optional[IngestionService] = None
        self.server: Optional[ReproHttpServer] = None
        self.autoscaler: Optional[ShardAutoscaler] = None

    # ------------------------------------------------------------------
    # Lifecycle (called from the synchronous owner thread)
    # ------------------------------------------------------------------
    def start(self, timeout: float = 10.0) -> "HttpServerThread":
        if self._thread is not None:
            raise ConfigurationError("server thread is already running")
        self._thread = threading.Thread(
            target=self._run, name="repro-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ConfigurationError(
                f"HTTP server did not come up within {timeout}s"
            )
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            raise error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_requested is not None:
            self._loop.call_soon_threadsafe(self._stop_requested.set)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - watchdog only
            raise ConfigurationError("HTTP server thread did not stop in time")
        self._thread = None
        if self._startup_error is not None:
            raise self._startup_error

    def __enter__(self) -> "HttpServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Synchronous accessors
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        if self._port is None:
            raise ConfigurationError("HTTP server is not listening yet")
        return self._port

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def stats(self) -> dict:
        """A service stats snapshot, fetched on the event-loop thread."""
        if self._loop is None or self.service is None:
            raise ConfigurationError("HTTP server is not running")

        async def _snapshot() -> dict:
            return self.service.stats()

        future = asyncio.run_coroutine_threadsafe(_snapshot(), self._loop)
        return future.result(timeout=10.0)

    def scale_to(self, n_shards: int, timeout: float = 30.0) -> dict:
        """Drive a shard scale event from the owner thread.

        Blocks until the service has quiesced, reshaped and reopened the
        gate (the operator's / benchmark's handle on explicit scaling —
        load-driven scaling goes through the attached autoscaler instead).
        Returns a fresh stats snapshot.
        """
        if self._loop is None or self.service is None:
            raise ConfigurationError("HTTP server is not running")

        async def _scale() -> dict:
            await self.service.scale_to(int(n_shards))
            return self.service.stats()

        future = asyncio.run_coroutine_threadsafe(_scale(), self._loop)
        return future.result(timeout=timeout)

    def reduce(self):
        """Merge the shards into one queryable mechanism.

        Only valid after :meth:`stop` (queues drained, loop parked) — the
        collector must not be touched concurrently with its workers.
        """
        if self._thread is not None:
            raise ConfigurationError("stop() the server before reducing")
        return self._collector.reduce()

    # ------------------------------------------------------------------
    # Event-loop thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - reported to owner
            self._startup_error = error
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        service = IngestionService(
            self._collector,
            queue_size=self._queue_size,
            parallelism=self._parallelism,
            query_cache_size=self._query_cache_size,
        )
        await service.start()
        autoscaler = None
        if self._autoscale:
            autoscaler = ShardAutoscaler(
                service,
                policy=self._policy or AutoscalePolicy(),
                check_interval=self._check_interval,
            )
        server = ReproHttpServer(
            service, autoscaler=autoscaler, readonly=self._readonly
        )
        try:
            await server.start(self._host, self._requested_port)
            self._port = server.port
            self.service = service
            self.server = server
            self.autoscaler = autoscaler
            self._ready.set()
            await self._stop_requested.wait()
        finally:
            await server.stop()
            await service.join()
            await service.stop()
