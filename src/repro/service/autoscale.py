"""Load-driven shard autoscaling for the ingestion service.

The shard count of a :class:`~repro.streaming.ShardedCollector` is a pure
throughput knob — merging is exact, so adding or removing shards never
changes the reduced estimate.  :meth:`IngestionService.scale_to
<repro.service.IngestionService.scale_to>` made that knob *dynamic* (scale
at a quiesced generation boundary, rebalance retired statistics via
``merge_from``); this module adds the *policy* deciding when to turn it.

Three pieces, smallest first:

* :class:`LoadSignal` — an immutable snapshot of queue pressure: per-shard
  queue depths, the shared queue capacity, and (when the collector routes
  least-loaded) the router's per-shard user loads.  Built from
  ``IngestionService.stats()`` so the policy never reaches into service
  internals.
* :class:`AutoscalePolicy` — deterministic hysteresis thresholds on the
  mean queue-fill fraction: grow one step when the fleet is saturated, give
  a step back when it idles, clamped to ``[min_shards, max_shards]``.  Pure
  function of the signal — no clocks, no randomness — so tests can replay
  a decision sequence exactly.
* :class:`ShardAutoscaler` — the glue the HTTP front calls: counts
  accepted submissions and, every ``check_interval`` of them, evaluates the
  policy and drives ``service.scale_to``.  Submission-counted (not
  timer-driven) on purpose: the whole scale schedule is then a
  deterministic function of the request sequence, which is what lets a test
  assert "reduce() after this exact traffic is bit-identical to a static
  run".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.service.ingestion import IngestionService

__all__ = ["AutoscalePolicy", "LoadSignal", "ShardAutoscaler"]


@dataclass(frozen=True)
class LoadSignal:
    """Point-in-time queue pressure, as the policy sees it."""

    n_shards: int
    queue_capacity: int
    queue_depths: Tuple[int, ...]
    #: Per-shard users routed so far (least-loaded router only; empty tuple
    #: for routers that keep no load state).
    router_loads: Tuple[int, ...] = ()

    @property
    def mean_fill(self) -> float:
        """Mean queue occupancy as a fraction of capacity in ``[0, 1]``."""
        if not self.queue_depths or self.queue_capacity <= 0:
            return 0.0
        return float(np.mean(self.queue_depths)) / float(self.queue_capacity)

    @property
    def max_fill(self) -> float:
        """Worst single queue's occupancy fraction."""
        if not self.queue_depths or self.queue_capacity <= 0:
            return 0.0
        return float(max(self.queue_depths)) / float(self.queue_capacity)

    @classmethod
    def from_service(cls, service: IngestionService) -> "LoadSignal":
        stats = service.stats()
        router = service.collector.router
        loads = tuple(int(load) for load in getattr(router, "loads", ()) or ())
        return cls(
            n_shards=int(stats["n_shards"]),
            queue_capacity=int(stats["queue_size"]),
            queue_depths=tuple(int(depth) for depth in stats["queue_depths"]),
            router_loads=loads,
        )


@dataclass(frozen=True)
class AutoscalePolicy:
    """Hysteresis thresholds on mean queue fill.

    ``grow_at``/``shrink_at`` are fractions of queue capacity: with the
    defaults, a fleet whose queues average ≥ 75 % full grows by
    ``grow_step`` shards, one averaging ≤ 10 % full shrinks by
    ``shrink_step``; in between (the hysteresis band) it holds steady, so
    the shard count cannot oscillate on a flat workload.  ``shrink_at``
    must stay strictly below ``grow_at`` or a single signal could demand
    both directions at once.
    """

    min_shards: int = 1
    max_shards: int = 8
    grow_at: float = 0.75
    shrink_at: float = 0.10
    grow_step: int = 1
    shrink_step: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.min_shards, (int, np.integer)) or self.min_shards < 1:
            raise ConfigurationError(
                f"min_shards must be a positive integer, got {self.min_shards!r}"
            )
        if (
            not isinstance(self.max_shards, (int, np.integer))
            or self.max_shards < self.min_shards
        ):
            raise ConfigurationError(
                f"max_shards must be an integer >= min_shards "
                f"({self.min_shards}), got {self.max_shards!r}"
            )
        for name in ("grow_step", "shrink_step"):
            step = getattr(self, name)
            if not isinstance(step, (int, np.integer)) or step < 1:
                raise ConfigurationError(
                    f"{name} must be a positive integer, got {step!r}"
                )
        if not (0.0 <= float(self.shrink_at) < float(self.grow_at) <= 1.0):
            raise ConfigurationError(
                f"thresholds must satisfy 0 <= shrink_at < grow_at <= 1, "
                f"got shrink_at={self.shrink_at!r}, grow_at={self.grow_at!r}"
            )

    def decide(self, signal: LoadSignal) -> Optional[int]:
        """Target shard count for ``signal``, or ``None`` to hold steady.

        A pure function: the same signal always yields the same decision.
        """
        current = int(signal.n_shards)
        fill = signal.mean_fill
        if fill >= self.grow_at:
            target = min(current + int(self.grow_step), int(self.max_shards))
        elif fill <= self.shrink_at:
            target = max(current - int(self.shrink_step), int(self.min_shards))
        else:
            return None
        return target if target != current else None


@dataclass
class ShardAutoscaler:
    """Drives :meth:`IngestionService.scale_to` from the load signal.

    The owner reports accepted submissions via :meth:`note_submission`; the
    autoscaler evaluates its policy every ``check_interval`` of them inside
    :meth:`maybe_scale`.  Decoupling *note* (synchronous, from the request
    handler's hot path) from *scale* (awaits a full quiesce) keeps the
    503-or-accept decision fast while the expensive rebalance happens
    between requests.
    """

    service: IngestionService
    policy: AutoscalePolicy = field(default_factory=AutoscalePolicy)
    check_interval: int = 16

    def __post_init__(self) -> None:
        if not isinstance(self.service, IngestionService):
            raise ConfigurationError(
                "ShardAutoscaler drives an IngestionService, got "
                f"{type(self.service).__name__}"
            )
        if (
            not isinstance(self.check_interval, (int, np.integer))
            or self.check_interval < 1
        ):
            raise ConfigurationError(
                f"check_interval must be a positive integer, got "
                f"{self.check_interval!r}"
            )
        self._since_check = 0
        self._decisions: List[Tuple[int, int]] = []

    @property
    def decisions(self) -> List[Tuple[int, int]]:
        """Every executed scale event as ``(from_shards, to_shards)``."""
        return list(self._decisions)

    def note_submission(self, count: int = 1) -> bool:
        """Record ``count`` accepted submissions; ``True`` when a check is
        due (the caller should then await :meth:`maybe_scale`)."""
        self._since_check += int(count)
        return self._since_check >= int(self.check_interval)

    async def maybe_scale(self) -> Optional[int]:
        """Evaluate the policy once; scale if it asks to.

        Returns the new shard count when a scale event ran, ``None`` when
        the policy held steady (or the check wasn't due yet).
        """
        if self._since_check < int(self.check_interval):
            return None
        self._since_check = 0
        signal = LoadSignal.from_service(self.service)
        target = self.policy.decide(signal)
        if target is None:
            return None
        before = signal.n_shards
        await self.service.scale_to(target)
        self._decisions.append((before, int(target)))
        return int(target)
