"""Unit tests for the Prometheus text exposition layer."""

import re

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ingestion_stats_lines,
    render_ingestion_stats,
)

#: A valid exposition sample line: name, optional {labels}, space, value.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$"
)


def assert_valid_exposition(text: str) -> None:
    """Every line is a comment or a well-formed sample; every sample's
    metric family is preceded by HELP and TYPE headers."""
    seen_types = {}
    for line in text.strip().split("\n"):
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            assert len(parts) >= 4, line
            if line.startswith("# TYPE "):
                seen_types[parts[2]] = parts[3]
            continue
        assert SAMPLE_RE.match(line), f"malformed sample line: {line!r}"
        name = re.split(r"[{ ]", line, 1)[0]
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        assert family in seen_types or name in seen_types, (
            f"sample {name!r} has no TYPE header"
        )


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("repro_things_total", "Things.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_series_render_separately(self):
        counter = Counter("repro_req_total", "Requests.", ("code",))
        counter.inc(labels={"code": "200"})
        counter.inc(3, labels={"code": "503"})
        lines = counter.render_lines()
        assert 'repro_req_total{code="200"} 1' in lines
        assert 'repro_req_total{code="503"} 3' in lines

    def test_counter_cannot_decrease(self):
        counter = Counter("repro_things_total", "Things.")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_wrong_label_set_rejected(self):
        counter = Counter("repro_req_total", "Requests.", ("code",))
        with pytest.raises(ConfigurationError):
            counter.inc(labels={"status": "200"})
        with pytest.raises(ConfigurationError):
            counter.inc()


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("repro_depth", "Depth.")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value() == 2
        assert gauge.render_lines()[-1] == "repro_depth 2"

    def test_label_value_escaping(self):
        gauge = Gauge("repro_g", "G.", ("name",))
        gauge.set(1, labels={"name": 'a"b\\c\nd'})
        line = gauge.render_lines()[-1]
        assert line == 'repro_g{name="a\\"b\\\\c\\nd"} 1'


class TestHistogram:
    def test_cumulative_buckets_sum_and_count(self):
        histogram = Histogram("repro_seconds", "Latency.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            histogram.observe(value)
        lines = histogram.render_lines()
        assert 'repro_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_seconds_bucket{le="1"} 3' in lines
        assert 'repro_seconds_bucket{le="+Inf"} 4' in lines
        assert "repro_seconds_count 4" in lines
        sum_line = next(l for l in lines if l.startswith("repro_seconds_sum"))
        assert float(sum_line.split()[-1]) == pytest.approx(6.25)

    def test_quantile_estimates_bucket_upper_bound(self):
        histogram = Histogram("repro_seconds", "Latency.", buckets=(0.1, 1.0, 10.0))
        for value in [0.05] * 98 + [5.0, 5.0]:
            histogram.observe(value)
        assert histogram.quantile(0.5) == 0.1
        assert histogram.quantile(0.99) == 10.0
        assert np.isnan(Histogram("repro_e", "E.", buckets=(1.0,)).quantile(0.5))

    def test_buckets_must_increase(self):
        with pytest.raises(ConfigurationError):
            Histogram("repro_h", "H.", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("repro_h", "H.", buckets=())


class TestRegistry:
    def test_render_is_valid_exposition(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_a_total", "A.", ("method",))
        counter.inc(labels={"method": "GET"})
        registry.gauge("repro_b", "B.").set(1.5)
        histogram = registry.histogram("repro_c_seconds", "C.", buckets=(0.1, 1.0))
        histogram.observe(0.2)
        text = registry.render()
        assert text.endswith("\n")
        assert_valid_exposition(text)

    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "A.")
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_a_total", "again")

    def test_invalid_metric_and_label_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("2bad", "Bad.")
        with pytest.raises(ConfigurationError):
            Counter("repro_ok", "Bad label.", ("0bad",))


class TestIngestionStatsRendering:
    def stats(self):
        return {
            "started": True,
            "scaling": False,
            "n_shards": 2,
            "queue_size": 8,
            "materializations_performed": 3,
            "totals": {
                "submitted_batches": 10,
                "submitted_users": 5000,
                "absorbed_batches": 9,
                "absorbed_users": 4500,
                "rejected_batches": 1,
                "rejected_users": 500,
                "grow_events": 1,
                "shrink_events": 1,
                "streams_spawned": 3,
            },
            "per_shard": [
                {"shard": 0, "stream": 0, "batches": 5, "users": 2500,
                 "rejected": 1, "queue_depth": 0, "queue_peak": 2},
                {"shard": 1, "stream": 2, "batches": 4, "users": 2000,
                 "rejected": 0, "queue_depth": 1, "queue_peak": 3},
            ],
        }

    def test_rendering_is_valid_and_complete(self):
        text = render_ingestion_stats(self.stats())
        assert_valid_exposition(text)
        assert "repro_ingest_up 1" in text
        assert "repro_ingest_shards 2" in text
        assert "repro_ingest_absorbed_users_total 4500" in text
        assert "repro_ingest_rejected_batches_total 1" in text
        assert 'repro_ingest_scale_events_total{direction="grow"} 1' in text
        assert "repro_ingest_streams_spawned_total 3" in text
        assert 'repro_ingest_queue_depth{shard="1",stream="2"} 1' in text
        assert 'repro_ingest_shard_rejected{shard="0",stream="0"} 1' in text

    def test_totals_survive_missing_keys(self):
        lines = ingestion_stats_lines({"started": False})
        text = "\n".join(lines)
        assert "repro_ingest_up 0" in text
        assert "repro_ingest_absorbed_users_total 0" in text
