"""``repro lint`` — AST-based static analysis for the repo's DP contracts.

The library's correctness rests on conventions that no general-purpose
linter knows about: randomness must flow through explicit
:class:`numpy.random.Generator` objects, ``epsilon`` arithmetic lives in
:mod:`repro.privacy`, write paths only touch sufficient statistics (the
lazy-materialization contract), the asyncio service tier must not block the
event loop, snapshotable state must round-trip through :mod:`repro.persist`,
and failures surface as :mod:`repro.exceptions` types.  This module turns
those conventions into machine-checked rules:

========= ==================================================================
Rule      Contract
========= ==================================================================
LDP-R001  RNG hygiene: no legacy ``np.random`` global-state calls and no
          hard-coded ``default_rng(<literal>)`` seeds in library code
          (``experiments``/``data`` are exempt — they *own* their seeds).
LDP-R002  Epsilon flow: raw ``exp(epsilon)`` arithmetic is confined to
          ``repro.privacy``; constructors that accept ``epsilon`` must
          validate it (``validate_epsilon``/``PrivacyBudget``) or forward
          it to a constructor that does.
LDP-R003  Write-path purity: ``partial_fit*``/``merge_from``/``fit_*``/
          ``submit*``/``load_state_dict`` must not materialize or read
          estimates — writes touch only sufficient statistics.
LDP-R004  Asyncio discipline: no blocking calls inside ``async def``; no
          discarded ``create_task`` handles; no discarded
          ``gather(..., return_exceptions=True)`` results.
LDP-R005  Persist coverage: ``state_dict`` and ``load_state_dict`` come in
          pairs, and every concrete mechanism that snapshots state is
          registered with a persist config kind.
LDP-R006  Exception discipline: library raises use ``repro.exceptions``
          types, not bare ``ValueError``/``RuntimeError``/``Exception``.
LDP-R007  Kernel pairing: every kernel registered under a compiled backend
          (``register_kernel("numba", ...)``) has a numpy twin registered
          under the same name, so the library never depends on optional
          compiled code for correctness.
========= ==================================================================

Suppressions: append ``# repro: noqa[LDP-R00X]`` (or a blanket
``# repro: noqa``) to the offending line.  Grandfathered findings can live
in a JSON baseline (``--baseline``); the committed baseline is empty and
should stay that way.

Run as ``python -m repro lint [paths...] [--format text|json]
[--baseline FILE]``; exits non-zero when unsuppressed findings remain.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["Finding", "RULES", "lint_paths", "main"]

#: Rule identifiers and the one-line contract each one enforces.
RULES: Dict[str, str] = {
    "LDP-R001": "randomness flows through explicit Generators (no legacy "
    "np.random global state, no hard-coded default_rng seeds)",
    "LDP-R002": "exp(epsilon) arithmetic confined to repro.privacy; "
    "constructors validate epsilon",
    "LDP-R003": "write paths touch only sufficient statistics (no "
    "materialize/_require_fitted/estimate reads)",
    "LDP-R004": "async code never blocks the event loop or discards task "
    "handles / gathered exceptions",
    "LDP-R005": "state_dict/load_state_dict come in pairs and mechanisms "
    "are registered with a persist config kind",
    "LDP-R006": "query/ingest paths raise repro.exceptions types, not bare "
    "ValueError/RuntimeError/Exception",
    "LDP-R007": "every compiled kernel registration has a numpy twin "
    "(register_kernel pairing; optional backends never own correctness)",
}

#: Rule used for files the parser cannot read at all.
PARSE_RULE = "LDP-R000"

#: Top-level package directories exempt from the library-code rules
#: (experiments and data generators legitimately own literal seeds and are
#: not part of the query/ingest surface; devtools is the linter itself).
EXEMPT_LIBRARY_DIRS = frozenset({"experiments", "data", "devtools"})

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[^\]]*)\])?", re.IGNORECASE)

_LEGACY_RNG_ATTRS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "binomial",
        "poisson",
        "exponential",
        "standard_normal",
        "get_state",
        "set_state",
        "RandomState",
    }
)

_CAST_FUNCS = frozenset({"float", "int", "bool", "str", "abs", "round", "len"})

_WRITE_PATH_RE = re.compile(r"^(partial_fit\w*|merge_from|fit_\w+|submit\w*|load_state_dict)$")

_READ_SURFACE_CALLS = frozenset(
    {
        "materialize",
        "_require_fitted",
        "_refresh_estimates",
        "estimate_frequencies",
        "estimate_cdf",
        "estimate_quantiles",
        "answer_range",
        "answer_ranges",
        "answer_prefix",
        "answer_workload",
        "answer_rectangle",
        "answer_rectangles",
        "rectangle_query",
        "rectangle_queries",
        "quantile",
        "quantiles",
    }
)

_ESTIMATE_ATTRS = frozenset({"_frequencies", "_prefix", "_estimates"})

_BLOCKING_IO_ATTRS = frozenset({"read_text", "write_text", "read_bytes", "write_bytes"})

_BARE_EXCEPTIONS = frozenset({"ValueError", "RuntimeError", "Exception"})

_MECHANISM_BASE = "RangeQueryMechanism"

_ABSTRACT_BASES = frozenset({"ABC", "ABCMeta", "Protocol"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Location-insensitive identity used for baseline matching (line
        numbers churn on unrelated edits; path + rule + message do not)."""
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class _ClassInfo:
    name: str
    bases: Tuple[str, ...]
    defines_state_dict: bool
    defines_load_state_dict: bool
    is_abstract: bool
    path: str
    line: int


@dataclass(frozen=True)
class _KernelRegistration:
    """One ``register_kernel("<backend>", "<name>")`` call site."""

    backend: str
    kernel: str
    path: str
    line: int
    col: int


@dataclass
class _ProjectFacts:
    """Cross-file knowledge gathered before the per-file rule passes."""

    classes: Dict[str, _ClassInfo] = field(default_factory=dict)
    persist_registry_names: Set[str] = field(default_factory=set)
    has_persist_registry: bool = False
    kernel_registrations: List[_KernelRegistration] = field(default_factory=list)


@dataclass
class _FileContext:
    path: Path
    display: str
    parts: Tuple[str, ...]
    lines: List[str]
    tree: ast.Module


# ----------------------------------------------------------------------
# Small AST helpers
# ----------------------------------------------------------------------
def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything richer."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _last_component(name: Optional[str]) -> Optional[str]:
    return name.rsplit(".", 1)[-1] if name else None


def _package_parts(path: Path) -> Tuple[str, ...]:
    """Path components below the innermost ``repro`` package directory.

    Files outside a ``repro`` checkout (test fixtures in temp dirs) keep
    their full component tuple, so no library-dir exemption applies.
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return parts[index + 1 :]
    return parts


def _is_exempt(ctx: _FileContext, dirs: frozenset) -> bool:
    return bool(ctx.parts) and ctx.parts[0] in dirs


def _walk_pruned(node: ast.AST, prune: Tuple[type, ...]) -> Iterator[ast.AST]:
    """Depth-first walk of ``node``'s children, skipping pruned subtrees."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, prune):
            continue
        yield child
        yield from _walk_pruned(child, prune)


def _mentions_epsilon(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "eps" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "eps" in sub.attr.lower():
            return True
    return False


# ----------------------------------------------------------------------
# Rule passes (one generator of findings per rule family)
# ----------------------------------------------------------------------
def _check_rng_hygiene(ctx: _FileContext) -> Iterator[Finding]:
    """LDP-R001 — legacy global-state RNG calls and hard-coded seeds."""
    if _is_exempt(ctx, EXEMPT_LIBRARY_DIRS):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Attribute):
            base = _dotted(node.value)
            if base in ("np.random", "numpy.random") and node.attr in _LEGACY_RNG_ATTRS:
                yield Finding(
                    "LDP-R001",
                    ctx.display,
                    node.lineno,
                    node.col_offset,
                    f"legacy global-state RNG '{base}.{node.attr}' — pass an "
                    "explicit numpy.random.Generator instead",
                )
        if isinstance(node, ast.Call):
            func = _dotted(node.func)
            if _last_component(func) != "default_rng":
                continue
            seeds = list(node.args) + [kw.value for kw in node.keywords if kw.arg == "seed"]
            for seed in seeds[:1]:
                if isinstance(seed, ast.Constant) and seed.value is not None:
                    yield Finding(
                        "LDP-R001",
                        ctx.display,
                        node.lineno,
                        node.col_offset,
                        f"hard-coded RNG seed default_rng({seed.value!r}) in "
                        "library code — accept a seed/Generator parameter",
                    )


def _check_epsilon_flow(ctx: _FileContext) -> Iterator[Finding]:
    """LDP-R002 — exp(epsilon) outside repro.privacy + unvalidated epsilon."""
    if _is_exempt(ctx, EXEMPT_LIBRARY_DIRS):
        return
    in_privacy = bool(ctx.parts) and ctx.parts[0] == "privacy"
    if not in_privacy:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = _dotted(node.func)
            if func not in ("math.exp", "np.exp", "numpy.exp", "exp"):
                continue
            if any(_mentions_epsilon(arg) for arg in node.args):
                yield Finding(
                    "LDP-R002",
                    ctx.display,
                    node.lineno,
                    node.col_offset,
                    "raw exp(epsilon) arithmetic outside repro.privacy — use "
                    "PrivacyBudget.exp_epsilon / repro.privacy.budget.exp_epsilon",
                )
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                yield from _check_init_epsilon(ctx, node, item)


def _check_init_epsilon(
    ctx: _FileContext, cls: ast.ClassDef, init: ast.FunctionDef
) -> Iterator[Finding]:
    params = {arg.arg for arg in init.args.args + init.args.kwonlyargs}
    if "epsilon" not in params:
        return
    validated = False
    forwarded = False
    stored = False
    for node in ast.walk(init):
        if isinstance(node, ast.Call):
            callee = _last_component(_dotted(node.func))
            if callee in ("validate_epsilon", "PrivacyBudget", "from_exp_epsilon"):
                validated = True
            elif callee not in _CAST_FUNCS:
                values = list(node.args) + [kw.value for kw in node.keywords]
                if any(
                    isinstance(value, ast.Name) and value.id == "epsilon"
                    for value in values
                ):
                    forwarded = True
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if node.value is not None and any(
                isinstance(target, ast.Attribute) for target in targets
            ):
                if any(
                    isinstance(sub, ast.Name) and sub.id == "epsilon"
                    for sub in ast.walk(node.value)
                ):
                    stored = True
    if stored and not (validated or forwarded):
        yield Finding(
            "LDP-R002",
            ctx.display,
            init.lineno,
            init.col_offset,
            f"{cls.name}.__init__ stores epsilon without routing it through "
            "validate_epsilon/PrivacyBudget (or a constructor that does)",
        )


def _check_write_path_purity(ctx: _FileContext) -> Iterator[Finding]:
    """LDP-R003 — write paths must not materialize or read estimates."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _WRITE_PATH_RE.match(node.name):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                receiver = sub.func.value
                if (
                    sub.func.attr in _READ_SURFACE_CALLS
                    and isinstance(receiver, ast.Name)
                    and receiver.id not in ("np", "numpy", "math")
                ):
                    yield Finding(
                        "LDP-R003",
                        ctx.display,
                        sub.lineno,
                        sub.col_offset,
                        f"write path {node.name}() calls read surface "
                        f"'{sub.func.attr}()' — writes must only touch "
                        "sufficient statistics (PR 5 lazy contract)",
                    )
            if (
                isinstance(sub, ast.Attribute)
                and sub.attr in _ESTIMATE_ATTRS
                and isinstance(sub.ctx, ast.Load)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                yield Finding(
                    "LDP-R003",
                    ctx.display,
                    sub.lineno,
                    sub.col_offset,
                    f"write path {node.name}() reads estimate attribute "
                    f"'{sub.attr}' — estimates are stale until materialize()",
                )


def _check_asyncio_discipline(ctx: _FileContext) -> Iterator[Finding]:
    """LDP-R004 — event-loop blocking and discarded async results."""
    if _is_exempt(ctx, frozenset({"devtools"})):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield from _check_async_body(ctx, node)


def _check_async_body(ctx: _FileContext, func: ast.AsyncFunctionDef) -> Iterator[Finding]:
    # Nested sync defs/lambdas are (typically) shipped to executors, where
    # blocking is the point; nested async defs get their own visit.
    prune = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
    for node in _walk_pruned(func, prune):
        if isinstance(node, ast.Expr):
            inner = node.value
            awaited = isinstance(inner, ast.Await)
            call = inner.value if isinstance(inner, ast.Await) else inner
            if isinstance(call, ast.Call):
                callee = _last_component(_dotted(call.func))
                if callee == "create_task" and not awaited:
                    yield Finding(
                        "LDP-R004",
                        ctx.display,
                        node.lineno,
                        node.col_offset,
                        f"{func.name}() discards the create_task() handle — "
                        "keep a reference so failures surface and the task "
                        "is not garbage-collected",
                    )
                if callee == "gather" and any(
                    kw.arg == "return_exceptions"
                    and not (isinstance(kw.value, ast.Constant) and kw.value.value is False)
                    for kw in call.keywords
                ):
                    yield Finding(
                        "LDP-R004",
                        ctx.display,
                        node.lineno,
                        node.col_offset,
                        f"{func.name}() discards the result of "
                        "gather(..., return_exceptions=True) — collected "
                        "exceptions are silently swallowed",
                    )
        if not isinstance(node, ast.Call):
            continue
        func_name = _dotted(node.func)
        if func_name == "time.sleep":
            yield Finding(
                "LDP-R004",
                ctx.display,
                node.lineno,
                node.col_offset,
                f"blocking time.sleep() inside async {func.name}() — use "
                "await asyncio.sleep()",
            )
        elif func_name == "os.system" or (func_name or "").startswith("subprocess."):
            yield Finding(
                "LDP-R004",
                ctx.display,
                node.lineno,
                node.col_offset,
                f"blocking subprocess call inside async {func.name}() — use "
                "asyncio subprocess APIs or an executor",
            )
        elif func_name == "open":
            yield Finding(
                "LDP-R004",
                ctx.display,
                node.lineno,
                node.col_offset,
                f"synchronous file I/O inside async {func.name}() — run it "
                "in an executor",
            )
        elif isinstance(node.func, ast.Attribute):
            if node.func.attr == "result" and not node.args and not node.keywords:
                yield Finding(
                    "LDP-R004",
                    ctx.display,
                    node.lineno,
                    node.col_offset,
                    f"blocking .result() inside async {func.name}() — await "
                    "the future instead",
                )
            elif node.func.attr in _BLOCKING_IO_ATTRS:
                yield Finding(
                    "LDP-R004",
                    ctx.display,
                    node.lineno,
                    node.col_offset,
                    f"synchronous file I/O '.{node.func.attr}()' inside async "
                    f"{func.name}() — run it in an executor",
                )


def _check_persist_coverage(ctx: _FileContext, facts: _ProjectFacts) -> Iterator[Finding]:
    """LDP-R005 — snapshot hook pairing + persist config-kind registration."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = facts.classes.get(node.name)
        if info is None or info.path != ctx.display:
            continue
        if info.defines_state_dict != info.defines_load_state_dict:
            missing = (
                "load_state_dict" if info.defines_state_dict else "state_dict"
            )
            present = "state_dict" if info.defines_state_dict else "load_state_dict"
            yield Finding(
                "LDP-R005",
                ctx.display,
                node.lineno,
                node.col_offset,
                f"{node.name} defines {present} but not {missing} — snapshot "
                "hooks must round-trip",
            )


def _check_persist_registration(facts: _ProjectFacts) -> Iterator[Finding]:
    if not facts.has_persist_registry:
        return
    descendants: Set[str] = set()
    frontier = [_MECHANISM_BASE]
    children: Dict[str, List[str]] = {}
    for info in facts.classes.values():
        for base in info.bases:
            children.setdefault(base, []).append(info.name)
    while frontier:
        base = frontier.pop()
        for child in children.get(base, ()):
            if child not in descendants:
                descendants.add(child)
                frontier.append(child)
    for name in sorted(descendants):
        info = facts.classes[name]
        if info.is_abstract or not info.defines_state_dict:
            continue
        if name not in facts.persist_registry_names:
            yield Finding(
                "LDP-R005",
                info.path,
                info.line,
                0,
                f"mechanism {name} snapshots state but is not registered "
                "with a persist config kind (repro/persist/snapshots.py)",
            )


def _check_exception_discipline(ctx: _FileContext) -> Iterator[Finding]:
    """LDP-R006 — bare stdlib exceptions on query/ingest paths."""
    if _is_exempt(ctx, EXEMPT_LIBRARY_DIRS):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = _dotted(exc.func) if isinstance(exc, ast.Call) else _dotted(exc)
        last = _last_component(name)
        if last in _BARE_EXCEPTIONS:
            yield Finding(
                "LDP-R006",
                ctx.display,
                node.lineno,
                node.col_offset,
                f"bare {last} raised on a library path — raise the matching "
                "repro.exceptions type (they subclass ValueError/RuntimeError, "
                "so callers keep working)",
            )


def _check_kernel_pairing(facts: _ProjectFacts) -> Iterator[Finding]:
    """LDP-R007 — compiled kernel registrations without a numpy twin.

    The :mod:`repro.kernels` registry enforces this pairing at import time
    (``verify_registry``), but only along the import paths that actually
    load the compiled backend; this pass proves it statically over every
    ``register_kernel("<backend>", "<name>")`` call in the tree, flagging
    the compiled registration site itself.
    """
    reference = {
        registration.kernel
        for registration in facts.kernel_registrations
        if registration.backend == "numpy"
    }
    for registration in facts.kernel_registrations:
        if registration.backend == "numpy":
            continue
        if registration.kernel not in reference:
            yield Finding(
                "LDP-R007",
                registration.path,
                registration.line,
                registration.col,
                f"kernel '{registration.kernel}' is registered for backend "
                f"'{registration.backend}' without a numpy twin — compiled "
                "backends are optional and must never own a kernel alone",
            )


# ----------------------------------------------------------------------
# Project fact collection
# ----------------------------------------------------------------------
def _kernel_registration(
    ctx: _FileContext, node: ast.Call
) -> Optional[_KernelRegistration]:
    """Parse one ``register_kernel`` call; ``None`` when not statically
    resolvable (non-literal arguments are the registry's problem, not ours)."""
    if _last_component(_dotted(node.func)) != "register_kernel":
        return None
    if len(node.args) < 2:
        return None
    backend, kernel = node.args[0], node.args[1]
    if not (
        isinstance(backend, ast.Constant)
        and isinstance(backend.value, str)
        and isinstance(kernel, ast.Constant)
        and isinstance(kernel.value, str)
    ):
        return None
    return _KernelRegistration(
        backend=backend.value,
        kernel=kernel.value,
        path=ctx.display,
        line=node.lineno,
        col=node.col_offset,
    )


def _is_abstract_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        if _last_component(_dotted(base)) in _ABSTRACT_BASES:
            return True
    for keyword in node.keywords:
        if keyword.arg == "metaclass":
            if _last_component(_dotted(keyword.value)) in _ABSTRACT_BASES:
                return True
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in item.decorator_list:
                if _last_component(_dotted(decorator)) in (
                    "abstractmethod",
                    "abstractproperty",
                ):
                    return True
    return False


def _collect_facts(contexts: Sequence[_FileContext]) -> _ProjectFacts:
    facts = _ProjectFacts()
    for ctx in contexts:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                registration = _kernel_registration(ctx, node)
                if registration is not None:
                    facts.kernel_registrations.append(registration)
            if isinstance(node, ast.ClassDef):
                methods = {
                    item.name
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                bases = tuple(
                    component
                    for component in (
                        _last_component(_dotted(base)) for base in node.bases
                    )
                    if component is not None
                )
                facts.classes[node.name] = _ClassInfo(
                    name=node.name,
                    bases=bases,
                    defines_state_dict="state_dict" in methods,
                    defines_load_state_dict="load_state_dict" in methods,
                    is_abstract=_is_abstract_class(node),
                    path=ctx.display,
                    line=node.lineno,
                )
        if ctx.parts[-2:] == ("persist", "snapshots.py"):
            facts.has_persist_registry = True
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Name):
                    facts.persist_registry_names.add(node.id)
                elif isinstance(node, ast.Attribute):
                    facts.persist_registry_names.add(node.attr)
    return facts


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def _display_path(path: Path) -> str:
    parts = _package_parts(path)
    if parts is not path.parts:
        return "/".join(("repro",) + parts)
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _load_context(path: Path) -> Tuple[Optional[_FileContext], Optional[Finding]]:
    display = _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as error:
        return None, Finding(PARSE_RULE, display, 1, 0, f"cannot parse file: {error}")
    return (
        _FileContext(
            path=path,
            display=display,
            parts=_package_parts(path),
            lines=source.splitlines(),
            tree=tree,
        ),
        None,
    )


def _suppressed(finding: Finding, ctx: Optional[_FileContext]) -> bool:
    if ctx is None or not 1 <= finding.line <= len(ctx.lines):
        return False
    match = _NOQA_RE.search(ctx.lines[finding.line - 1])
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True
    wanted = {rule.strip().upper() for rule in rules.split(",") if rule.strip()}
    return finding.rule.upper() in wanted


def lint_paths(
    paths: Sequence[Path],
    baseline: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], Dict[str, int]]:
    """Lint every ``*.py`` file under ``paths``.

    Returns the unsuppressed findings (sorted by location) plus counter
    statistics (files checked, noqa-suppressed, baseline-matched).
    ``baseline`` is a collection of finding fingerprints to ignore; each
    entry forgives at most one occurrence.
    """
    contexts: List[_FileContext] = []
    findings: List[Finding] = []
    for path in _iter_python_files(paths):
        ctx, parse_error = _load_context(path)
        if parse_error is not None:
            findings.append(parse_error)
        if ctx is not None:
            contexts.append(ctx)

    facts = _collect_facts(contexts)
    by_display = {ctx.display: ctx for ctx in contexts}
    for ctx in contexts:
        findings.extend(_check_rng_hygiene(ctx))
        findings.extend(_check_epsilon_flow(ctx))
        findings.extend(_check_write_path_purity(ctx))
        findings.extend(_check_asyncio_discipline(ctx))
        findings.extend(_check_persist_coverage(ctx, facts))
        findings.extend(_check_exception_discipline(ctx))
    findings.extend(_check_persist_registration(facts))
    findings.extend(_check_kernel_pairing(facts))

    stats = {"files": len(contexts), "suppressed": 0, "baselined": 0}
    remaining: List[Finding] = []
    budget: Dict[str, int] = {}
    for fingerprint in baseline or ():
        budget[fingerprint] = budget.get(fingerprint, 0) + 1
    for finding in findings:
        if _suppressed(finding, by_display.get(finding.path)):
            stats["suppressed"] += 1
            continue
        if budget.get(finding.fingerprint, 0) > 0:
            budget[finding.fingerprint] -= 1
            stats["baselined"] += 1
            continue
        remaining.append(finding)
    remaining.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return remaining, stats


# ----------------------------------------------------------------------
# Baseline handling
# ----------------------------------------------------------------------
def load_baseline(path: Path) -> List[str]:
    """Read a baseline file and return the grandfathered fingerprints."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "findings" not in payload:
        raise SystemExit(f"lint: malformed baseline file {path}")
    fingerprints: List[str] = []
    for entry in payload["findings"]:
        fingerprints.append(
            "{path}::{rule}::{message}".format(
                path=entry["path"], rule=entry["rule"], message=entry["message"]
            )
        )
    return fingerprints


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    payload = {
        "version": 1,
        "comment": "Grandfathered `repro lint` findings; drain to empty, "
        "never grow. Regenerate with --write-baseline.",
        "findings": [
            {"path": f.path, "rule": f.rule, "message": f.message}
            for f in findings
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="AST-based DP-contract linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="JSON baseline of grandfathered findings to ignore",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the current findings as a new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _default_paths() -> List[Path]:
    return [Path(__file__).resolve().parents[1]]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro lint``; returns the exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}  {description}")
        return 0
    paths = [Path(p) for p in args.paths] or _default_paths()
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    fingerprints: List[str] = []
    if args.baseline is not None:
        if not args.baseline.exists():
            print(f"lint: baseline file not found: {args.baseline}", file=sys.stderr)
            return 2
        fingerprints = load_baseline(args.baseline)
    findings, stats = lint_paths(paths, baseline=fingerprints)
    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings)
        print(f"wrote {len(findings)} finding(s) to {args.write_baseline}")
        return 0
    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [
                        {
                            "rule": f.rule,
                            "path": f.path,
                            "line": f.line,
                            "col": f.col,
                            "message": f.message,
                        }
                        for f in findings
                    ],
                    "files_checked": stats["files"],
                    "suppressed": stats["suppressed"],
                    "baselined": stats["baselined"],
                    "exit_code": 1 if findings else 0,
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        summary = (
            f"checked {stats['files']} file(s): {len(findings)} finding(s), "
            f"{stats['suppressed']} noqa-suppressed, {stats['baselined']} baselined"
        )
        print(summary)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via `python -m repro lint`
    raise SystemExit(main())
