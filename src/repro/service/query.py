"""Coalesced query execution for the read-serving tier.

The batched answer paths (``answer_boxes``, ``answer_ranges``) are ~14x
cheaper per query than the per-query loop because every query in a batch
shares one run-decomposition pass per axis (PR 5).  HTTP traffic, though,
arrives as many small concurrent requests — each carrying a handful of
queries — and answering them one request at a time forfeits the batching
win exactly where it matters most.

:class:`QueryCoalescer` recovers it: concurrent in-flight queries against
the *same* mechanism are micro-batched into a single batched call per
event-loop drain.  Each caller awaits its own future; a flush callback —
scheduled at most once per drain via ``loop.call_soon`` — concatenates
every pending query array, issues one batched call per ``(mechanism,
surface)`` group, and slices the stacked answers back to the waiters.

Coalescing is invisible in the results: the batched paths accumulate each
answer row independently (element-wise ``answers += value`` per level
tuple), so slicing a concatenated batch is bit-identical to answering each
sub-batch — or each query — separately.  If a batched call fails, the
flush falls back to answering each waiter individually so every caller
receives the precise error its own queries earn (and correct answers are
still delivered to the blameless waiters that were merely sharing the
batch).
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple

import numpy as np

from repro.core.base import RangeQueryMechanism
from repro.exceptions import ConfigurationError, InvalidQueryError

__all__ = ["QueryCoalescer"]


class QueryCoalescer:
    """Micro-batches concurrent batched-query calls per event-loop drain.

    Single event-loop use only (like the rest of the service tier): the
    pending list is touched without locks because enqueue and flush both
    run on the loop thread.
    """

    def __init__(self) -> None:
        # (mechanism, surface-method name, queries, future) per waiter, in
        # arrival order.
        self._pending: List[
            Tuple[RangeQueryMechanism, str, np.ndarray, asyncio.Future]
        ] = []
        self._flush_handle: Optional[asyncio.Handle] = None
        self._flushes = 0
        self._coalesced_queries = 0
        self._coalesced_calls = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Flush/query/call counters: ``coalesced_queries /
        coalesced_calls`` is the effective batch size the coalescing won."""
        return {
            "flushes": int(self._flushes),
            "coalesced_queries": int(self._coalesced_queries),
            "coalesced_calls": int(self._coalesced_calls),
        }

    # ------------------------------------------------------------------
    # Query surfaces
    # ------------------------------------------------------------------
    async def answer_boxes(
        self, mechanism: RangeQueryMechanism, queries: np.ndarray
    ) -> np.ndarray:
        """Answer ``(n, 2d)`` box queries, sharing one ``answer_boxes``
        call with every other waiter of the same drain."""
        return await self._enqueue(mechanism, "answer_boxes", queries, columns=None)

    async def answer_ranges(
        self, mechanism: RangeQueryMechanism, queries: np.ndarray
    ) -> np.ndarray:
        """Answer ``(n, 2)`` range queries, sharing one ``answer_ranges``
        call with every other waiter of the same drain."""
        return await self._enqueue(mechanism, "answer_ranges", queries, columns=2)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    async def _enqueue(
        self,
        mechanism: RangeQueryMechanism,
        surface: str,
        queries: np.ndarray,
        columns: Optional[int],
    ) -> np.ndarray:
        if not isinstance(mechanism, RangeQueryMechanism):
            raise ConfigurationError(
                f"coalescer answers against a RangeQueryMechanism, got "
                f"{type(mechanism).__name__}"
            )
        if getattr(mechanism, surface, None) is None:
            raise InvalidQueryError(
                f"{mechanism.name} has no {surface} surface"
            )
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 2 or (columns is not None and queries.shape[1] != columns):
            # Shape errors surface immediately — a malformed array must not
            # poison the concatenation other waiters share.
            width = columns if columns is not None else "2d"
            raise InvalidQueryError(f"queries must be an (n, {width}) array")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((mechanism, surface, queries, future))
        if self._flush_handle is None:
            # One flush per drain: every enqueue landing before the loop
            # reaches the callback rides the same batch.
            self._flush_handle = loop.call_soon(self._flush)
        return await future

    def _flush(self) -> None:
        self._flush_handle = None
        pending, self._pending = self._pending, []
        if not pending:
            return
        self._flushes += 1
        groups: dict = {}
        for entry in pending:
            groups.setdefault((id(entry[0]), entry[1]), []).append(entry)
        for (_, surface), waiters in groups.items():
            mechanism = waiters[0][0]
            if len(waiters) == 1:
                self._answer_individually(waiters)
                continue
            stacked = np.concatenate([entry[2] for entry in waiters])
            self._coalesced_queries += int(stacked.shape[0])
            self._coalesced_calls += 1
            try:
                answers = getattr(mechanism, surface)(stacked)
            except BaseException:  # noqa: BLE001 - refined per waiter below
                # One bad waiter must not fail the whole batch with an
                # error about rows it never submitted: re-answer each
                # sub-batch alone so every future gets its own outcome.
                self._answer_individually(waiters)
                continue
            offset = 0
            for _, _, queries, future in waiters:
                count = int(queries.shape[0])
                if not future.cancelled():
                    future.set_result(answers[offset : offset + count])
                offset += count

    @staticmethod
    def _answer_individually(waiters) -> None:
        for mechanism, surface, queries, future in waiters:
            if future.cancelled():
                continue
            try:
                future.set_result(getattr(mechanism, surface)(queries))
            except BaseException as error:  # noqa: BLE001 - delivered to waiter
                future.set_exception(error)
