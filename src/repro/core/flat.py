"""Flat range-query mechanism (Section 4.2).

The simplest approach: estimate the frequency of every individual item with
one frequency oracle and answer a range by summing the point estimates.
Fact 1 of the paper shows the variance grows linearly with the range length
(``r * V_F``), which is why the paper develops the hierarchical and wavelet
mechanisms — but the flat method remains the most accurate choice for point
queries and very short ranges, and the experiments plot it as the ``B = D``
end of the branching-factor axis.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import RangeQueryMechanism
from repro.core.cache import MISS
from repro.exceptions import InvalidQueryError
from repro.frequency_oracles.accumulators import OracleAccumulator
from repro.frequency_oracles.registry import make_oracle

__all__ = ["FlatMechanism"]


class FlatMechanism(RangeQueryMechanism):
    """Sum-of-point-queries range mechanism.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget.
    domain_size:
        Number of items ``D``.
    oracle:
        Name of the frequency oracle used for the point estimates
        (``"oue"`` by default, matching the paper's flat baseline).
    oracle_kwargs:
        Extra keyword arguments forwarded to the oracle constructor.
    """

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        oracle: str = "oue",
        name: Optional[str] = None,
        **oracle_kwargs,
    ) -> None:
        super().__init__(epsilon, domain_size, name=name or f"Flat{oracle.upper()}")
        self._oracle_kwargs = dict(oracle_kwargs)
        self._oracle = make_oracle(oracle, epsilon=epsilon, domain_size=domain_size, **oracle_kwargs)
        self._accumulator: Optional[OracleAccumulator] = None
        self._frequencies: Optional[np.ndarray] = None
        self._prefix: Optional[np.ndarray] = None

    @property
    def oracle(self):
        """The underlying frequency oracle instance."""
        return self._oracle

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _collect(
        self,
        items: Optional[np.ndarray],
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        self._accumulator = self._oracle.accumulator()
        self._accumulate_batch(items, counts, rng, mode)
        self._mark_dirty()

    def _partial_collect(
        self,
        items: np.ndarray,
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        if self._accumulator is None:
            self._accumulator = self._oracle.accumulator()
        self._accumulate_batch(items, counts, rng, mode)

    def _accumulate_batch(
        self,
        items: Optional[np.ndarray],
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        if mode == "per_user":
            self._accumulator.add(self._oracle.encode_batch(items, rng))
        else:
            self._accumulator.add_counts(counts, rng)

    def _refresh_estimates(self) -> None:
        self._frequencies = np.asarray(self._accumulator.estimate(), dtype=np.float64)
        self._prefix = np.concatenate([[0.0], np.cumsum(self._frequencies)])

    def _merge_state(self, other: "FlatMechanism") -> None:
        if self._accumulator is None:
            self._accumulator = self._oracle.accumulator()
        self._accumulator.merge(other._accumulator)

    def _merge_signature(self) -> tuple:
        return super()._merge_signature() + (self._oracle.merge_signature(),)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = {"n_users": self._pack_n_users()}
        if self._accumulator is not None:
            state["accumulator"] = self._accumulator.state_dict()
        return state

    def load_state_dict(self, state: dict) -> "FlatMechanism":
        n_users = self._unpack_n_users(state)
        if "accumulator" in state:
            accumulator = self._oracle.accumulator()
            accumulator.load_state_dict(state["accumulator"])
            self._accumulator = accumulator
            self._mark_dirty()
        else:
            self._accumulator = None
            self._frequencies = None
            self._prefix = None
            self._mark_clean()
        self._n_users = n_users
        return self

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def _answer_range(self, start: int, end: int) -> float:
        return float(self._prefix[end + 1] - self._prefix[start])

    def estimate_frequencies(self) -> np.ndarray:
        """Per-item estimates straight from the frequency oracle."""
        self._require_fitted()
        return self._frequencies.copy()

    def estimate_cdf(self) -> np.ndarray:
        """The materialized prefix sums, reused instead of re-deriving the
        CDF from per-item frequencies (bit-identical, zero extra work)."""
        self._require_fitted()
        return self._prefix[1:].copy()

    def answer_ranges(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised evaluation via prefix sums (O(1) per query)."""
        self._require_fitted()
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 2 or queries.shape[1] != 2:
            raise InvalidQueryError("queries must be an (n, 2) array")
        if queries.size and (
            queries.min() < 0
            or queries[:, 1].max() >= self._domain_size
            or np.any(queries[:, 0] > queries[:, 1])
        ):
            # Fall back to the base implementation for its precise errors.
            return super().answer_ranges(queries)
        key = ("ranges", queries.shape[0], queries.tobytes())
        cached = self._answer_cache.get(self._ingest_generation, key)
        if cached is not MISS:
            return cached
        value = self._prefix[queries[:, 1] + 1] - self._prefix[queries[:, 0]]
        self._answer_cache.put(self._ingest_generation, key, value)
        return value

    def per_query_variance(self, range_length: int) -> float:
        """Theoretical variance ``r * V_F`` of a length-``r`` query (Fact 1)."""
        self._require_fitted()
        return range_length * self._oracle.theoretical_variance(self.n_users)
