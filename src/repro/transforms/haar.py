"""Discrete Haar wavelet Transform (DHT).

The wavelet mechanism of Section 4.6 perturbs Haar coefficients of the
(one-hot) user input.  This module implements the orthonormal DHT with the
same convention as Figure 3 of the paper:

* the domain size ``D`` is a power of two and the tree height is
  ``h = log2(D)``;
* coefficient index ``0`` is the *scaling* coefficient
  ``c_0 = sum(x) / sqrt(D)``;
* a *detail* coefficient sits at every internal node ``v`` of the binary
  tree.  A node at height ``m`` (leaves are height ``0``) covers a block of
  ``2^m`` consecutive leaves and its coefficient is

      c_v = (C_left - C_right) / 2^{m/2}

  where ``C_left`` / ``C_right`` are the sums over the left / right halves
  of the block.  The ``D / 2^m`` coefficients of height ``m`` are stored at
  indices ``[2^{h-m}, 2^{h-m+1})`` (the standard dyadic layout), so height
  ``h`` (the root split) is index ``1`` and height ``1`` occupies the last
  ``D/2`` slots.

With this convention the transform matrix is orthonormal, which is what
makes the coefficient estimates independent and removes any need for the
consistency post-processing required by hierarchical histograms.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.exceptions import InvalidDomainError, InvalidQueryError
from repro.transforms.hadamard import is_power_of_two

__all__ = [
    "haar_forward",
    "haar_inverse",
    "haar_matrix",
    "haar_level_slices",
    "haar_coefficient_index",
    "haar_user_coefficients",
    "haar_range_weights",
    "tree_height",
]


def tree_height(domain_size: int) -> int:
    """Return ``h = log2(domain_size)`` for a power-of-two domain."""
    if not is_power_of_two(domain_size):
        raise InvalidDomainError(
            f"the Haar transform requires a power-of-two domain, got {domain_size!r}"
        )
    return int(domain_size).bit_length() - 1


def haar_forward(vector: np.ndarray) -> np.ndarray:
    """Orthonormal forward DHT of a length-``D`` vector in ``O(D)`` time."""
    data = np.array(vector, dtype=np.float64, copy=True)
    if data.ndim != 1:
        raise InvalidDomainError("expected a one-dimensional vector")
    size = data.shape[0]
    height = tree_height(size)
    coefficients = np.empty(size, dtype=np.float64)
    current = data
    for level in range(1, height + 1):
        left = current[0::2]
        right = current[1::2]
        detail = (left - right) / (2.0 ** (level / 2.0))
        start = size >> level
        coefficients[start : 2 * start] = detail
        current = left + right
    coefficients[0] = current[0] / np.sqrt(size)
    return coefficients


def haar_inverse(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`haar_forward` (exact, orthonormal)."""
    coeffs = np.asarray(coefficients, dtype=np.float64)
    if coeffs.ndim != 1:
        raise InvalidDomainError("expected a one-dimensional vector")
    size = coeffs.shape[0]
    height = tree_height(size)
    # Start from the total sum implied by the scaling coefficient and refine.
    current = np.array([coeffs[0] * np.sqrt(size)], dtype=np.float64)
    for level in range(height, 0, -1):
        start = size >> level
        detail = coeffs[start : 2 * start] * (2.0 ** (level / 2.0))
        left = (current + detail) / 2.0
        right = (current - detail) / 2.0
        expanded = np.empty(2 * current.shape[0], dtype=np.float64)
        expanded[0::2] = left
        expanded[1::2] = right
        current = expanded
    return current


def haar_matrix(domain_size: int) -> np.ndarray:
    """Return the orthonormal analysis matrix ``A`` with ``c = A @ x``.

    ``A.T`` is the synthesis matrix whose rows are shown (for ``D = 8``) in
    Figure 3 of the paper.  Intended for tests and tiny domains only; the
    mechanisms always use the fast transforms.
    """
    if not is_power_of_two(domain_size):
        raise InvalidDomainError(
            f"the Haar transform requires a power-of-two domain, got {domain_size!r}"
        )
    identity = np.eye(int(domain_size))
    return np.stack([haar_forward(column) for column in identity.T], axis=1)


def haar_level_slices(domain_size: int) -> Dict[int, slice]:
    """Map each height ``m`` (1..h) to the slice of its coefficient indices.

    The scaling coefficient (index ``0``) is not part of any height; the
    mechanisms treat it separately because it needs no perturbation (it is
    the constant ``1/sqrt(D)`` for every user).
    """
    height = tree_height(domain_size)
    slices: Dict[int, slice] = {}
    for level in range(1, height + 1):
        start = domain_size >> level
        slices[level] = slice(start, 2 * start)
    return slices


def haar_coefficient_index(height: int, block: int, domain_size: int) -> int:
    """Return the flat index of the detail coefficient ``(height, block)``.

    ``block`` counts the nodes of the given height left to right, i.e. block
    ``k`` covers leaves ``[k * 2^height, (k + 1) * 2^height)``.
    """
    tree_h = tree_height(domain_size)
    if not 1 <= height <= tree_h:
        raise InvalidQueryError(
            f"height must be in [1, {tree_h}], got {height!r}"
        )
    nodes = domain_size >> height
    if not 0 <= block < nodes:
        raise InvalidQueryError(
            f"block must be in [0, {nodes}) at height {height}, got {block!r}"
        )
    return nodes + block


def haar_user_coefficients(item: int, domain_size: int) -> Dict[int, Tuple[int, int]]:
    """Return, for each height, the (block, sign) of the user's single
    non-zero detail coefficient.

    For an input ``x = e_item`` the detail coefficient at height ``m`` is
    ``sign / 2^{m/2}`` where ``sign`` is ``+1`` if the item falls in the left
    half of its covering block and ``-1`` otherwise.  The mechanisms report
    the ``sign`` and re-apply the ``2^{-m/2}`` scaling at aggregation time.
    """
    height = tree_height(domain_size)
    if not 0 <= item < domain_size:
        raise InvalidQueryError(
            f"item must be in [0, {domain_size}), got {item!r}"
        )
    result: Dict[int, Tuple[int, int]] = {}
    for level in range(1, height + 1):
        block = item >> level
        in_right_half = (item >> (level - 1)) & 1
        sign = -1 if in_right_half else 1
        result[level] = (block, sign)
    return result


def haar_range_weights(
    start: int, end: int, domain_size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Weights expressing a range sum in the coefficient basis.

    Returns ``(indices, weights)`` such that

        sum_{i=start..end} x_i  ==  sum_k weights[k] * c[indices[k]]

    for any vector ``x`` with orthonormal Haar coefficients ``c``.  Only
    coefficients whose node is *cut* by the range carry a non-zero weight, so
    at most two nodes per height (plus the scaling coefficient) appear and
    the result has ``O(log D)`` entries.
    """
    if not 0 <= start <= end < domain_size:
        raise InvalidQueryError(
            f"invalid range [{start}, {end}] for domain of size {domain_size}"
        )
    height = tree_height(domain_size)
    indices = [0]
    weights = [(end - start + 1) / np.sqrt(domain_size)]
    for level in range(1, height + 1):
        block_size = 1 << level
        half = block_size >> 1
        first_block = start >> level
        last_block = end >> level
        # Only the (at most two) boundary blocks can be partially covered.
        for block in {first_block, last_block}:
            lo = block * block_size
            left_overlap = _overlap(start, end, lo, lo + half - 1)
            right_overlap = _overlap(start, end, lo + half, lo + block_size - 1)
            weight = (left_overlap - right_overlap) / (2.0 ** (level / 2.0))
            if weight != 0.0:
                indices.append((domain_size >> level) + block)
                weights.append(weight)
    return np.asarray(indices, dtype=np.int64), np.asarray(weights, dtype=np.float64)


def _overlap(a: int, b: int, lo: int, hi: int) -> int:
    """Number of integers in the intersection of ``[a, b]`` and ``[lo, hi]``."""
    return max(0, min(b, hi) - max(a, lo) + 1)
