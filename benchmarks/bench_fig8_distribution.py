"""Figure 8 — impact of the input distribution center P.

The Cauchy center is swept across the domain (P = 0.1 .. 0.9) at the default
epsilon = 1.1, comparing HaarHRR with the best consistent hierarchical
histogram.  The paper's observation is that accuracy is essentially flat in
P for small and medium domains, and that the absolute errors remain tiny.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure8_distribution_shift
from repro.experiments.reporting import format_table


@pytest.mark.benchmark(group="figure8")
def test_figure8_distribution_shift(run_once, bench_config):
    domain = 1 << 10
    centers = (0.1, 0.3, 0.5, 0.7, 0.9)
    results = run_once(
        figure8_distribution_shift,
        bench_config,
        domain,
        centers=centers,
        methods=("hhc_4", "haar"),
    )

    rows = []
    for center in centers:
        cells = {cell.mechanism: cell.scaled_mse for cell in results[center]}
        rows.append([center, cells["hhc_4"], cells["haar"]])
    print(f"\n=== Figure 8 | D = 2^10, eps = 1.1 | MSE x 1000 vs Cauchy center P ===")
    print(format_table(["P", "HHc_4", "HaarHRR"], rows))

    # Qualitative claims: errors stay small in absolute terms and do not
    # blow up as the distribution shifts (the paper reports a maximum MSE of
    # 0.0035 across the whole sweep at N = 2^26; scale the tolerance by the
    # population ratio ~ 2^26 / 2^16 = 1024 is far looser than needed, so
    # simply require every cell to stay below 0.05).
    all_mse = [cell.mse_mean for cells in results.values() for cell in cells]
    assert max(all_mse) < 0.05
    # Flatness: the worst center is within a small factor of the best one
    # for each method.
    for method in ("hhc_4", "haar"):
        per_center = [
            cell.mse_mean
            for center in centers
            for cell in results[center]
            if cell.mechanism == method
        ]
        assert max(per_center) < 4.0 * min(per_center)
