"""Asynchronous, concurrent ingestion for sharded LDP collection.

The paper's collection model is a fleet of millions of one-shot reporters;
a deployed pipeline also needs the *server side* of that fleet: many
producers submitting report batches concurrently, shards absorbing them
under backpressure, a routing policy spreading (or pinning) the load, and
state that can cross process boundaries.  This package is that tier,
layered on :mod:`repro.streaming` (mergeable shards) and
:mod:`repro.persist` (durable, transportable shard state):

* :class:`IngestionService` — an ``asyncio`` service with one bounded
  queue + worker per shard; concurrent producers ``await submit(batch)``
  and slow down automatically when aggregation falls behind.
* Routers — :class:`RoundRobinRouter`, :class:`HashRouter` (hash-by-user,
  sticky placement), :class:`LeastLoadedRouter` (load-aware), pluggable
  into both the async service and the synchronous
  :class:`~repro.streaming.ShardedCollector` via ``router=``.
* :func:`collect_across_processes` — a multiprocessing executor whose
  workers receive and return shard state as :mod:`repro.persist` snapshot
  bytes, demonstrating cross-process shard transport end-to-end.
* :func:`run_ingestion` — synchronous driver used by the
  ``python -m repro serve-demo`` CLI and
  ``benchmarks/bench_ingestion_service.py``.

None of it changes the estimates' distribution: every path feeds the same
mergeable accumulators, so producer count, queue sizes, routing policy and
process placement are pure operational knobs.

Example
-------
>>> import asyncio
>>> import numpy as np
>>> from repro.service import IngestionService
>>> from repro.streaming import ShardedCollector
>>> async def main():
...     collector = ShardedCollector(
...         "hhc_4", epsilon=1.1, domain_size=1024,
...         n_shards=4, random_state=7, router="least-loaded",
...     )
...     items = np.random.default_rng(0).integers(0, 1024, 200_000)
...     async with IngestionService(collector, queue_size=4) as service:
...         await asyncio.gather(*(
...             service.submit(batch) for batch in np.array_split(items, 40)
...         ))
...     return collector.reduce().answer_range(100, 500)
>>> answer = asyncio.run(main())
"""

from repro.service.autoscale import AutoscalePolicy, LoadSignal, ShardAutoscaler
from repro.service.client import ServiceClient, ServiceResponse
from repro.service.executor import collect_across_processes
from repro.service.http import HttpServerThread, ReproHttpServer
from repro.service.ingestion import (
    IngestionReport,
    IngestionService,
    ShardQueueStats,
    run_ingestion,
)
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_ingestion_stats,
)
from repro.service.query import QueryCoalescer
from repro.streaming.routing import (
    HashRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    ShardRouter,
    make_router,
    register_router,
)

__all__ = [
    "AutoscalePolicy",
    "Counter",
    "Gauge",
    "HashRouter",
    "Histogram",
    "HttpServerThread",
    "IngestionReport",
    "IngestionService",
    "LeastLoadedRouter",
    "LoadSignal",
    "MetricsRegistry",
    "QueryCoalescer",
    "ReproHttpServer",
    "RoundRobinRouter",
    "ServiceClient",
    "ServiceResponse",
    "ShardAutoscaler",
    "ShardQueueStats",
    "ShardRouter",
    "collect_across_processes",
    "make_router",
    "register_router",
    "render_ingestion_stats",
    "run_ingestion",
]
