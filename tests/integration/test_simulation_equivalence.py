"""Statistical equivalence of the per-user and aggregate simulation modes.

The benchmark sweeps rely on the aggregate fast path; these tests confirm
that, for each mechanism, the two execution modes produce estimates whose
errors are statistically indistinguishable at the tolerance the experiments
care about (same order of magnitude, overlapping spreads).
"""

import numpy as np
import pytest

from repro.analysis.metrics import mean_squared_error
from repro.core.factory import mechanism_from_spec
from repro.data.synthetic import cauchy_probabilities, expected_counts
from repro.data.workloads import all_range_queries
from repro.privacy.randomness import spawn_generators

DOMAIN = 128
N_USERS = 40_000
EPSILON = 1.1
REPETITIONS = 6


@pytest.fixture(scope="module")
def counts():
    return expected_counts(cauchy_probabilities(DOMAIN), N_USERS)


@pytest.fixture(scope="module")
def workload():
    return all_range_queries(DOMAIN).subset(1500, random_state=0)


def _errors(spec, counts, workload, mode, seed):
    truth = workload.true_answers(counts)
    errors = []
    for rng in spawn_generators(seed, REPETITIONS):
        mechanism = mechanism_from_spec(spec, epsilon=EPSILON, domain_size=DOMAIN)
        mechanism.fit_counts(counts, random_state=rng, mode=mode)
        errors.append(mean_squared_error(truth, mechanism.answer_workload(workload)))
    return np.asarray(errors)


@pytest.mark.parametrize("spec", ["flat_oue", "hhc_4", "hh_4_hrr", "haar"])
def test_per_user_and_aggregate_modes_agree(spec, counts, workload):
    aggregate = _errors(spec, counts, workload, "aggregate", seed=101)
    per_user = _errors(spec, counts, workload, "per_user", seed=202)
    # Means within a factor of two of each other and overlapping ranges.
    ratio = aggregate.mean() / per_user.mean()
    assert 0.5 < ratio < 2.0, f"{spec}: aggregate {aggregate.mean()}, per_user {per_user.mean()}"


def test_fit_counts_and_fit_items_agree(counts, workload):
    items = np.repeat(np.arange(DOMAIN), counts)
    truth = workload.true_answers(counts)
    by_counts, by_items = [], []
    for rng in spawn_generators(7, REPETITIONS):
        a = mechanism_from_spec("hhc_4", epsilon=EPSILON, domain_size=DOMAIN)
        a.fit_counts(counts, random_state=rng)
        by_counts.append(mean_squared_error(truth, a.answer_workload(workload)))
    for rng in spawn_generators(8, REPETITIONS):
        b = mechanism_from_spec("hhc_4", epsilon=EPSILON, domain_size=DOMAIN)
        b.fit_items(items, random_state=rng)
        by_items.append(mean_squared_error(truth, b.answer_workload(workload)))
    assert 0.5 < np.mean(by_counts) / np.mean(by_items) < 2.0
