"""Property-based tests for the B-adic decomposition (Facts 2 and 3)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms.badic import (
    badic_decompose,
    badic_node_count_bound,
    is_badic_interval,
)

ranges = st.tuples(
    st.integers(min_value=0, max_value=4095), st.integers(min_value=0, max_value=4095)
).map(lambda pair: (min(pair), max(pair)))

branchings = st.integers(min_value=2, max_value=16)


@given(query=ranges, branching=branchings)
@settings(max_examples=200, deadline=None)
def test_decomposition_covers_range_exactly_and_disjointly(query, branching):
    start, end = query
    pieces = badic_decompose(start, end, branching)
    covered = np.zeros(end - start + 1, dtype=int)
    for piece in pieces:
        assert start <= piece.start <= piece.end <= end
        covered[piece.start - start : piece.end - start + 1] += 1
    assert np.all(covered == 1), "every item covered exactly once"


@given(query=ranges, branching=branchings)
@settings(max_examples=200, deadline=None)
def test_every_piece_is_badic(query, branching):
    start, end = query
    for piece in badic_decompose(start, end, branching):
        assert is_badic_interval(piece.start, piece.end, branching)
        assert piece.length == branching**piece.level
        assert piece.start == piece.index * branching**piece.level


@given(query=ranges, branching=branchings)
@settings(max_examples=200, deadline=None)
def test_piece_count_respects_fact3_bound(query, branching):
    start, end = query
    pieces = badic_decompose(start, end, branching)
    assert len(pieces) <= badic_node_count_bound(end - start + 1, branching)


@given(query=ranges, branching=branchings)
@settings(max_examples=100, deadline=None)
def test_pieces_are_sorted_left_to_right(query, branching):
    start, end = query
    pieces = badic_decompose(start, end, branching)
    boundaries = [piece.start for piece in pieces]
    assert boundaries == sorted(boundaries)
