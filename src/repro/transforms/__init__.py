"""Linear transforms used by the LDP range-query mechanisms.

* :mod:`repro.transforms.hadamard` — the (scaled) Walsh–Hadamard transform
  underlying Hadamard Randomized Response (Section 3.2 of the paper);
* :mod:`repro.transforms.haar` — the Discrete Haar wavelet Transform (DHT)
  used by the ``HaarHRR`` mechanism (Section 4.6);
* :mod:`repro.transforms.badic` — B-adic interval decomposition of ranges,
  the combinatorial backbone of the hierarchical histogram methods
  (Facts 2 and 3, Section 4.3).
"""

from repro.transforms.badic import (
    badic_decompose,
    badic_node_count_bound,
    is_badic_interval,
)
from repro.transforms.hadamard import (
    fast_walsh_hadamard_transform,
    hadamard_entry,
    hadamard_entries,
    hadamard_matrix,
    inverse_fast_walsh_hadamard_transform,
)
from repro.transforms.haar import (
    haar_coefficient_index,
    haar_forward,
    haar_inverse,
    haar_level_slices,
    haar_matrix,
    haar_range_weights,
)

__all__ = [
    "badic_decompose",
    "badic_node_count_bound",
    "is_badic_interval",
    "fast_walsh_hadamard_transform",
    "inverse_fast_walsh_hadamard_transform",
    "hadamard_entry",
    "hadamard_entries",
    "hadamard_matrix",
    "haar_forward",
    "haar_inverse",
    "haar_matrix",
    "haar_level_slices",
    "haar_coefficient_index",
    "haar_range_weights",
]
