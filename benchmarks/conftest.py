"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation at
laptop scale and prints it in the paper's layout.  The scale can be raised
towards the paper's original parameters through environment variables:

``REPRO_BENCH_USERS``        population size N (default 2^16)
``REPRO_BENCH_REPETITIONS``  repetitions per cell (default 2; the paper uses 5)
``REPRO_BENCH_MAX_QUERIES``  per-workload query cap (default 4000)

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration shared by all benchmark modules."""
    return ExperimentConfig(
        n_users=_env_int("REPRO_BENCH_USERS", 1 << 17),
        repetitions=_env_int("REPRO_BENCH_REPETITIONS", 3),
        max_queries_per_workload=_env_int("REPRO_BENCH_MAX_QUERIES", 6000),
        seed=20190630,
    )


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiment functions are deterministic given their seed and far too
    heavy for statistical repetition, so a single timed round is recorded.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
