"""Property-based tests for the Hadamard and Haar transforms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.transforms.hadamard import (
    fast_walsh_hadamard_transform,
    hadamard_entries,
    inverse_fast_walsh_hadamard_transform,
)
from repro.transforms.haar import haar_forward, haar_inverse, haar_range_weights

#: Power-of-two vector lengths small enough to stay fast under hypothesis.
sizes = st.sampled_from([2, 4, 8, 16, 32, 64, 128])


def vectors(size):
    return hnp.arrays(
        dtype=np.float64,
        shape=size,
        elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
    )


@given(data=st.data(), size=sizes)
@settings(max_examples=100, deadline=None)
def test_hadamard_roundtrip(data, size):
    vector = data.draw(vectors(size))
    transformed = fast_walsh_hadamard_transform(vector)
    np.testing.assert_allclose(
        inverse_fast_walsh_hadamard_transform(transformed), vector, atol=1e-6
    )


@given(data=st.data(), size=sizes)
@settings(max_examples=100, deadline=None)
def test_hadamard_preserves_scaled_norm(data, size):
    # Parseval: ||H x||^2 = D ||x||^2 for the unnormalised transform.
    vector = data.draw(vectors(size))
    transformed = fast_walsh_hadamard_transform(vector)
    np.testing.assert_allclose(
        np.sum(transformed**2), size * np.sum(vector**2), rtol=1e-6, atol=1e-6
    )


@given(size=sizes, seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_hadamard_entries_symmetry(size, seed):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, size, 20)
    cols = rng.integers(0, size, 20)
    np.testing.assert_array_equal(
        hadamard_entries(rows, cols), hadamard_entries(cols, rows)
    )


@given(data=st.data(), size=sizes)
@settings(max_examples=100, deadline=None)
def test_haar_roundtrip(data, size):
    vector = data.draw(vectors(size))
    np.testing.assert_allclose(haar_inverse(haar_forward(vector)), vector, atol=1e-6)


@given(data=st.data(), size=sizes)
@settings(max_examples=100, deadline=None)
def test_haar_preserves_norm(data, size):
    # The orthonormal Haar transform is an isometry.
    vector = data.draw(vectors(size))
    coefficients = haar_forward(vector)
    np.testing.assert_allclose(
        np.sum(coefficients**2), np.sum(vector**2), rtol=1e-6, atol=1e-6
    )


@given(data=st.data(), size=sizes)
@settings(max_examples=100, deadline=None)
def test_haar_range_weights_reproduce_any_range_sum(data, size):
    vector = data.draw(vectors(size))
    start = data.draw(st.integers(min_value=0, max_value=size - 1))
    end = data.draw(st.integers(min_value=start, max_value=size - 1))
    coefficients = haar_forward(vector)
    indices, weights = haar_range_weights(start, end, size)
    estimate = float(np.dot(coefficients[indices], weights))
    np.testing.assert_allclose(estimate, vector[start : end + 1].sum(), rtol=1e-6, atol=1e-5)
