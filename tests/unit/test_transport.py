"""Unit tests for the shared-memory experiment transport."""

import pickle

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.transport import (
    SharedArrayPack,
    resolve_transport,
    shm_available,
)


class TestResolveTransport:
    def test_pickle_is_always_pickle(self):
        assert resolve_transport("pickle") == "pickle"

    def test_auto_and_shm_resolve_by_availability(self):
        expected = "shm" if shm_available() else "pickle"
        assert resolve_transport("auto") == expected
        assert resolve_transport("shm") == expected

    def test_input_is_normalised(self):
        assert resolve_transport("  PICKLE ") == "pickle"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_transport("tcp")


@pytest.fixture
def arrays():
    return {
        "counts": np.arange(12, dtype=np.float64).reshape(3, 4),
        "queries": np.array([[0, 5], [2, 9]], dtype=np.int64),
        "flags": np.array([True, False, True]),
    }


class TestSharedArrayPack:
    def test_round_trip_through_attach(self, arrays):
        with SharedArrayPack.create(arrays) as pack:
            attached = SharedArrayPack.attach(pack.descriptor)
            try:
                views = attached.arrays()
                assert set(views) == set(arrays)
                for key, original in arrays.items():
                    assert views[key].dtype == original.dtype
                    assert views[key].shape == original.shape
                    assert np.array_equal(views[key], original)
            finally:
                attached.close()

    def test_descriptor_is_picklable_and_small(self, arrays):
        with SharedArrayPack.create(arrays) as pack:
            descriptor = pack.descriptor
            clone = pickle.loads(pickle.dumps(descriptor))
            assert clone == descriptor
            # A descriptor ships metadata, never the payload.
            assert len(pickle.dumps(descriptor)) < 1024

    def test_attached_views_are_read_only(self, arrays):
        with SharedArrayPack.create(arrays) as pack:
            attached = SharedArrayPack.attach(pack.descriptor)
            try:
                views = attached.arrays()
                with pytest.raises(ValueError):
                    views["counts"][0, 0] = 99.0
            finally:
                attached.close()

    def test_unlink_removes_segment_and_is_idempotent(self, arrays):
        pack = SharedArrayPack.create(arrays)
        name = pack.name
        assert SharedArrayPack.segment_exists(name)
        pack.close()
        pack.unlink()
        assert not SharedArrayPack.segment_exists(name)
        pack.unlink()  # a second unlink is a no-op, not an error

    def test_attach_after_unlink_raises(self, arrays):
        pack = SharedArrayPack.create(arrays)
        descriptor = pack.descriptor
        pack.close()
        pack.unlink()
        with pytest.raises(FileNotFoundError):
            SharedArrayPack.attach(descriptor)

    def test_only_the_owner_unlinks(self, arrays):
        pack = SharedArrayPack.create(arrays)
        try:
            attached = SharedArrayPack.attach(pack.descriptor)
            attached.close()
            attached.unlink()  # non-owner: must leave the segment alone
            assert SharedArrayPack.segment_exists(pack.name)
        finally:
            pack.close()
            pack.unlink()

    def test_empty_arrays_supported(self):
        empty = {"counts": np.empty((0, 7), dtype=np.float64)}
        with SharedArrayPack.create(empty) as pack:
            attached = SharedArrayPack.attach(pack.descriptor)
            try:
                view = attached.arrays()["counts"]
                assert view.shape == (0, 7)
                assert view.dtype == np.float64
            finally:
                attached.close()

    def test_non_contiguous_input_is_packed_correctly(self):
        base = np.arange(24, dtype=np.int64).reshape(4, 6)
        strided = base[:, ::2]  # non-contiguous view
        with SharedArrayPack.create({"a": strided}) as pack:
            attached = SharedArrayPack.attach(pack.descriptor)
            try:
                assert np.array_equal(attached.arrays()["a"], strided)
            finally:
                attached.close()

    def test_offsets_are_aligned(self, arrays):
        with SharedArrayPack.create(arrays) as pack:
            for spec in pack.descriptor["layout"].values():
                assert spec["offset"] % 64 == 0
