"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, build_serve_parser, main


class TestServeParser:
    def test_defaults(self):
        args = build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.mechanism == "hhc_4"
        assert args.epsilon == pytest.approx(1.1)
        assert args.domain == 1 << 10
        assert args.shards == 2
        assert args.router == "least-loaded"
        assert args.queue_size == 8
        assert args.autoscale is False
        assert args.min_shards == 1
        assert args.max_shards == 8
        assert args.grow_at == pytest.approx(0.75)
        assert args.shrink_at == pytest.approx(0.10)
        assert args.check_interval == 16

    def test_autoscale_knobs(self):
        args = build_serve_parser().parse_args(
            [
                "--port", "0", "--shards", "4", "--autoscale",
                "--min-shards", "2", "--max-shards", "6",
                "--grow-at", "0.5", "--shrink-at", "0.2",
                "--check-interval", "8",
            ]
        )
        assert args.port == 0
        assert args.autoscale is True
        assert args.min_shards == 2
        assert args.max_shards == 6
        assert args.grow_at == pytest.approx(0.5)
        assert args.shrink_at == pytest.approx(0.2)
        assert args.check_interval == 8


class TestParser:
    def test_all_experiments_accepted(self):
        parser = build_parser()
        for experiment in EXPERIMENTS:
            args = parser.parse_args([experiment])
            assert args.experiment == experiment

    def test_defaults(self):
        args = build_parser().parse_args(["table5"])
        assert args.domain == 1 << 10
        assert args.users == 1 << 17
        assert args.epsilon == pytest.approx(1.1)

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig9", "--domain", "128", "--users", "5000", "--centers", "0.2", "0.6"]
        )
        assert args.domain == 128
        assert args.users == 5000
        assert args.centers == [0.2, 0.6]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_bench_backend_and_transport_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.backend is None  # None = leave auto-detection alone
        assert args.transport == "auto"

    def test_bench_backend_and_transport_overrides(self):
        args = build_parser().parse_args(
            ["bench", "--backend", "numpy", "--transport", "shm"]
        )
        assert args.backend == "numpy"
        assert args.transport == "shm"

    def test_bench_backend_and_transport_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--backend", "cuda"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--transport", "tcp"])


TINY = ["--users", "20000", "--repetitions", "1", "--max-queries", "400", "--domain", "64"]


class TestMain:
    def test_table5_runs_and_prints(self, capsys):
        assert main(["table5", *TINY, "--epsilons", "0.4", "1.1"]) == 0
        output = capsys.readouterr().out
        assert "Table 5" in output and "haar" in output

    def test_table6_runs(self, capsys):
        assert main(["table6", *TINY, "--epsilons", "1.1"]) == 0
        assert "Table 6" in capsys.readouterr().out

    def test_fig4_runs(self, capsys):
        assert main(["fig4", *TINY]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output and "flat_oue" in output

    def test_fig8_runs(self, capsys):
        assert main(["fig8", *TINY, "--centers", "0.3", "0.7"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_fig9_runs(self, capsys):
        assert main(["fig9", *TINY, "--centers", "0.5"]) == 0
        output = capsys.readouterr().out
        assert "Figure 9" in output and "0.5" in output

    def test_table7_runs(self, capsys):
        assert main(["table7", *TINY, "--domains", "64", "128"]) == 0
        output = capsys.readouterr().out
        assert "Wavelet/HHc_16" in output

    def test_ablations_run(self, capsys):
        assert main(["ablation-sampling", *TINY]) == 0
        assert "sampling" in capsys.readouterr().out
        assert main(["ablation-consistency", *TINY]) == 0
        assert "improvement" in capsys.readouterr().out

    def test_streaming_runs(self, capsys):
        assert main(["streaming", *TINY, "--shards", "2", "--batches", "4"]) == 0
        output = capsys.readouterr().out
        assert "Streaming" in output and "one-shot" in output

    def test_streaming_checkpoint_recovery(self, capsys, tmp_path):
        path = tmp_path / "collector.snap"
        assert (
            main(
                [
                    "streaming",
                    *TINY,
                    "--shards",
                    "2",
                    "--batches",
                    "4",
                    "--checkpoint",
                    str(path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Crash recovery" in output
        assert "bit-for-bit: True" in output
        assert path.exists()

    def test_serve_demo_runs(self, capsys):
        assert (
            main(
                [
                    "serve-demo",
                    *TINY,
                    "--batches",
                    "4",
                    "--producers",
                    "1",
                    "2",
                    "--router",
                    "least-loaded",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Ingestion service" in output
        assert "least-loaded" in output
        assert "Musers/s" in output

    def test_table5_with_workers_matches_serial(self, capsys):
        argv = ["table5", *TINY, "--epsilons", "1.1"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main([*argv, "--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_bench_runs_and_writes_json(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.experiments import bench as bench_module

        tiny = dict(
            repeats=1,
            encode_users=200,
            encode_domain=32,
            unary_users=300,
            unary_domain=64,
            olh_users=100,
            olh_domain=16,
            shard_users=500,
            shard_domain=64,
            shards=2,
            consistency_branching=2,
            consistency_height=4,
            grid_users=500,
            grid_domain=16,
            grid_specs=("hhc_4",),
            grid_epsilons=(1.1,),
            grid_repetitions=1,
            grid2d_users=400,
            grid2d_side=8,
            grid2d_branching=2,
            grid2d_shards=2,
            grid2d_batches=4,
            grid2d_rectangles=50,
            stream_batch_users=4,
            stream_hh_domain=64,
            stream_hh_branching=2,
            stream_hh_batches=8,
            stream_grid_side=8,
            stream_grid_branching=2,
            stream_grid_batches=8,
        )
        tiny_suites = {"smoke": dict(bench_module.SUITES["smoke"], **tiny)}
        monkeypatch.setattr(bench_module, "SUITES", tiny_suites)
        assert main(["bench", "--suite", "smoke", "--out", str(tmp_path), "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "Benchmark suite 'smoke'" in output
        assert "bit-identical to serial:     True" in output
        assert "grid2d restore bit-identical:              True" in output
        assert "lazy vs eager bit-identical:               True" in output
        written = json.loads((tmp_path / "BENCH_smoke.json").read_text())
        assert written["suite"] == "smoke"
        assert written["results"]

        # Comparing a run against its own record is clean (exit 0) ...
        baseline = tmp_path / "BENCH_smoke.json"
        assert (
            main(
                [
                    "bench",
                    "--suite",
                    "smoke",
                    "--out",
                    str(tmp_path),
                    "--workers",
                    "2",
                    "--compare",
                    str(baseline),
                    "--fail-threshold",
                    "0.99",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "no regressions" in output

        # ... and an impossible baseline fails with a non-zero exit code —
        # written over BENCH_smoke.json itself, so this also pins that the
        # baseline is read *before* run_suite overwrites the file (reading
        # afterwards would compare the run against itself and pass).
        inflated = json.loads(baseline.read_text())
        for record in inflated["results"]:
            record["throughput"] = record["throughput"] * 1e9
        baseline.write_text(json.dumps(inflated))
        assert (
            main(
                [
                    "bench",
                    "--suite",
                    "smoke",
                    "--out",
                    str(tmp_path),
                    "--workers",
                    "2",
                    "--compare",
                    str(baseline),
                    "--fail-threshold",
                    "0.5",
                ]
            )
            == 1
        )
        output = capsys.readouterr().out
        assert "REGRESSION" in output

    def test_grid2d_runs(self, capsys):
        assert (
            main(
                [
                    "grid2d",
                    "--users",
                    "4000",
                    "--side",
                    "8",
                    "--shards",
                    "2",
                    "--batches",
                    "4",
                    "--rectangles",
                    "32",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "2-D grid" in output and "one-shot" in output and "sharded" in output

    def test_grid2d_checkpoint_recovery(self, capsys, tmp_path):
        path = tmp_path / "grid2d.snap"
        args = [
            "grid2d",
            "--users",
            "4000",
            "--side",
            "8",
            "--shards",
            "2",
            "--batches",
            "4",
            "--rectangles",
            "16",
            "--checkpoint",
            str(path),
        ]
        assert main(args) == 0
        output = capsys.readouterr().out
        assert "Crash recovery" in output
        assert "bit-for-bit: True" in output
        assert path.exists()
