"""Unit tests for the OLH frequency oracle and its hash family."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.frequency_oracles.local_hashing import OptimalLocalHashing, UniversalHashFamily


class TestUniversalHashFamily:
    def test_hash_values_in_range(self, rng):
        family = UniversalHashFamily(domain_size=1000, hash_range=8)
        params = family.sample(rng)
        values = family.evaluate(params, np.arange(1000))
        assert values.min() >= 0 and values.max() < 8

    def test_collision_probability_close_to_uniform(self, rng):
        family = UniversalHashFamily(domain_size=64, hash_range=4)
        collisions = 0
        trials = 3000
        for _ in range(trials):
            params = family.sample(rng)
            values = family.evaluate(params, np.array([3, 47]))
            collisions += int(values[0] == values[1])
        assert collisions / trials == pytest.approx(0.25, abs=0.04)

    def test_pairwise_evaluation_matches_single(self, rng):
        family = UniversalHashFamily(domain_size=100, hash_range=6)
        batch = family.sample_batch(50, rng)
        items = rng.integers(0, 100, size=50)
        pairwise = family.evaluate_pairwise(batch["a"], batch["b"], items)
        singles = np.array(
            [
                family.evaluate({"a": int(a), "b": int(b)}, np.array([item]))[0]
                for a, b, item in zip(batch["a"], batch["b"], items)
            ]
        )
        np.testing.assert_array_equal(pairwise, singles)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            UniversalHashFamily(domain_size=10, hash_range=1)


class TestOptimalLocalHashing:
    def test_default_hash_range(self):
        oracle = OptimalLocalHashing(epsilon=np.log(3.0), domain_size=64)
        assert oracle.hash_range == 4  # round(e^eps) + 1 = 3 + 1

    def test_custom_hash_range(self):
        oracle = OptimalLocalHashing(epsilon=1.0, domain_size=64, hash_range=8)
        assert oracle.hash_range == 8
        assert oracle.q == pytest.approx(1.0 / 8.0)

    def test_encode_report_fields(self, rng):
        oracle = OptimalLocalHashing(epsilon=1.0, domain_size=32)
        report = oracle.encode(5, rng)
        assert set(report) == {"a", "b", "value"}
        assert 0 <= report["value"] < oracle.hash_range

    def test_full_protocol_unbiasedness(self, rng):
        domain = 16
        oracle = OptimalLocalHashing(epsilon=1.5, domain_size=domain)
        true = np.zeros(domain)
        true[2], true[9] = 0.6, 0.4
        items = np.repeat(np.arange(domain), (true * 5000).astype(int))
        estimates = np.mean(
            [oracle.estimate_from_users(items, rng) for _ in range(8)], axis=0
        )
        assert estimates[2] == pytest.approx(0.6, abs=0.08)
        assert estimates[9] == pytest.approx(0.4, abs=0.08)

    def test_simulate_aggregate_close_to_truth(self, rng):
        domain = 64
        oracle = OptimalLocalHashing(epsilon=1.1, domain_size=domain)
        counts = rng.multinomial(200_000, np.full(domain, 1 / domain))
        estimates = oracle.simulate_aggregate(counts, rng)
        np.testing.assert_allclose(estimates, counts / counts.sum(), atol=0.02)

    def test_theoretical_variance_matches_oue(self):
        # At the optimal g, OLH and OUE share the same variance formula.
        from repro.frequency_oracles.unary import OptimizedUnaryEncoding

        olh = OptimalLocalHashing(epsilon=1.1, domain_size=100)
        oue = OptimizedUnaryEncoding(epsilon=1.1, domain_size=100)
        assert olh.theoretical_variance(5000) == pytest.approx(
            oue.theoretical_variance(5000), rel=1e-9
        )

    def test_empty_population(self, rng):
        oracle = OptimalLocalHashing(epsilon=1.0, domain_size=8)
        np.testing.assert_array_equal(
            oracle.simulate_aggregate(np.zeros(8, dtype=int), rng), np.zeros(8)
        )


class TestBlockedDecode:
    """The blocked O(N * D) decode is invariant to the block-size knob."""

    def test_estimates_invariant_to_block_size(self, monkeypatch):
        from repro.frequency_oracles import local_hashing as olh_module

        oracle = OptimalLocalHashing(epsilon=1.0, domain_size=40)
        values = np.random.default_rng(11).integers(0, 40, size=333)
        reports = oracle.encode_batch(values, np.random.default_rng(12))
        reference = oracle.accumulator().add(reports).estimate()
        # Targets chosen to force block sizes of 1, a few users, and
        # everything at once (including block boundaries mid-batch).
        for target_bytes in (1, 40 * 9 * 7, 1 << 30):
            monkeypatch.setattr(olh_module, "OLH_DECODE_TARGET_BYTES", target_bytes)
            estimates = oracle.accumulator().add(reports).estimate()
            np.testing.assert_array_equal(estimates, reference)

    def test_decode_target_is_a_module_knob(self):
        from repro.frequency_oracles import local_hashing as olh_module

        assert isinstance(olh_module.OLH_DECODE_TARGET_BYTES, int)
        assert olh_module.OLH_DECODE_TARGET_BYTES > 0
