"""Generic experiment runner.

The paper's experiments all have the same shape: fix a dataset, fit one or
more mechanisms several times (5 repetitions), answer a query workload after
every fit and report the mean (and standard deviation) of the mean squared
error.  :func:`evaluate_mechanism` runs that inner loop for one mechanism;
:func:`run_epsilon_grid` sweeps the ``mechanism x epsilon`` grid that Tables
5 and 6 are made of.

Both entry points take a ``workers`` knob.  With ``workers > 1`` the
independent ``(epsilon, spec, repetition)`` cells fan out across a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Every repetition's
generator is spawned *in the parent*, in exactly the order the serial path
spawns them, and shipped to the worker — so the parallel sweep is
bit-identical to the serial one for any seed and worker count (the tests
verify this).

The shared inputs of a sweep — the counts vector, the workload query matrix
and its exact answers — travel to workers over a ``transport``: ``"shm"``
packs them into one :mod:`multiprocessing.shared_memory` segment that
workers attach to by name (the pool initializer receives only a tiny
descriptor), ``"pickle"`` ships them through the pool initializer the
classic way, and ``"auto"`` (the default) prefers shared memory and falls
back to pickle when it is unavailable or segment creation fails.  The
transported bytes are identical either way, so results never depend on the
transport.  The parent owns the segment and unlinks it in a ``finally``, so
even a hard worker crash (``BrokenProcessPool``) leaks nothing.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import mean_squared_error
from repro.core.factory import mechanism_from_spec
from repro.data.workloads import RangeWorkload
from repro.exceptions import ConfigurationError
from repro.experiments.transport import SharedArrayPack, resolve_transport
from repro.privacy.randomness import RandomState, spawn_generators

__all__ = ["CellResult", "evaluate_mechanism", "run_epsilon_grid"]


@dataclass(frozen=True)
class CellResult:
    """One cell of a results table: a mechanism at one parameter setting."""

    mechanism: str
    epsilon: float
    domain_size: int
    n_users: int
    workload: str
    mse_mean: float
    mse_std: float
    repetitions: int

    @property
    def scaled_mse(self) -> float:
        """MSE multiplied by 1000, the presentation unit of Tables 5 and 6."""
        return self.mse_mean * 1000.0

    def as_dict(self) -> Dict[str, object]:
        """Plain dictionary form (used by the reporting helpers)."""
        return {
            "mechanism": self.mechanism,
            "epsilon": self.epsilon,
            "domain_size": self.domain_size,
            "n_users": self.n_users,
            "workload": self.workload,
            "mse_mean": self.mse_mean,
            "mse_std": self.mse_std,
            "repetitions": self.repetitions,
        }


def _repetition_mse(
    spec: str,
    counts: np.ndarray,
    workload: RangeWorkload,
    epsilon: float,
    rng: np.random.Generator,
    mode: str,
    mechanism_kwargs: Optional[dict],
    true_answers: np.ndarray,
) -> float:
    """One repetition of one cell: fit, answer, score.

    Module-level (rather than a closure) so it pickles into worker
    processes; the generator argument carries the exact child stream the
    serial path would have used.
    """
    mechanism = mechanism_from_spec(
        spec,
        epsilon=epsilon,
        domain_size=int(counts.shape[0]),
        **(mechanism_kwargs or {}),
    )
    mechanism.fit_counts(counts, random_state=rng, mode=mode)
    estimates = mechanism.answer_workload(workload)
    return mean_squared_error(true_answers, estimates)


#: Per-worker (counts, workload, true_answers) shipped once via the pool
#: initializer rather than pickled into every repetition task.
_WORKER_SHARED: Optional[tuple] = None

#: The worker's attached shared-memory pack.  Kept alive for the process
#: lifetime because ``_WORKER_SHARED`` holds views into its buffer.
_WORKER_PACK: Optional[SharedArrayPack] = None


def _init_worker(shared: tuple) -> None:
    global _WORKER_SHARED
    _WORKER_SHARED = shared


def _init_worker_shm(descriptor: dict, domain_size: int, workload_name: str) -> None:
    """Rebuild ``_WORKER_SHARED`` from views into the parent's segment."""
    global _WORKER_SHARED, _WORKER_PACK
    _WORKER_PACK = SharedArrayPack.attach(descriptor)
    arrays = _WORKER_PACK.arrays()
    # RangeWorkload validation copies the query matrix out of the segment
    # (astype); counts and true_answers stay zero-copy read-only views.
    workload = RangeWorkload(
        domain_size=domain_size, queries=arrays["queries"], name=workload_name
    )
    _WORKER_SHARED = (arrays["counts"], workload, arrays["true_answers"])


def _transport_spec(
    transport: str,
    counts: np.ndarray,
    workload: RangeWorkload,
    true_answers: np.ndarray,
) -> Tuple[Callable, tuple, Optional[SharedArrayPack]]:
    """Pool ``(initializer, initargs, owned_pack)`` for the chosen transport.

    A returned pack is owned by the caller, which must ``close()`` and
    ``unlink()`` it once the pool is done (in a ``finally``, so a crashed
    worker cannot leak the segment).  Creation failures fall back to the
    pickle transport rather than failing the sweep.
    """
    if resolve_transport(transport) == "shm":
        try:
            pack = SharedArrayPack.create(
                {
                    "counts": counts,
                    "queries": workload.queries,
                    "true_answers": true_answers,
                }
            )
        except OSError:
            pack = None
        if pack is not None:
            initargs = (pack.descriptor, workload.domain_size, workload.name)
            return _init_worker_shm, initargs, pack
    return _init_worker, ((counts, workload, true_answers),), None


def _chunk_mses(chunk: Sequence[tuple]) -> List[List[float]]:
    """Run a *chunk* of repetitions in one worker round trip.

    ``chunk`` rows are ``(spec, epsilon, rep_rngs, mode, mechanism_kwargs)``
    — one row per grid cell, carrying every repetition generator of that
    cell.  Chunking is what makes the pool pay off at small scales: a
    smoke-sized repetition takes ~1 ms, so submitting it as its own task
    drowns the compute in pickle/IPC round trips (the
    ``parallel_grid_speedup < 1`` regression).  One submission per worker
    amortises that overhead over the whole chunk while leaving results —
    and random streams, which were spawned in the parent in serial order —
    bit-identical to the serial sweep.
    """
    counts, workload, true_answers = _WORKER_SHARED
    return [
        [
            _repetition_mse(
                spec, counts, workload, epsilon, rng, mode, kwargs, true_answers
            )
            for rng in rep_rngs
        ]
        for spec, epsilon, rep_rngs, mode, kwargs in chunk
    ]


def _partition(rows: Sequence, n_chunks: int) -> List[List]:
    """Split ``rows`` into at most ``n_chunks`` contiguous, near-equal
    chunks (contiguity keeps result order trivially reconstructible)."""
    n_chunks = max(1, min(int(n_chunks), len(rows)))
    bounds = np.linspace(0, len(rows), n_chunks + 1).astype(int)
    return [list(rows[bounds[i] : bounds[i + 1]]) for i in range(n_chunks)]


def _summarise(
    spec: str,
    counts: np.ndarray,
    workload: RangeWorkload,
    epsilon: float,
    errors: Sequence[float],
) -> CellResult:
    errors_array = np.asarray(errors)
    return CellResult(
        mechanism=spec,
        epsilon=float(epsilon),
        domain_size=int(counts.shape[0]),
        n_users=int(counts.sum()),
        workload=workload.name,
        mse_mean=float(errors_array.mean()),
        mse_std=float(errors_array.std()),
        repetitions=len(errors),
    )


def evaluate_mechanism(
    spec: str,
    counts: np.ndarray,
    workload: RangeWorkload,
    epsilon: float,
    repetitions: int = 3,
    random_state: RandomState = None,
    mode: str = "aggregate",
    mechanism_kwargs: Optional[dict] = None,
    workers: int = 1,
    transport: str = "auto",
) -> CellResult:
    """Fit one mechanism ``repetitions`` times and summarise its workload MSE.

    Parameters
    ----------
    spec:
        Mechanism specification string (see
        :func:`repro.core.factory.mechanism_from_spec`).
    counts:
        Exact per-item counts of the population (the fixed dataset).
    workload:
        The queries to evaluate after every fit.
    epsilon, repetitions, random_state, mode:
        Experiment knobs; every repetition gets an independent random stream
        derived from ``random_state``.
    workers:
        Process count for the repetition fan-out.  ``1`` (the default) runs
        serially in-process; any value produces bit-identical results.
    transport:
        How the shared inputs reach workers when ``workers > 1``:
        ``"shm"`` (shared memory), ``"pickle"``, or ``"auto"`` (shared
        memory with pickle fallback).  Results are transport-independent.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions!r}")
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
    resolve_transport(transport)  # validate eagerly, even on the serial path
    true_answers = workload.true_answers(counts)
    generators = spawn_generators(random_state, repetitions)
    kwargs = dict(mechanism_kwargs or {})
    if workers == 1:
        errors = [
            _repetition_mse(
                spec, counts, workload, epsilon, rng, mode, kwargs, true_answers
            )
            for rng in generators
        ]
    else:
        # One submission per worker, each carrying a slice of the
        # repetition generators — not one task per repetition, whose
        # pickle/IPC overhead would dominate small cells.
        chunks = _partition(
            [(spec, epsilon, [rng], mode, kwargs) for rng in generators],
            workers,
        )
        initializer, initargs, pack = _transport_spec(
            transport, counts, workload, true_answers
        )
        try:
            with ProcessPoolExecutor(
                max_workers=len(chunks),
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                futures = [pool.submit(_chunk_mses, chunk) for chunk in chunks]
                errors = [
                    error
                    for future in futures
                    for cell_errors in future.result()
                    for error in cell_errors
                ]
        finally:
            if pack is not None:
                pack.close()
                pack.unlink()
    return _summarise(spec, counts, workload, epsilon, errors)


def run_epsilon_grid(
    specs: Sequence[str],
    counts: np.ndarray,
    workload: RangeWorkload,
    epsilons: Sequence[float],
    repetitions: int = 3,
    random_state: RandomState = None,
    mode: str = "aggregate",
    workers: int = 1,
    transport: str = "auto",
) -> List[CellResult]:
    """Evaluate every mechanism at every epsilon (the Table 5/6 grid).

    Results come back in row-major order (epsilon outer, mechanism inner),
    matching the layout of the paper's tables.

    ``specs`` and ``epsilons`` may be arbitrary iterables (including
    generators): both are materialised exactly once at entry, so a generator
    is never exhausted by the seed-count pass before the sweep loops run.

    With ``workers > 1`` every ``(epsilon, spec, repetition)`` cell is
    dispatched to a process pool.  Per-cell seed generators are spawned
    first (epsilon outer, mechanism inner — the serial order) and each
    cell's repetition streams are derived from its seed exactly as the
    serial path derives them, so the grid is bit-identical to ``workers=1``.
    ``transport`` selects how the shared inputs reach those workers (see
    :func:`evaluate_mechanism`); it never affects the results.
    """
    specs = list(specs)
    epsilons = list(epsilons)
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions!r}")
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
    resolve_transport(transport)  # validate eagerly, even on the serial path
    counts = np.asarray(counts, dtype=np.int64)
    seeds = spawn_generators(random_state, len(epsilons) * len(specs))
    pairs = [(epsilon, spec) for epsilon in epsilons for spec in specs]
    cells = [(epsilon, spec, seed) for (epsilon, spec), seed in zip(pairs, seeds)]
    if workers == 1:
        return [
            evaluate_mechanism(
                spec,
                counts,
                workload,
                epsilon=epsilon,
                repetitions=repetitions,
                random_state=seed,
                mode=mode,
            )
            for epsilon, spec, seed in cells
        ]

    true_answers = workload.true_answers(counts)
    # Spawned in the parent, in serial order, so each repetition receives
    # exactly the stream the serial path would have used; cells are then
    # packed into one contiguous chunk per worker, so the pool pays one
    # pickle/IPC round trip per worker instead of one per repetition.
    rows = [
        (spec, epsilon, spawn_generators(seed, repetitions), mode, None)
        for epsilon, spec, seed in cells
    ]
    chunks = _partition(rows, workers)
    results: List[CellResult] = []
    initializer, initargs, pack = _transport_spec(
        transport, counts, workload, true_answers
    )
    try:
        with ProcessPoolExecutor(
            max_workers=len(chunks),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            futures = [pool.submit(_chunk_mses, chunk) for chunk in chunks]
            cell_errors = [errors for future in futures for errors in future.result()]
    finally:
        if pack is not None:
            pack.close()
            pack.unlink()
    for (epsilon, spec, _seed), errors in zip(cells, cell_errors):
        results.append(_summarise(spec, counts, workload, epsilon, errors))
    return results
