"""Private salary statistics: CDF, quantiles and threshold queries.

Scenario (the paper's motivating use case of order statistics): an employer
association wants the distribution of salaries across member companies'
employees — medians, quartiles, the fraction of employees under given
thresholds — but individual salaries are sensitive.  Salaries are bucketed
into $500 bins up to $250k (a 512-bin domain), each employee reports once
under local differential privacy, and all the statistics below are derived
from the same set of reports.

Run with:  python examples/salary_quantiles.py
"""

from __future__ import annotations

import numpy as np

from repro import LdpRangeQuerySession
from repro.analysis.metrics import quantile_errors
from repro.core.quantiles import DECILES

DOMAIN_SIZE = 512           # salary buckets of $500 up to $256k
BUCKET_DOLLARS = 500
N_EMPLOYEES = 300_000
EPSILON = 1.0


def synthetic_salaries(random_state: int = 11) -> np.ndarray:
    """A right-skewed salary distribution (log-normal-ish mixture)."""
    rng = np.random.default_rng(random_state)
    body = rng.lognormal(mean=np.log(90), sigma=0.45, size=int(N_EMPLOYEES * 0.97))
    tail = rng.lognormal(mean=np.log(260), sigma=0.35, size=N_EMPLOYEES - body.shape[0])
    buckets = np.clip(np.concatenate([body, tail]).astype(int), 0, DOMAIN_SIZE - 1)
    return buckets


def dollars(bucket: int) -> str:
    return f"${bucket * BUCKET_DOLLARS:,}"


def main() -> None:
    salaries = synthetic_salaries()
    counts = np.bincount(salaries, minlength=DOMAIN_SIZE)

    session = LdpRangeQuerySession(
        epsilon=EPSILON, domain_size=DOMAIN_SIZE, mechanism="haar"
    )
    session.collect(salaries, random_state=3)
    print("collected:", session.summary())

    # ------------------------------------------------------------------
    # Threshold (prefix) queries: what fraction earns below $X?
    # ------------------------------------------------------------------
    print("\nfraction of employees earning below a threshold")
    for threshold_bucket in (80, 120, 200, 320):
        estimate = session.mechanism.answer_prefix(threshold_bucket - 1)
        truth = counts[:threshold_bucket].sum() / counts.sum()
        print(f"  < {dollars(threshold_bucket):>9}: estimate={estimate:.4f}  truth={truth:.4f}")

    # ------------------------------------------------------------------
    # Quantiles: deciles of the salary distribution.
    # ------------------------------------------------------------------
    estimated_deciles = session.quantiles(DECILES)
    errors = quantile_errors(counts, DECILES, estimated_deciles)
    print("\nestimated salary deciles")
    for phi, bucket, q_err in zip(DECILES, estimated_deciles, errors["quantile_error"]):
        print(f"  {int(phi * 100):2d}th percentile ~ {dollars(bucket):>9}  "
              f"(quantile error {q_err:.4f})")

    median_bucket = session.median()
    print(f"\nestimated median salary: {dollars(median_bucket)}")
    print(f"average quantile error over the deciles: {errors['quantile_error'].mean():.4f}")


if __name__ == "__main__":
    main()
