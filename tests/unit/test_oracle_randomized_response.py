"""Unit tests for binary and generalized randomized response."""

import numpy as np
import pytest

from repro.frequency_oracles.randomized_response import (
    BinaryRandomizedResponse,
    GeneralizedRandomizedResponse,
)


class TestBinaryRandomizedResponse:
    def test_keep_probability(self):
        rr = BinaryRandomizedResponse(np.log(3.0))
        assert rr.keep_probability == pytest.approx(0.75)
        assert rr.unbiasing_factor == pytest.approx(0.5)

    def test_perturb_values_stay_binary(self, rng):
        rr = BinaryRandomizedResponse(1.0)
        bits = rng.choice([-1, 1], size=1000)
        perturbed = rr.perturb(bits, rng)
        assert set(np.unique(perturbed)) <= {-1, 1}

    def test_perturb_flip_rate(self, rng):
        rr = BinaryRandomizedResponse(np.log(3.0))
        bits = np.ones(20_000, dtype=int)
        perturbed = rr.perturb(bits, rng)
        keep_rate = (perturbed == 1).mean()
        assert keep_rate == pytest.approx(0.75, abs=0.02)

    def test_unbias_is_unbiased(self, rng):
        rr = BinaryRandomizedResponse(1.2)
        bits = np.ones(50_000, dtype=int)
        estimates = rr.unbias(rr.perturb(bits, rng))
        assert estimates.mean() == pytest.approx(1.0, abs=0.05)

    def test_perturb_rejects_non_binary(self, rng):
        rr = BinaryRandomizedResponse(1.0)
        with pytest.raises(ValueError):
            rr.perturb(np.array([0, 1]), rng)


class TestGeneralizedRandomizedResponse:
    def test_probabilities(self):
        oracle = GeneralizedRandomizedResponse(epsilon=1.0, domain_size=8)
        assert oracle.p / oracle.q == pytest.approx(np.exp(1.0))
        assert oracle.p + 7 * oracle.q == pytest.approx(1.0)

    def test_requires_two_items(self):
        with pytest.raises(ValueError):
            GeneralizedRandomizedResponse(epsilon=1.0, domain_size=1)

    def test_encode_single(self, rng):
        oracle = GeneralizedRandomizedResponse(epsilon=1.0, domain_size=5)
        report = oracle.encode(2, rng)
        assert 0 <= report["value"] < 5

    def test_encode_batch_keep_rate(self, rng):
        oracle = GeneralizedRandomizedResponse(epsilon=np.log(9.0), domain_size=4)
        reports = oracle.encode_batch(np.zeros(20_000, dtype=int), rng)
        keep_rate = (reports.payload["values"] == 0).mean()
        assert keep_rate == pytest.approx(oracle.p, abs=0.02)

    def test_aggregate_unbiased(self, rng):
        domain = 5
        oracle = GeneralizedRandomizedResponse(epsilon=2.0, domain_size=domain)
        true = np.array([0.4, 0.3, 0.2, 0.1, 0.0])
        items = np.repeat(np.arange(domain), (true * 20_000).astype(int))
        estimates = np.mean(
            [oracle.estimate_from_users(items, rng) for _ in range(10)], axis=0
        )
        np.testing.assert_allclose(estimates, true, atol=0.03)

    def test_simulate_aggregate_close_to_truth(self, rng):
        domain = 10
        oracle = GeneralizedRandomizedResponse(epsilon=2.0, domain_size=domain)
        counts = rng.multinomial(50_000, np.full(domain, 0.1))
        estimates = oracle.simulate_aggregate(counts, rng)
        np.testing.assert_allclose(estimates, counts / counts.sum(), atol=0.05)

    def test_variance_grows_with_domain(self):
        small = GeneralizedRandomizedResponse(epsilon=1.0, domain_size=4)
        large = GeneralizedRandomizedResponse(epsilon=1.0, domain_size=1024)
        assert large.theoretical_variance(1000) > small.theoretical_variance(1000)

    def test_empty_population(self, rng):
        oracle = GeneralizedRandomizedResponse(epsilon=1.0, domain_size=4)
        np.testing.assert_array_equal(
            oracle.simulate_aggregate(np.zeros(4, dtype=int), rng), np.zeros(4)
        )
