"""Theory check — measured error vs the closed-form variance bounds.

Fact 1 (flat), equation (1)/(2) (hierarchical, without/with consistency) and
equation (3) (Haar) give upper bounds on the variance of a range query.
Because every estimator is unbiased, the measured mean squared error over a
fixed-length workload estimates exactly that variance, so each bound can be
checked directly.  The measured values should sit below (but within an order
of magnitude of) their bounds — much smaller would indicate the bound is
vacuous, larger would indicate a bug.
"""

from __future__ import annotations

import pytest

from repro.analysis.variance import (
    flat_range_variance,
    haar_range_variance,
    hh_consistent_range_variance,
    hh_range_variance,
)
from repro.data.workloads import fixed_length_queries
from repro.experiments.reporting import format_table
from repro.experiments.runner import evaluate_mechanism

DOMAIN = 1 << 10
LENGTH = 1 << 7
EPSILON = 1.1


@pytest.mark.benchmark(group="theory")
def test_measured_error_respects_theoretical_bounds(run_once, bench_config):
    counts = bench_config.data.counts(DOMAIN, bench_config.n_users)
    workload = fixed_length_queries(DOMAIN, LENGTH).subset(
        bench_config.max_queries_per_workload, random_state=0
    )
    n_users = int(counts.sum())

    cases = {
        "flat_oue": flat_range_variance(EPSILON, n_users, LENGTH, DOMAIN),
        "hh_4": hh_range_variance(EPSILON, n_users, LENGTH, DOMAIN, 4),
        "hhc_8": hh_consistent_range_variance(EPSILON, n_users, LENGTH, DOMAIN, 8),
        "haar": haar_range_variance(EPSILON, n_users, DOMAIN),
    }

    def measure():
        return {
            spec: evaluate_mechanism(
                spec,
                counts,
                workload,
                epsilon=EPSILON,
                repetitions=max(3, bench_config.repetitions),
                random_state=bench_config.seed,
            ).mse_mean
            for spec in cases
        }

    measured = run_once(measure)

    rows = [
        [spec, measured[spec] * 1000, bound * 1000, measured[spec] / bound]
        for spec, bound in cases.items()
    ]
    print(f"\n=== Theory check | D = 2^10, r = 2^7, eps = 1.1 | MSE x 1000 vs bound ===")
    print(format_table(["method", "measured", "bound", "measured/bound"], rows))

    for spec, bound in cases.items():
        assert measured[spec] < 1.5 * bound, f"{spec} exceeds its theoretical bound"
        assert measured[spec] > bound / 100.0, f"{spec} bound looks vacuous"
