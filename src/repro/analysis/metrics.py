"""Empirical error metrics used throughout the experiments.

The paper reports the **mean squared error** between true and reconstructed
normalized range-query answers (scaled by 1000 in Tables 5/6), and for the
quantile experiments both the **value error** (distance in the domain
between the true and returned quantile item) and the **quantile error**
(distance in probability mass between the target quantile and the quantile
actually attained by the returned item).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.exceptions import InvalidQueryError

__all__ = [
    "mean_squared_error",
    "mean_absolute_error",
    "max_absolute_error",
    "quantile_errors",
    "summarize_errors",
    "ErrorSummary",
]


def _check_pair(true_values: np.ndarray, estimates: np.ndarray) -> tuple:
    true_values = np.asarray(true_values, dtype=np.float64)
    estimates = np.asarray(estimates, dtype=np.float64)
    if true_values.shape != estimates.shape:
        raise InvalidQueryError(
            f"shape mismatch: true {true_values.shape} vs estimates {estimates.shape}"
        )
    if true_values.size == 0:
        raise InvalidQueryError("cannot compute an error over zero queries")
    return true_values, estimates


def mean_squared_error(true_values: np.ndarray, estimates: np.ndarray) -> float:
    """Mean of ``(estimate - truth)^2`` over a query workload."""
    true_values, estimates = _check_pair(true_values, estimates)
    return float(np.mean((estimates - true_values) ** 2))


def mean_absolute_error(true_values: np.ndarray, estimates: np.ndarray) -> float:
    """Mean of ``|estimate - truth|`` over a query workload."""
    true_values, estimates = _check_pair(true_values, estimates)
    return float(np.mean(np.abs(estimates - true_values)))


def max_absolute_error(true_values: np.ndarray, estimates: np.ndarray) -> float:
    """Worst-case ``|estimate - truth|`` over a query workload."""
    true_values, estimates = _check_pair(true_values, estimates)
    return float(np.max(np.abs(estimates - true_values)))


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics of the error of one mechanism on one workload."""

    mse: float
    mae: float
    max_error: float
    n_queries: int

    def scaled_mse(self, factor: float = 1000.0) -> float:
        """MSE scaled for presentation (the paper multiplies by 1000)."""
        return self.mse * factor


def summarize_errors(true_values: np.ndarray, estimates: np.ndarray) -> ErrorSummary:
    """Compute the full :class:`ErrorSummary` for a workload evaluation."""
    true_values, estimates = _check_pair(true_values, estimates)
    return ErrorSummary(
        mse=mean_squared_error(true_values, estimates),
        mae=mean_absolute_error(true_values, estimates),
        max_error=max_absolute_error(true_values, estimates),
        n_queries=int(true_values.size),
    )


def quantile_errors(
    counts: np.ndarray,
    targets: Sequence[float],
    returned_items: Sequence[int],
) -> Dict[str, np.ndarray]:
    """Value error and quantile error of estimated quantiles (Section 5.5).

    Parameters
    ----------
    counts:
        Exact per-item counts of the population (ground truth).
    targets:
        The requested quantiles ``phi`` (e.g. the deciles ``0.1 .. 0.9``).
    returned_items:
        The item each mechanism returned for the corresponding target.

    Returns
    -------
    dict with keys
        ``"value_error"`` — ``|returned_item - true_quantile_item|`` in item
        units, and ``"quantile_error"`` — ``|phi - phi'|`` where ``phi'`` is
        the CDF value actually attained by the returned item.
    """
    counts = np.asarray(counts, dtype=np.float64)
    targets = np.asarray(list(targets), dtype=np.float64)
    returned = np.asarray(list(returned_items), dtype=np.int64)
    if targets.shape != returned.shape:
        raise InvalidQueryError("targets and returned_items must align")
    if np.any((targets < 0) | (targets > 1)):
        raise InvalidQueryError("quantile targets must be in [0, 1]")
    if returned.size and (returned.min() < 0 or returned.max() >= counts.shape[0]):
        raise InvalidQueryError("returned items outside the domain")
    total = counts.sum()
    if total <= 0:
        raise InvalidQueryError("counts must describe a non-empty population")
    cdf = np.cumsum(counts) / total
    true_items = np.searchsorted(cdf, targets, side="left")
    true_items = np.clip(true_items, 0, counts.shape[0] - 1)
    value_error = np.abs(returned - true_items)
    quantile_error = np.abs(cdf[returned] - targets)
    return {"value_error": value_error, "quantile_error": quantile_error}
