"""Hierarchy substrate for the hierarchical histogram mechanisms.

* :mod:`repro.hierarchy.tree` — a complete B-ary tree laid over the item
  domain (Section 4.3 of the paper): level layouts, node ranges and the
  leaf-to-root path of an individual item.
* :mod:`repro.hierarchy.decomposition` — translation of a range query into
  tree nodes via the B-adic decomposition, returned as per-level contiguous
  runs so that many queries can be evaluated with per-level prefix sums.
* :mod:`repro.hierarchy.consistency` — the constrained-inference
  post-processing of Section 4.5 (weighted averaging followed by mean
  consistency), plus an exact least-squares reference implementation used to
  validate it.
"""

from repro.hierarchy.consistency import (
    enforce_consistency,
    least_squares_consistency,
    subtree_counts,
)
from repro.hierarchy.decomposition import NodeRun, decompose_to_runs
from repro.hierarchy.tree import DomainTree

__all__ = [
    "DomainTree",
    "NodeRun",
    "decompose_to_runs",
    "enforce_consistency",
    "least_squares_consistency",
    "subtree_counts",
]
