"""Numba ``@njit`` implementations of the hot kernels (the compiled backend).

Importing this module requires numba (the ``[compiled]`` extra); the
registry imports it lazily and treats any failure as "backend unavailable",
so the core install never grows a hard dependency.  Every kernel here is
bit-identical to its numpy twin in :mod:`repro.kernels.numpy_backend` —
all three are exact integer computations, so "identical" means equal
arrays, not close ones, and the property suite enforces it.

Compilation notes:

* ``cache=True`` persists the compiled artifacts next to the module, so
  the one-time jit cost is paid once per environment, not once per process;
* ``parallel=True`` only where iterations are independent (per byte-column
  for the unary sums, per domain item for the OLH decode, per query for the
  run enumeration) — each ``prange`` index owns disjoint output slots, so
  there are no reduction races;
* block-size arguments are accepted (the kernel signature is shared with
  the numpy twin) but ignored: the compiled loops never materialise the
  blocked intermediates the numpy path needs them for.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

from repro.kernels.registry import register_kernel

__all__ = ["unary_column_sums", "olh_decode", "badic_axis_runs"]


@njit(cache=True, parallel=True)
def _unary_column_sums(packed, n_bits):  # pragma: no cover - jitted
    n_rows, n_bytes = packed.shape
    totals = np.zeros(n_bits, dtype=np.int64)
    for byte_col in prange(n_bytes):
        # Histogram the byte column, then expand each of the 256 byte
        # values into its 8 bit columns: one add per *byte* instead of one
        # per bit, which is where the win over unpack-and-reduce comes from.
        histogram = np.zeros(256, dtype=np.int64)
        for row in range(n_rows):
            histogram[packed[row, byte_col]] += 1
        base = byte_col * 8
        width = min(8, n_bits - base)
        for value in range(256):
            count = histogram[value]
            if count > 0:
                for bit in range(width):
                    # np.packbits packs MSB-first: bit 0 is the high bit.
                    if (value >> (7 - bit)) & 1:
                        totals[base + bit] += count
    return totals


@register_kernel("numba", "unary_column_sums")
def unary_column_sums(packed, n_bits, block_target_bytes):
    return _unary_column_sums(np.ascontiguousarray(packed), np.int64(n_bits))


@njit(cache=True, parallel=True)
def _olh_decode(a, b, values, domain_size, hash_range, prime):  # pragma: no cover
    n_users = a.shape[0]
    support = np.zeros(domain_size, dtype=np.int64)
    for item in prange(domain_size):
        count = 0
        for user in range(n_users):
            # Same int64 arithmetic as the numpy twin: a < prime < 2^31 and
            # item < domain_size < prime keep the product inside int64.
            if ((a[user] * item + b[user]) % prime) % hash_range == values[user]:
                count += 1
        support[item] = count
    return support


@register_kernel("numba", "olh_decode")
def olh_decode(a, b, values, domain_size, hash_range, prime, block_target_bytes):
    return _olh_decode(
        np.ascontiguousarray(a),
        np.ascontiguousarray(b),
        np.ascontiguousarray(values),
        np.int64(domain_size),
        np.int64(hash_range),
        np.int64(prime),
    )


@njit(cache=True, parallel=True)
def _badic_axis_runs(starts, ends, branching, height):  # pragma: no cover - jitted
    n_queries = starts.shape[0]
    runs = np.empty((height, 4, n_queries), dtype=np.int64)
    survivors = np.zeros(n_queries, dtype=np.bool_)
    for query in prange(n_queries):
        lo = starts[query]
        hi = ends[query] + 1
        block = np.int64(1)
        for index in range(height):
            coarse = block * branching
            left_end = ((lo + coarse - 1) // coarse) * coarse
            if left_end > hi:
                left_end = hi
            right_start = (hi // coarse) * coarse
            if right_start < left_end:
                right_start = left_end
            runs[index, 0, query] = lo // block
            runs[index, 1, query] = left_end // block
            runs[index, 2, query] = right_start // block
            runs[index, 3, query] = hi // block
            lo = left_end
            hi = right_start
            block = coarse
        survivors[query] = lo < hi
    return runs, survivors


@register_kernel("numba", "badic_axis_runs")
def badic_axis_runs(starts, ends, branching, height):
    return _badic_axis_runs(
        np.ascontiguousarray(starts, dtype=np.int64),
        np.ascontiguousarray(ends, dtype=np.int64),
        np.int64(branching),
        np.int64(height),
    )
