"""Command-line interface for regenerating the paper's experiments.

``python -m repro <experiment> [options]`` runs one of the table/figure
drivers at a configurable scale and prints the resulting table in the
paper's layout.  It is a thin wrapper around :mod:`repro.experiments.figures`
for people who want the numbers without going through pytest.

Examples
--------
::

    python -m repro table5 --domain 256 --users 131072
    python -m repro fig4   --domain 4096 --repetitions 3
    python -m repro fig9   --domain 4096 --centers 0.1 0.5
    python -m repro table7 --domains 256 1024
    python -m repro ablation-consistency --domain 1024
    python -m repro streaming --domain 1024 --shards 1 4 16 --batches 32
    python -m repro streaming --checkpoint /tmp/collector.snap
    python -m repro serve-demo --producers 1 2 4 8 --router least-loaded
    python -m repro table5 --domain 1024 --workers 4
    python -m repro bench --suite smoke
    python -m repro bench --suite smoke --compare BENCH_smoke.json
    python -m repro bench --suite smoke --backend numba --transport shm
    python -m repro grid2d --side 32 --shards 4 --checkpoint /tmp/grid.snap
    python -m repro grid2d --side 16 --dims 3 --rectangles 100
    python -m repro plan --domain 1024 --users 200000 --queries 500
    python -m repro plan --domain 32 --dims 3 --users 200000
    python -m repro lint --format json
    python -m repro lint --baseline LINT_BASELINE.json
    python -m repro serve --shards 4 --port 8080
    python -m repro serve --shards 2 --autoscale --max-shards 8

``lint``, ``serve`` and ``plan`` are the odd ones out: instead of an
experiment, ``lint`` runs the AST-based DP-contract linter of
:mod:`repro.devtools.lint` (rule table: ``python -m repro lint
--list-rules``), ``serve`` stands up the HTTP ingestion front of
:mod:`repro.service.http` in the foreground, and ``plan`` prints the
variance-driven configuration ranking of :mod:`repro.planner`.  All three
own their flags, so they are dispatched before the experiment parser.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.quantiles import DECILES
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    ablation_consistency,
    ablation_sampling_vs_splitting,
    figure4_branching_factor,
    figure8_distribution_shift,
    figure9_quantiles,
    table5_epsilon_ranges,
    table6_epsilon_prefix,
    table7_centralized_comparison,
)
from repro.experiments.reporting import format_table, render_results

__all__ = ["main", "build_parser", "build_serve_parser"]

EXPERIMENTS = (
    "fig4",
    "table5",
    "table6",
    "table7",
    "fig8",
    "fig9",
    "ablation-sampling",
    "ablation-consistency",
    "streaming",
    "serve-demo",
    "bench",
    "grid2d",
)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from 'Answering Range Queries Under LDP'.",
        epilog="'python -m repro lint' runs the DP-contract linter instead "
        "(own flags; see 'python -m repro lint --help').",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS, help="which experiment to run")
    parser.add_argument("--domain", type=int, default=1 << 10, help="domain size D")
    parser.add_argument(
        "--domains",
        type=int,
        nargs="+",
        default=None,
        help="domain sizes (table7 only; default 256 1024 4096)",
    )
    parser.add_argument("--users", type=int, default=1 << 17, help="population size N")
    parser.add_argument("--epsilon", type=float, default=1.1, help="privacy budget")
    parser.add_argument(
        "--epsilons",
        type=float,
        nargs="+",
        default=None,
        help="epsilon grid for table5/table6 (default: the paper's 0.2..1.4)",
    )
    parser.add_argument("--repetitions", type=int, default=3, help="repetitions per cell")
    parser.add_argument(
        "--max-queries", type=int, default=6000, help="cap on queries per workload"
    )
    parser.add_argument("--seed", type=int, default=20190630, help="random seed")
    parser.add_argument(
        "--centers",
        type=float,
        nargs="+",
        default=None,
        help="Cauchy centers P (fig8/fig9)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=None,
        help="shard counts for the streaming demo (default 1 2 4 8)",
    )
    parser.add_argument(
        "--batches",
        type=int,
        default=16,
        help="number of arrival batches the population is split into (streaming)",
    )
    parser.add_argument(
        "--mechanism",
        type=str,
        default="hhc_4",
        help="mechanism spec collected by the streaming/serve demos",
    )
    parser.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "streaming only: checkpoint the collector mid-stream to PATH, "
            "simulate a crash, restore, finish, and verify the resumed run "
            "matches the uninterrupted one bit-for-bit"
        ),
    )
    parser.add_argument(
        "--producers",
        type=int,
        nargs="+",
        default=None,
        help="producer counts swept by serve-demo (default 1 2 4 8)",
    )
    parser.add_argument(
        "--router",
        type=str,
        default=None,
        choices=["round-robin", "hash", "least-loaded"],
        help="routing policy for serve-demo (default: sweep all three)",
    )
    parser.add_argument(
        "--queue-size",
        type=int,
        default=8,
        help="per-shard ingestion queue capacity (serve-demo backpressure)",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=0,
        help="aggregation thread-pool size for serve-demo (0 = event loop)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the (epsilon, spec, repetition) fan-out of "
            "table5/table6 and the bench grid (default: serial for tables, "
            "4 for bench); results are bit-identical to serial"
        ),
    )
    parser.add_argument(
        "--suite",
        type=str,
        default="smoke",
        choices=["smoke", "full"],
        help="bench only: which benchmark suite to run",
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        choices=["auto", "numpy", "numba"],
        help=(
            "bench only: kernel backend the suite runs under (default: "
            "auto-detect; explicitly requesting 'numba' fails when the "
            "[compiled] extra is not installed)"
        ),
    )
    parser.add_argument(
        "--transport",
        type=str,
        default="auto",
        choices=["auto", "shm", "pickle"],
        help=(
            "bench only: worker transport of the parallel grid benchmark "
            "(default: shared memory when available, else pickle)"
        ),
    )
    parser.add_argument(
        "--side",
        type=int,
        default=32,
        help="grid2d only: side length D of the [D]^d grid",
    )
    parser.add_argument(
        "--rectangles",
        type=int,
        default=200,
        help="grid2d only: number of random box queries evaluated",
    )
    parser.add_argument(
        "--dims",
        type=int,
        default=2,
        help="grid2d only: number of grid axes d (d > 2 runs the N-d grid)",
    )
    parser.add_argument(
        "--out",
        type=str,
        default=".",
        metavar="DIR",
        help="bench only: directory receiving BENCH_<suite>.json",
    )
    parser.add_argument(
        "--compare",
        type=str,
        default=None,
        metavar="BASELINE.json",
        help=(
            "bench only: diff this run's records against a stored "
            "BENCH_<suite>.json and exit non-zero when any record's "
            "throughput regresses past --fail-threshold"
        ),
    )
    parser.add_argument(
        "--fail-threshold",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help=(
            "bench --compare only: maximum tolerated fractional throughput "
            "drop per record before the comparison fails (default 0.5 = "
            "flag >2x slowdowns; lenient on purpose for cross-machine CI "
            "comparisons)"
        ),
    )
    return parser


def _config(args: argparse.Namespace) -> ExperimentConfig:
    overrides = {
        "n_users": args.users,
        "repetitions": args.repetitions,
        "epsilon": args.epsilon,
        "max_queries_per_workload": args.max_queries,
        "seed": args.seed,
    }
    if args.epsilons:
        overrides["epsilons"] = tuple(args.epsilons)
    if args.workers is not None:
        overrides["workers"] = args.workers
    return ExperimentConfig(**overrides)


def _run_fig4(config: ExperimentConfig, args: argparse.Namespace) -> str:
    results = figure4_branching_factor(config, args.domain)
    sections: List[str] = [f"Figure 4 | D = {args.domain} | MSE x 1000"]
    for length, cells in sorted(results.items()):
        rows = sorted((cell.mechanism, cell.scaled_mse) for cell in cells)
        sections.append(f"\nquery length r = {length}")
        sections.append(format_table(["method", "mse x1000"], rows))
    return "\n".join(sections)


def _run_table(config: ExperimentConfig, args: argparse.Namespace, prefix: bool) -> str:
    driver = table6_epsilon_prefix if prefix else table5_epsilon_ranges
    results = driver(config, args.domain)
    label = "prefix queries (Table 6)" if prefix else "range queries (Table 5)"
    return f"{label} | D = {args.domain} | MSE x 1000\n" + render_results(results)


def _run_table7(config: ExperimentConfig, args: argparse.Namespace) -> str:
    domains = tuple(args.domains) if args.domains else (256, 1024, 4096)
    results = table7_centralized_comparison(config, domain_sizes=domains, epsilon=1.0)
    rows = [
        [
            domain,
            row["wavelet"],
            row["hhc_16"],
            row["hhc_2"],
            row["wavelet/hhc_16"],
            row["hhc_2/hhc_16"],
        ]
        for domain, row in sorted(results.items())
    ]
    header = ["D", "Wavelet", "HHc_16", "HHc_2", "Wavelet/HHc_16", "HHc_2/HHc_16"]
    return "Figure 7 | centralized comparison (eps = 1)\n" + format_table(header, rows)


def _run_fig8(config: ExperimentConfig, args: argparse.Namespace) -> str:
    centers = tuple(args.centers) if args.centers else (0.1, 0.3, 0.5, 0.7, 0.9)
    results = figure8_distribution_shift(config, args.domain, centers=centers)
    rows = []
    for center in centers:
        cells = {cell.mechanism: cell.scaled_mse for cell in results[center]}
        rows.append([center, cells.get("hhc_4"), cells.get("haar")])
    return (
        f"Figure 8 | D = {args.domain} | MSE x 1000 vs Cauchy center\n"
        + format_table(["P", "HHc_4", "HaarHRR"], rows)
    )


def _run_fig9(config: ExperimentConfig, args: argparse.Namespace) -> str:
    centers = tuple(args.centers) if args.centers else (0.1, 0.5)
    results = figure9_quantiles(config, args.domain, centers=centers)
    sections: List[str] = [f"Figure 9 | D = {args.domain} | decile errors"]
    for center in centers:
        per_method = results[center]
        rows = []
        for index, phi in enumerate(DECILES):
            rows.append(
                [
                    phi,
                    per_method["hhc_2"]["value_error"][index],
                    per_method["haar"]["value_error"][index],
                    per_method["hhc_2"]["quantile_error"][index],
                    per_method["haar"]["quantile_error"][index],
                ]
            )
        sections.append(f"\nCauchy center P = {center}")
        sections.append(
            format_table(
                ["phi", "value err HHc_2", "value err Haar", "q-err HHc_2", "q-err Haar"],
                rows,
            )
        )
    return "\n".join(sections)


def _run_ablation_sampling(config: ExperimentConfig, args: argparse.Namespace) -> str:
    results = ablation_sampling_vs_splitting(config, args.domain)
    rows = [[label, cell.scaled_mse] for label, cell in sorted(results.items())]
    return (
        f"Ablation | level sampling vs budget splitting | D = {args.domain}\n"
        + format_table(["strategy", "mse x1000"], rows)
    )


def _run_ablation_consistency(config: ExperimentConfig, args: argparse.Namespace) -> str:
    results = ablation_consistency(config, args.domain)
    rows = [
        [
            branching,
            cells["raw"].scaled_mse,
            cells["consistent"].scaled_mse,
            cells["raw"].mse_mean / cells["consistent"].mse_mean,
        ]
        for branching, cells in sorted(results.items())
    ]
    return (
        f"Ablation | constrained inference | D = {args.domain}\n"
        + format_table(["B", "raw mse x1000", "consistent mse x1000", "improvement x"], rows)
    )


def _run_streaming(config: ExperimentConfig, args: argparse.Namespace) -> str:
    """Sharded/streaming collection vs. one-shot, at matched accuracy."""
    from repro.data.synthetic import cauchy_probabilities, sample_items
    from repro.data.workloads import random_range_queries
    from repro.streaming import one_shot_vs_sharded

    domain = args.domain
    items = sample_items(
        cauchy_probabilities(domain), config.n_users, random_state=config.seed
    )
    workload = random_range_queries(
        domain,
        min(config.max_queries_per_workload, 4000),
        random_state=config.seed,
        name="streaming-demo",
    )
    rows = one_shot_vs_sharded(
        args.mechanism,
        epsilon=config.epsilon,
        items=items,
        workload=workload,
        shard_counts=args.shards or (1, 2, 4, 8),
        seed=config.seed,
        batches_for=lambda n_shards: int(args.batches),
    )
    output = (
        f"Streaming | {args.mechanism} | D = {domain} | N = {config.n_users} | "
        "estimates are shard-count invariant in distribution\n"
        + format_table(["collection", "shards", "batches", "mse x1000", "seconds"], rows)
    )
    if args.checkpoint:
        output += "\n\n" + _run_crash_recovery(config, args, items)
    return output


def _crash_recovery_report(build, submit, estimate, batches, checkpoint_path) -> str:
    """Checkpoint mid-stream, 'crash', restore, and verify exact resumption.

    Shared choreography of the 1-D and 2-D demos: ``build`` constructs a
    fresh collector, ``submit(collector, batch)`` feeds one batch, and
    ``estimate(mechanism)`` extracts the array compared bit-for-bit.
    """
    import numpy as np

    from repro.streaming import ShardedCollector

    half = len(batches) // 2

    uninterrupted = build()
    for batch in batches:
        submit(uninterrupted, batch)
    expected = estimate(uninterrupted.reduce())

    crashed = build()
    for batch in batches[:half]:
        submit(crashed, batch)
    path = crashed.checkpoint(checkpoint_path)
    del crashed  # the "crash": all in-memory state is gone

    resumed = ShardedCollector.restore(path)
    for batch in batches[half:]:
        submit(resumed, batch)
    actual = estimate(resumed.reduce())
    exact = bool(np.array_equal(expected, actual))
    return (
        f"Crash recovery | checkpoint after {half}/{len(batches)} batches -> {path}\n"
        f"restored shards resumed the uninterrupted run bit-for-bit: {exact}"
    )


def _run_crash_recovery(config, args: argparse.Namespace, items) -> str:
    import numpy as np

    from repro.streaming import ShardedCollector

    n_shards = (args.shards or (4,))[0]

    def build() -> ShardedCollector:
        return ShardedCollector(
            args.mechanism,
            epsilon=config.epsilon,
            domain_size=args.domain,
            n_shards=n_shards,
            random_state=config.seed,
        )

    return _crash_recovery_report(
        build,
        submit=lambda collector, batch: collector.submit(batch),
        estimate=lambda mechanism: mechanism.estimate_frequencies(),
        batches=np.array_split(items, max(int(args.batches), 2)),
        checkpoint_path=args.checkpoint,
    )


def _run_serve_demo(config: ExperimentConfig, args: argparse.Namespace) -> str:
    """Async ingestion demo: throughput vs producer count and router policy."""
    import numpy as np

    from repro.data.synthetic import cauchy_probabilities, sample_items
    from repro.data.workloads import random_range_queries
    from repro.service import run_ingestion
    from repro.streaming import ShardedCollector

    domain = args.domain
    items = sample_items(
        cauchy_probabilities(domain), config.n_users, random_state=config.seed
    )
    workload = random_range_queries(
        domain,
        min(config.max_queries_per_workload, 4000),
        random_state=config.seed,
        name="serve-demo",
    )
    truth = workload.true_answers(np.bincount(items, minlength=domain))
    batches = np.array_split(items, max(int(args.batches), 1))
    n_shards = (args.shards or (4,))[0]
    routers = [args.router] if args.router else ["round-robin", "hash", "least-loaded"]
    producer_counts = args.producers or (1, 2, 4, 8)

    rows = []
    for router in routers:
        for n_producers in producer_counts:
            collector = ShardedCollector(
                args.mechanism,
                epsilon=config.epsilon,
                domain_size=domain,
                n_shards=n_shards,
                random_state=config.seed + n_producers,
                router=router,
            )
            report = run_ingestion(
                collector,
                batches,
                n_producers=n_producers,
                queue_size=args.queue_size,
                parallelism=args.parallelism,
            )
            estimates = collector.reduce().answer_workload(workload)
            mse = float(np.mean((estimates - truth) ** 2))
            rows.append(
                [
                    router,
                    n_producers,
                    n_shards,
                    report.n_batches,
                    report.users_per_second / 1e6,
                    mse * 1000.0,
                ]
            )
    return (
        f"Ingestion service | {args.mechanism} | D = {domain} | N = {config.n_users} | "
        f"{len(batches)} batches, queue={args.queue_size}, "
        f"parallelism={args.parallelism}\n"
        + format_table(
            ["router", "producers", "shards", "batches", "Musers/s", "mse x1000"],
            rows,
        )
    )


def _run_grid2d(config: ExperimentConfig, args: argparse.Namespace) -> str:
    """d-dimensional box queries: one-shot vs sharded collection, plus
    recovery (``--dims 2`` is the historical rectangle demo)."""
    import time

    import numpy as np

    from repro.data.synthetic import clustered_grid_points
    from repro.data.workloads import random_boxes
    from repro.streaming import ShardedCollector

    side = int(args.side)
    dims = int(args.dims)
    n_users = config.n_users
    points = clustered_grid_points(side, n_users, random_state=config.seed, dims=dims)
    boxes = random_boxes(side, int(args.rectangles), dims=dims, random_state=config.seed)
    inside = np.ones((points.shape[0], boxes.shape[0]), dtype=bool)
    for axis in range(dims):
        inside &= (points[:, axis][:, None] >= boxes[:, 2 * axis]) & (
            points[:, axis][:, None] <= boxes[:, 2 * axis + 1]
        )
    truth = inside.mean(axis=0)
    # --mechanism defaults to the 1-D streaming demo's spec; this demo
    # needs a grid spec, so anything else falls back to the grid default
    # for the requested dimensionality.
    if args.mechanism.startswith("grid"):
        spec = args.mechanism
    else:
        spec = "grid2d_2" if dims == 2 else f"grid{dims}d_2"

    rows = []
    start = time.perf_counter()
    from repro.core.factory import mechanism_from_spec

    one_shot = mechanism_from_spec(
        spec, epsilon=config.epsilon, domain_size=side
    )
    if one_shot.dims != dims:
        spec = f"grid{dims}d_{one_shot.branching}"
        one_shot = mechanism_from_spec(spec, epsilon=config.epsilon, domain_size=side)
    one_shot.fit_points(points, random_state=config.seed)
    seconds = time.perf_counter() - start
    mse = float(np.mean((one_shot.answer_boxes(boxes) - truth) ** 2))
    rows.append(["one-shot", 1, 1, mse * 1000.0, seconds])

    batches = np.array_split(points, max(int(args.batches), 2))
    for n_shards in args.shards or (2, 4):
        start = time.perf_counter()
        collector = ShardedCollector(
            spec,
            epsilon=config.epsilon,
            domain_size=side,
            n_shards=n_shards,
            random_state=config.seed,
        )
        for batch in batches:
            collector.submit_points(batch)
        reduced = collector.reduce()
        seconds = time.perf_counter() - start
        mse = float(np.mean((reduced.answer_boxes(boxes) - truth) ** 2))
        rows.append(["sharded", n_shards, len(batches), mse * 1000.0, seconds])

    shape = "x".join([str(side)] * dims)
    output = (
        f"{dims}-D grid | {spec} | {shape} | N = {n_users} | "
        "box estimates are shard-count invariant in distribution\n"
        + format_table(["collection", "shards", "batches", "mse x1000", "seconds"], rows)
    )
    if args.checkpoint:
        output += "\n\n" + _run_grid2d_recovery(config, args, spec, side, batches)
    return output


def _run_grid2d_recovery(config, args, spec, side, batches) -> str:
    from repro.streaming import ShardedCollector

    n_shards = (args.shards or (4,))[0]

    def build() -> ShardedCollector:
        return ShardedCollector(
            spec,
            epsilon=config.epsilon,
            domain_size=side,
            n_shards=n_shards,
            random_state=config.seed,
        )

    return _crash_recovery_report(
        build,
        submit=lambda collector, batch: collector.submit_points(batch),
        estimate=lambda mechanism: mechanism.estimate_heatmap(),
        batches=batches,
        checkpoint_path=args.checkpoint,
    )


def _format_check(value) -> str:
    """Render a bench check value for the per-check delta table."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _run_bench(config: ExperimentConfig, args: argparse.Namespace):
    """Run a benchmark suite, persist BENCH_<suite>.json and (optionally)
    diff the records against a stored baseline, failing on regressions."""
    from repro import kernels
    from repro.experiments.bench import compare_payloads, load_payload, run_suite

    # Read the baseline *before* running the suite: run_suite writes
    # BENCH_<suite>.json into --out, which may be the very file --compare
    # points at (the documented default invocation runs from the repo root)
    # — loading afterwards would silently compare the run against itself.
    # This also fails fast on a bad baseline path instead of after minutes
    # of benchmarking.
    baseline = None if args.compare is None else load_payload(args.compare)

    if args.backend is not None:
        kernels.set_backend(args.backend)
    payload = run_suite(
        suite=args.suite,
        workers=args.workers,
        out_dir=args.out,
        transport=args.transport,
    )
    rows = [
        [
            record["name"],
            round(record["wall_seconds"], 4),
            round(record["throughput"], 1),
            record["unit"],
            record["rss_max_kb"],
        ]
        for record in payload["results"]
    ]
    checks = payload["checks"]
    lines = [
        f"Benchmark suite '{args.suite}' | workers = {payload['workers']} | "
        f"kernel backend = {checks['kernel_backend']}",
        format_table(["benchmark", "best wall s", "throughput", "unit", "rss KB"], rows),
        "",
        f"packed payload ratio (dense/packed bytes): {checks['packed_payload_ratio']:.1f}x",
        f"packed aggregate speedup vs dense:         {checks['packed_aggregate_speedup']:.2f}x",
        f"parallel grid speedup vs serial:           {checks['parallel_grid_speedup']:.2f}x"
        f" (gate {'passed' if checks['parallel_grid_speedup_ok'] else 'FAILED'})",
        f"parallel grid bit-identical to serial:     {checks['parallel_grid_bit_identical']}",
        f"http ingest latency p50/p99:               "
        f"{checks['http_ingest_p50_ms']:.2f}/{checks['http_ingest_p99_ms']:.2f} ms",
        f"http query latency p50/p99:                "
        f"{checks['query_p50_ms']:.2f}/{checks['query_p99_ms']:.2f} ms",
        f"answer-cache speedup (repeated workload):  {checks['query_cache_speedup']:.2f}x",
        f"answer-cache hit ratio (served reads):     {checks['query_cache_hit_ratio']:.2f}",
        f"binary wire speedup vs JSON:               {checks['binary_wire_speedup']:.2f}x",
        f"cached answers bit-identical:              {checks['cache_bit_identical']}",
        f"coalesced answers bit-identical:           {checks['coalesce_bit_identical']}",
        f"autoscaled reduce bit-identical to static: {checks['autoscale_bit_identical']}",
        f"grid2d restore bit-identical:              {checks['grid2d_restore_bit_identical']}",
        f"gridnd restore bit-identical:              {checks['gridnd_restore_bit_identical']}",
        f"gridnd(d=2) bit-identical to grid2d:       {checks['gridnd_d2_bit_identical']}",
        f"planner pick beats worst candidate:        {checks['planner_pick_beats_worst']}",
        f"hh stream-ingest speedup (lazy vs eager):  {checks['hh_stream_ingest_speedup']:.2f}x",
        f"grid2d stream-ingest speedup:              {checks['grid2d_stream_ingest_speedup']:.2f}x",
        f"lazy vs eager bit-identical:               {checks['lazy_vs_eager_bit_identical']}",
        f"grid2d rectangle batch speedup:            {checks['grid2d_rectangle_batch_speedup']:.2f}x",
        f"kernels bit-identical across backends:     {checks['kernels_bit_identical']}",
        f"kernel speedups vs numpy (unary/olh/runs): "
        f"{checks['kernel_unary_speedup']:.2f}x/"
        f"{checks['kernel_olh_decode_speedup']:.2f}x/"
        f"{checks['kernel_badic_runs_speedup']:.2f}x",
        f"shm transport speedup vs pickle:           {checks['shm_transport_speedup']:.2f}x",
        f"shm transport bit-identical to pickle:     {checks['transport_bit_identical']}",
        "",
        f"wrote {payload.get('path', '(no file)')}",
    ]
    if baseline is None:
        return "\n".join(lines)

    diff = compare_payloads(payload, baseline, fail_threshold=args.fail_threshold)
    diff_rows = []
    for row in diff["rows"]:
        if row["status"] == "new":
            diff_rows.append([row["name"], "-", round(row["current_throughput"], 1), "-", "new"])
            continue
        diff_rows.append(
            [
                row["name"],
                round(row["baseline_throughput"], 1),
                round(row["current_throughput"], 1),
                f"{row['throughput_ratio']:.2f}x",
                row["status"],
            ]
        )
    lines += [
        "",
        f"Comparison vs {args.compare} (fail below "
        f"{1.0 - diff['fail_threshold']:.2f}x of baseline throughput)",
        format_table(
            ["benchmark", "baseline thr", "current thr", "ratio", "status"], diff_rows
        ),
    ]
    check_rows = [
        [
            row["name"],
            _format_check(row["baseline"]),
            _format_check(row["current"]),
            f"{row['delta']:+.3f}" if row["delta"] is not None else "-",
            row["status"],
        ]
        for row in diff.get("check_rows", [])
    ]
    if check_rows:
        lines += [
            "",
            "Per-check deltas vs baseline (informational; gating is per-record):",
            format_table(
                ["check", "baseline", "current", "delta", "status"], check_rows
            ),
        ]
    if diff["missing"]:
        lines.append(f"baseline-only records (not run): {', '.join(diff['missing'])}")
    if diff["regressions"]:
        lines.append(
            f"REGRESSION: {len(diff['regressions'])} record(s) regressed: "
            f"{', '.join(diff['regressions'])}"
        )
        return "\n".join(lines), 1
    lines.append("no regressions")
    return "\n".join(lines)


def build_plan_parser() -> argparse.ArgumentParser:
    """Parser for ``python -m repro plan`` (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro plan",
        description=(
            "Rank mechanism configurations by closed-form variance bound for "
            "a workload (family x branching factor x oracle) and print the "
            "winning factory spec. Planning reads no data, so it carries no "
            "privacy cost."
        ),
    )
    parser.add_argument(
        "--domain", type=int, default=1 << 10,
        help="domain size D (per-axis side length when --dims > 1)",
    )
    parser.add_argument("--dims", type=int, default=1, help="number of axes d")
    parser.add_argument(
        "--users", type=int, default=1 << 17, help="expected population size N"
    )
    parser.add_argument("--epsilon", type=float, default=1.1, help="privacy budget")
    parser.add_argument(
        "--queries",
        type=int,
        default=0,
        help=(
            "size of the random workload planned against "
            "(0 = plan for worst-case full-domain queries)"
        ),
    )
    parser.add_argument("--seed", type=int, default=20190630, help="workload seed")
    parser.add_argument(
        "--branchings",
        type=int,
        nargs="+",
        default=None,
        help="branching factors to sweep (default 2 4 5 8 16)",
    )
    parser.add_argument(
        "--oracles",
        type=str,
        nargs="+",
        default=None,
        help="frequency oracles to enumerate (default oue)",
    )
    return parser


def _plan_main(argv: Sequence[str]) -> int:
    """``python -m repro plan`` — print the ranked candidate table."""
    from repro.data.workloads import BoxWorkload, random_boxes, random_range_queries
    from repro.planner import DEFAULT_BRANCHINGS, plan

    args = build_plan_parser().parse_args(list(argv))
    workload = None
    if args.queries > 0:
        if args.dims > 1:
            workload = BoxWorkload(
                domain_size=args.domain,
                dims=args.dims,
                queries=random_boxes(
                    args.domain, args.queries, dims=args.dims, random_state=args.seed
                ),
                name=f"random-boxes-{args.queries}",
            )
        else:
            workload = random_range_queries(
                args.domain, args.queries, random_state=args.seed
            )
    chosen = plan(
        workload,
        n_users=args.users,
        epsilon=args.epsilon,
        domain_size=args.domain,
        dims=args.dims,
        branchings=args.branchings or DEFAULT_BRANCHINGS,
        oracles=args.oracles or ("oue",),
    )
    print(chosen.describe())
    print(f"\nchosen spec: {chosen.spec} "
          f"(predicted variance {chosen.predicted_variance:.6e})")
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """Parser for ``python -m repro serve`` (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Run the HTTP service front in the foreground: POST /v1/batches "
            "and /v1/points feed a sharded LDP collector, POST /v1/query and "
            "/v1/quantiles answer over the live state, GET /metrics serves "
            "Prometheus text, and --autoscale lets the shard set follow the "
            "load without changing the estimates."
        ),
    )
    parser.add_argument("--host", type=str, default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="TCP port (0 = kernel-assigned)"
    )
    parser.add_argument(
        "--mechanism", type=str, default="hhc_4", help="mechanism spec to collect"
    )
    parser.add_argument("--epsilon", type=float, default=1.1, help="privacy budget")
    parser.add_argument("--domain", type=int, default=1 << 10, help="domain size D")
    parser.add_argument("--shards", type=int, default=2, help="initial shard count")
    parser.add_argument("--seed", type=int, default=20190630, help="random seed")
    parser.add_argument(
        "--router",
        type=str,
        default="least-loaded",
        choices=["round-robin", "hash", "least-loaded"],
        help="shard routing policy (least-loaded feeds the autoscaler signal)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=8, help="per-shard queue capacity"
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=0,
        help="aggregation thread-pool size (0 = event loop)",
    )
    parser.add_argument(
        "--autoscale",
        action="store_true",
        help="grow/shrink the shard set from queue pressure",
    )
    parser.add_argument(
        "--min-shards", type=int, default=1, help="autoscale floor"
    )
    parser.add_argument(
        "--max-shards", type=int, default=8, help="autoscale ceiling"
    )
    parser.add_argument(
        "--grow-at",
        type=float,
        default=0.75,
        help="mean queue-fill fraction that triggers growth",
    )
    parser.add_argument(
        "--shrink-at",
        type=float,
        default=0.10,
        help="mean queue-fill fraction that triggers shrinking",
    )
    parser.add_argument(
        "--check-interval",
        type=int,
        default=16,
        help="accepted batches between autoscale checks",
    )
    parser.add_argument(
        "--readonly",
        action="store_true",
        help=(
            "serve a read-only replica: POST /v1/batches and /v1/points "
            "answer 405, while the query endpoints stay live"
        ),
    )
    parser.add_argument(
        "--query-cache-size",
        type=int,
        default=None,
        help="answer-cache capacity of the query view (0 disables caching)",
    )
    return parser


def _serve_main(argv: Sequence[str]) -> int:
    """``python -m repro serve`` — foreground HTTP service until Ctrl-C."""
    import signal
    import threading

    from repro.service import AutoscalePolicy, HttpServerThread
    from repro.streaming import ShardedCollector

    args = build_serve_parser().parse_args(list(argv))
    # Catch SIGINT via a handler-set event rather than KeyboardInterrupt:
    # an interrupt delivered outside a try block (e.g. while the server is
    # still booting) must still shut down gracefully instead of killing the
    # process mid-drain.  signal.signal only works on the main thread; when
    # embedded elsewhere (tests driving main() from a worker thread) fall
    # back to the interrupt-as-exception path.
    shutdown = threading.Event()
    previous_handler = None
    if threading.current_thread() is threading.main_thread():
        previous_handler = signal.signal(signal.SIGINT, lambda *_: shutdown.set())
    collector = ShardedCollector(
        args.mechanism,
        epsilon=args.epsilon,
        domain_size=args.domain,
        n_shards=args.shards,
        random_state=args.seed,
        router=args.router,
    )
    policy = None
    if args.autoscale:
        policy = AutoscalePolicy(
            min_shards=args.min_shards,
            max_shards=args.max_shards,
            grow_at=args.grow_at,
            shrink_at=args.shrink_at,
        )
    server_kwargs = {}
    if args.query_cache_size is not None:
        server_kwargs["query_cache_size"] = args.query_cache_size
    server = HttpServerThread(
        collector,
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        parallelism=args.parallelism,
        autoscale=args.autoscale,
        policy=policy,
        check_interval=args.check_interval,
        readonly=args.readonly,
        **server_kwargs,
    )
    try:
        server.start()
        print(
            f"serving {args.mechanism} (epsilon={args.epsilon}, D={args.domain}, "
            f"{args.shards} shard{'s' if args.shards != 1 else ''}"
            f"{', autoscaling' if args.autoscale else ''}"
            f"{', read-only' if args.readonly else ''}) "
            f"on http://{server.host}:{server.port} — Ctrl-C to stop",
            flush=True,
        )
        while not shutdown.wait(timeout=3600):
            pass
        print("shutting down (draining queues)...", flush=True)
    except KeyboardInterrupt:
        print("shutting down (draining queues)...", flush=True)
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)
        server.stop()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "serve":
        # The HTTP front owns its flags (--port, --autoscale, ...); hand
        # over before the experiment parser rejects them.
        return _serve_main(arguments[1:])
    if arguments and arguments[0] == "lint":
        # The linter has its own argument surface (paths, --format,
        # --baseline, ...); hand over before the experiment parser rejects
        # them.  Imported lazily: linting is a dev/CI surface and the
        # experiment CLI should not pay for it.
        from repro.devtools.lint import main as lint_main

        return lint_main(arguments[1:])
    if arguments and arguments[0] == "plan":
        # The planner has its own argument surface (--dims, --queries,
        # --branchings, ...); hand over before the experiment parser
        # rejects them.
        return _plan_main(arguments[1:])
    parser = build_parser()
    argv = arguments
    args = parser.parse_args(argv)
    config = _config(args)

    runners = {
        "fig4": _run_fig4,
        "table5": lambda c, a: _run_table(c, a, prefix=False),
        "table6": lambda c, a: _run_table(c, a, prefix=True),
        "table7": _run_table7,
        "fig8": _run_fig8,
        "fig9": _run_fig9,
        "ablation-sampling": _run_ablation_sampling,
        "ablation-consistency": _run_ablation_consistency,
        "streaming": _run_streaming,
        "serve-demo": _run_serve_demo,
        "bench": _run_bench,
        "grid2d": _run_grid2d,
    }
    result = runners[args.experiment](config, args)
    if isinstance(result, tuple):
        output, exit_code = result
    else:
        output, exit_code = result, 0
    print(output)
    return int(exit_code)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
