"""Closed-form variance expressions from Section 4 of the paper.

These functions implement, verbatim, the theoretical quantities the paper
derives; the benchmark ``bench_theory_bounds.py`` checks that measured mean
squared errors respect them, and the property tests check internal
consistency (e.g. monotonicity in ``epsilon`` and the optimal branching
factors derived in Sections 4.4 and 4.5).

Summary of the expressions implemented (``V_F`` is the frequency-oracle
variance ``4 e^eps / (N (e^eps - 1)^2)``):

=====================================  =========================================
Flat method, range of length ``r``      ``r * V_F``                       (Fact 1)
Flat method, average over all ranges    ``(D + 2) V_F / 3``            (Lemma 4.2)
HH_B, range of length ``r``             ``(2B - 1) h (ceil(log_B r) + 1) V_F``
                                        with ``h = log_B D``       (Theorem 4.3 +
                                        uniform level sampling, eq. (1))
HH_B worst-case average                 ``2 (B-1) V_F log_B D log_B(3D^2/(1+2D))``
                                        (Theorem 4.5)
HH_B + consistency, range               ``(B + 1) V_F log_B r log_B D / 2``
                                        (Section 4.5, eq. (2) form)
HaarHRR, any range                      ``log_2^2(D) V_F / 2``          (eq. (3))
d-D grid, ``r^d`` box                   ``h^d (2(B-1) alpha)^d V_F`` with
                                        ``alpha = min(h, ceil(log_B r) + 1)``
                                        (Section 6 sketch, eq. (1) per axis;
                                        ``d = 2`` is the rectangle case)
=====================================  =========================================
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.privacy.budget import exp_epsilon

__all__ = [
    "frequency_oracle_variance",
    "flat_range_variance",
    "flat_average_variance",
    "hh_range_variance",
    "hh_consistent_range_variance",
    "hh_average_variance",
    "haar_range_variance",
    "grid2d_rectangle_variance",
    "grid_nd_box_variance",
    "optimal_branching_factor",
    "optimal_branching_factor_consistent",
]


def _check_users(n_users: int) -> int:
    if not isinstance(n_users, int) or n_users < 1:
        raise ConfigurationError(f"n_users must be a positive integer, got {n_users!r}")
    return n_users


def _check_domain(domain_size: int) -> int:
    if not isinstance(domain_size, int) or domain_size < 2:
        raise ConfigurationError(
            f"domain size must be an integer >= 2, got {domain_size!r}"
        )
    return domain_size


def _check_branching(branching: int) -> int:
    if not isinstance(branching, int) or branching < 2:
        raise ConfigurationError(
            f"branching factor must be an integer >= 2, got {branching!r}"
        )
    return branching


def _check_range_length(range_length: int, domain_size: int) -> int:
    if not isinstance(range_length, int) or not 1 <= range_length <= domain_size:
        raise InvalidQueryError(
            f"range length must be in [1, {domain_size}], got {range_length!r}"
        )
    return range_length


def frequency_oracle_variance(epsilon: float, n_users: int) -> float:
    """``V_F = 4 e^eps / (N (e^eps - 1)^2)`` shared by OUE, OLH and HRR."""
    n_users = _check_users(n_users)
    e = exp_epsilon(epsilon)
    return 4.0 * e / (n_users * (e - 1.0) ** 2)


def flat_range_variance(
    epsilon: float, n_users: int, range_length: int, domain_size: int
) -> float:
    """Fact 1: the flat method's variance grows linearly with range length."""
    domain_size = _check_domain(domain_size)
    range_length = _check_range_length(range_length, domain_size)
    return range_length * frequency_oracle_variance(epsilon, n_users)


def flat_average_variance(epsilon: float, n_users: int, domain_size: int) -> float:
    """Lemma 4.2: average worst-case squared error over all ranges,
    ``(D + 2) V_F / 3``."""
    domain_size = _check_domain(domain_size)
    return (domain_size + 2) * frequency_oracle_variance(epsilon, n_users) / 3.0


def hh_range_variance(
    epsilon: float,
    n_users: int,
    range_length: int,
    domain_size: int,
    branching: int,
) -> float:
    """Equation (1): HH_B range variance with uniform level sampling.

    ``V_r <= (2B - 1) V_F h (ceil(log_B r) + 1)`` where ``h = ceil(log_B D)``
    levels are sampled uniformly (each level sees ``N / h`` users in
    expectation).
    """
    domain_size = _check_domain(domain_size)
    branching = _check_branching(branching)
    range_length = _check_range_length(range_length, domain_size)
    height = max(1, math.ceil(round(math.log(domain_size, branching), 10)))
    alpha = math.ceil(round(math.log(range_length, branching), 10)) + 1 if range_length > 1 else 1
    alpha = min(alpha, height)
    oracle_variance = frequency_oracle_variance(epsilon, n_users)
    return (2 * branching - 1) * oracle_variance * height * alpha


def hh_consistent_range_variance(
    epsilon: float,
    n_users: int,
    range_length: int,
    domain_size: int,
    branching: int,
) -> float:
    """Section 4.5 bound after constrained inference.

    ``(B + 1) V_F log_B r log_B D / 2`` (with the query still touching
    ``h`` levels when the range is short, the ``log_B r`` factor is floored
    at one level).
    """
    domain_size = _check_domain(domain_size)
    branching = _check_branching(branching)
    range_length = _check_range_length(range_length, domain_size)
    height = max(1.0, math.log(domain_size, branching))
    levels_touched = max(1.0, math.log(range_length, branching)) if range_length > 1 else 1.0
    oracle_variance = frequency_oracle_variance(epsilon, n_users)
    return (branching + 1) * oracle_variance * levels_touched * height / 2.0


def hh_average_variance(
    epsilon: float, n_users: int, domain_size: int, branching: int
) -> float:
    """Theorem 4.5: worst-case average error over all ranges for HH_B,
    ``2 (B - 1) V_F log_B D log_B(3 D^2 / (1 + 2D))``."""
    domain_size = _check_domain(domain_size)
    branching = _check_branching(branching)
    oracle_variance = frequency_oracle_variance(epsilon, n_users)
    log_d = math.log(domain_size, branching)
    log_term = math.log(3.0 * domain_size**2 / (1.0 + 2.0 * domain_size), branching)
    return 2.0 * (branching - 1) * oracle_variance * log_d * log_term


def haar_range_variance(epsilon: float, n_users: int, domain_size: int) -> float:
    """Equation (3): ``V_r = log_2^2(D) V_F / 2`` for any range length."""
    domain_size = _check_domain(domain_size)
    oracle_variance = frequency_oracle_variance(epsilon, n_users)
    log_d = math.log2(domain_size)
    return 0.5 * log_d**2 * oracle_variance


def grid_nd_box_variance(
    epsilon: float,
    n_users: int,
    per_axis_length: int,
    domain_size: int,
    branching: int,
    dims: int = 2,
) -> float:
    """Section 6 sketch: box variance of the ``d``-dimensional grid.

    The product decomposition of an ``r^d`` box (side length
    ``per_axis_length``) covers at most ``2(B - 1)`` nodes per axis level
    over ``alpha = min(h, ceil(log_B r) + 1)`` levels per axis — the 1-D
    eq. (1) run count applied to each axis — so at most
    ``(2 (B - 1) alpha)^d`` cells are summed.  Level-*tuple* sampling
    dilutes the population across ``h^d`` tuples, inflating each cell
    estimate's variance to ``h^d V_F``, hence::

        V_box <= h^d * (2 (B - 1) alpha)^d * V_F

    which is the ``O(log^{2d}_B D)`` growth the paper notes for general
    ``d`` — and what makes coarse gridding competitive in high dimensions,
    the trade-off :mod:`repro.planner` evaluates at plan time.
    ``domain_size`` is the per-axis side length ``D``.
    """
    domain_size = _check_domain(domain_size)
    branching = _check_branching(branching)
    per_axis_length = _check_range_length(per_axis_length, domain_size)
    if not isinstance(dims, (int,)) or isinstance(dims, bool) or dims < 1:
        raise ConfigurationError(f"dims must be a positive integer, got {dims!r}")
    height = max(1, math.ceil(round(math.log(domain_size, branching), 10)))
    alpha = (
        math.ceil(round(math.log(per_axis_length, branching), 10)) + 1
        if per_axis_length > 1
        else 1
    )
    alpha = min(alpha, height)
    per_axis_nodes = 2.0 * (branching - 1) * alpha
    oracle_variance = frequency_oracle_variance(epsilon, n_users)
    return height**dims * per_axis_nodes**dims * oracle_variance


def grid2d_rectangle_variance(
    epsilon: float,
    n_users: int,
    per_axis_length: int,
    domain_size: int,
    branching: int,
) -> float:
    """Rectangle variance of the 2-D hierarchical grid —
    :func:`grid_nd_box_variance` at ``dims=2`` (kept as the historical
    name)."""
    return grid_nd_box_variance(
        epsilon=epsilon,
        n_users=n_users,
        per_axis_length=per_axis_length,
        domain_size=domain_size,
        branching=branching,
        dims=2,
    )


def optimal_branching_factor() -> float:
    """Continuous optimum of ``2 (B - 1) / ln^2 B`` (Section 4.4): ``~4.922``.

    Solved numerically as the root of ``B ln B - 2B + 2 = 0`` by bisection —
    the same equation the paper derives before concluding ``B = 4`` or ``5``.
    """
    def derivative(b: float) -> float:
        return b * math.log(b) - 2.0 * b + 2.0

    lo, hi = 2.0, 16.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if derivative(mid) < 0.0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def optimal_branching_factor_consistent() -> float:
    """Continuous optimum after consistency (Section 4.5): root of
    ``B ln B - 2B - 2 = 0``, approximately ``9.18``."""
    def derivative(b: float) -> float:
        return b * math.log(b) - 2.0 * b - 2.0

    lo, hi = 2.0, 64.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if derivative(mid) < 0.0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
