"""Integration tests for the HTTP query tier.

Each test boots a real :class:`HttpServerThread` on an ephemeral port and
reads back over loopback TCP: ``POST /v1/query`` (boxes and flattened
ranges), ``POST /v1/quantiles``, the ``application/x-npy`` binary wire
format on both ingest and query responses, ``--readonly`` replicas that
405 the ingest endpoints, the 409-before-data conflict, and the
query-view/answer-cache metric families on ``GET /metrics``.

The load-bearing contract throughout: answers served over the wire are
bit-identical to a local ``reduce()`` of the same collected state.
"""

import io
import json
import time
from http.client import HTTPConnection

import numpy as np
import pytest

from repro.data.workloads import random_boxes
from repro.exceptions import ConfigurationError
from repro.service import HttpServerThread, ServiceClient
from repro.streaming import ShardedCollector

DOMAIN = 64
SIDE = 16
EPSILON = 1.0


def make_collector(n_shards=2, seed=7, spec="flat_oue", domain=DOMAIN):
    return ShardedCollector(
        spec,
        epsilon=EPSILON,
        domain_size=domain,
        n_shards=n_shards,
        random_state=seed,
        router="least-loaded",
    )


def raw_request(server, method, path, body=None, headers=None):
    """One request outside ServiceClient's guardrails; returns
    ``(status, headers_dict, body_bytes)``."""
    connection = HTTPConnection(server.host, server.port, timeout=10)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def wait_absorbed(server, n_batches, attempts=200):
    for _ in range(attempts):
        stats = server.stats()
        if stats["totals"]["absorbed_batches"] >= n_batches:
            return stats
        time.sleep(0.01)
    raise AssertionError("batches were not absorbed in time")


@pytest.fixture
def rng():
    return np.random.default_rng(101)


class TestRangeQueries:
    def test_ranges_match_local_reduce_bit_for_bit(self, rng):
        queries = np.sort(rng.integers(0, DOMAIN, size=(10, 2)), axis=1)
        batches = [rng.integers(0, DOMAIN, size=400) for _ in range(4)]
        with HttpServerThread(make_collector(seed=31)) as server:
            with ServiceClient(*server.address) as client:
                for batch in batches:
                    client.post_batch_retrying(batch)
                answers = client.query_ranges(queries)
                again = client.query_ranges(queries)
        local = server.reduce().answer_ranges(queries)
        np.testing.assert_array_equal(answers, local)
        np.testing.assert_array_equal(again, local)

    def test_generation_header_and_json_envelope(self, rng):
        with HttpServerThread(make_collector(seed=32)) as server:
            with ServiceClient(*server.address) as client:
                client.post_batch_retrying(rng.integers(0, DOMAIN, size=300))
            status, headers, body = raw_request(
                server,
                "POST",
                "/v1/query",
                body=json.dumps({"ranges": [[0, 10]]}).encode(),
            )
        assert status == 200
        payload = json.loads(body)
        assert "answers" in payload
        assert int(headers["X-Repro-Generation"]) == payload["generation"] >= 1

    def test_quantiles_match_local_reduce(self, rng):
        batches = [rng.integers(0, DOMAIN, size=400) for _ in range(3)]
        with HttpServerThread(make_collector(seed=33)) as server:
            with ServiceClient(*server.address) as client:
                for batch in batches:
                    client.post_batch_retrying(batch)
                quantiles = client.query_quantiles((0.25, 0.5, 0.75))
        assert quantiles == server.reduce().quantiles((0.25, 0.5, 0.75))

    def test_reads_see_writes_landed_between_queries(self, rng):
        """The query view refreshes at materialization boundaries: a write
        after the first read must be visible to the second."""
        with HttpServerThread(make_collector(seed=34)) as server:
            with ServiceClient(*server.address) as client:
                client.post_batch_retrying(rng.integers(0, DOMAIN, size=500))
                wait_absorbed(server, 1)
                first_generation = int(
                    raw_request(
                        server, "POST", "/v1/query",
                        body=json.dumps({"ranges": [[0, 31]]}).encode(),
                    )[1]["X-Repro-Generation"]
                )
                client.post_batch_retrying(rng.integers(0, DOMAIN, size=500))
                wait_absorbed(server, 2)
                second_generation = int(
                    raw_request(
                        server, "POST", "/v1/query",
                        body=json.dumps({"ranges": [[0, 31]]}).encode(),
                    )[1]["X-Repro-Generation"]
                )
                stats = server.stats()
        assert second_generation > first_generation
        assert stats["query"]["views_built"] >= 2


class TestBoxQueries:
    def test_boxes_match_local_reduce_bit_for_bit(self, rng):
        points = rng.integers(0, SIDE, size=(1500, 2))
        boxes = random_boxes(SIDE, 8, dims=2, random_state=35)
        collector = make_collector(seed=36, spec="grid2d_2", domain=SIDE)
        with HttpServerThread(collector) as server:
            with ServiceClient(*server.address) as client:
                client.post_points(points)
                answers = client.query_boxes(boxes)
                binary = client.query_boxes(boxes, binary=True)
        local = server.reduce().answer_boxes(boxes)
        np.testing.assert_array_equal(answers, local)
        np.testing.assert_array_equal(binary, local)

    def test_boxes_on_flat_mechanism_rejected(self, rng):
        with HttpServerThread(make_collector(seed=37)) as server:
            with ServiceClient(*server.address) as client:
                client.post_batch_retrying(rng.integers(0, DOMAIN, size=300))
                with pytest.raises(ConfigurationError, match="no box surface"):
                    client.query_boxes([[0, 3, 0, 3]])


class TestBinaryWire:
    def test_npy_ingest_and_npy_answers(self, rng):
        points = rng.integers(0, SIDE, size=(1200, 2))
        boxes = random_boxes(SIDE, 6, dims=2, random_state=38)
        collector = make_collector(seed=39, spec="grid2d_2", domain=SIDE)
        with HttpServerThread(collector) as server:
            with ServiceClient(*server.address) as client:
                response = client.post_points(points, binary=True)
                assert response.status == 202
                status, headers, body = raw_request(
                    server,
                    "POST",
                    "/v1/query",
                    body=json.dumps({"boxes": boxes.tolist()}).encode(),
                    headers={"Accept": "application/x-npy"},
                )
        assert status == 200
        assert headers["Content-Type"] == "application/x-npy"
        answers = np.load(io.BytesIO(body), allow_pickle=False)
        np.testing.assert_array_equal(answers, server.reduce().answer_boxes(boxes))

    def test_binary_quantiles(self, rng):
        with HttpServerThread(make_collector(seed=40)) as server:
            with ServiceClient(*server.address) as client:
                client.post_batch_retrying(rng.integers(0, DOMAIN, size=400))
                values = client.query_quantiles((0.1, 0.9), binary=True)
        assert values == server.reduce().quantiles((0.1, 0.9))

    def test_malformed_npy_body_is_400(self, rng):
        with HttpServerThread(make_collector(seed=41, spec="grid2d_2", domain=SIDE)) as server:
            status, _, _ = raw_request(
                server,
                "POST",
                "/v1/points",
                body=b"not an npy payload",
                headers={"Content-Type": "application/x-npy"},
            )
        assert status == 400

    def test_binary_mode_refuses_json_envelope_fields(self):
        with HttpServerThread(make_collector(spec="grid2d_2", domain=SIDE)) as server:
            with ServiceClient(*server.address) as client:
                with pytest.raises(ConfigurationError):
                    client.post_points([[0, 0]], mode="per_user", binary=True)


class TestReadonlyReplica:
    def test_ingest_endpoints_are_405(self, rng):
        with HttpServerThread(make_collector(seed=42), readonly=True) as server:
            status_batches, _, body = raw_request(
                server, "POST", "/v1/batches",
                body=json.dumps({"items": [1, 2]}).encode(),
            )
            status_points, _, _ = raw_request(
                server, "POST", "/v1/points",
                body=json.dumps({"points": [[1, 2]]}).encode(),
            )
        assert status_batches == 405
        assert status_points == 405
        assert b"read-only" in body

    def test_health_and_queries_stay_live(self):
        with HttpServerThread(make_collector(seed=43), readonly=True) as server:
            with ServiceClient(*server.address) as client:
                assert client.healthz().status == 200
                # No data yet: a valid query conflicts with the empty state.
                status, _, _ = raw_request(
                    server, "POST", "/v1/query",
                    body=json.dumps({"ranges": [[0, 1]]}).encode(),
                )
        assert status == 409


class TestErrorPaths:
    def test_query_before_any_data_is_409(self):
        with HttpServerThread(make_collector(seed=44)) as server:
            status, _, _ = raw_request(
                server, "POST", "/v1/query",
                body=json.dumps({"ranges": [[0, 1]]}).encode(),
            )
        assert status == 409

    def test_query_requires_exactly_one_of_boxes_or_ranges(self, rng):
        with HttpServerThread(make_collector(seed=45)) as server:
            with ServiceClient(*server.address) as client:
                client.post_batch_retrying(rng.integers(0, DOMAIN, size=200))
            neither, _, _ = raw_request(
                server, "POST", "/v1/query", body=json.dumps({}).encode()
            )
            both, _, _ = raw_request(
                server, "POST", "/v1/query",
                body=json.dumps({"ranges": [[0, 1]], "boxes": [[0, 1, 0, 1]]}).encode(),
            )
        assert neither == 400
        assert both == 400

    def test_query_methods_and_payloads_validated(self, rng):
        with HttpServerThread(make_collector(seed=46)) as server:
            with ServiceClient(*server.address) as client:
                client.post_batch_retrying(rng.integers(0, DOMAIN, size=200))
            get_status, _, _ = raw_request(server, "GET", "/v1/query")
            bad_json, _, _ = raw_request(server, "POST", "/v1/query", body=b"{nope")
            bad_bounds, _, _ = raw_request(
                server, "POST", "/v1/query",
                body=json.dumps({"ranges": [[0, "x"]]}).encode(),
            )
            out_of_domain, _, _ = raw_request(
                server, "POST", "/v1/query",
                body=json.dumps({"ranges": [[0, DOMAIN + 9]]}).encode(),
            )
            missing_phis, _, _ = raw_request(
                server, "POST", "/v1/quantiles", body=json.dumps({}).encode()
            )
            bad_phis, _, _ = raw_request(
                server, "POST", "/v1/quantiles",
                body=json.dumps({"phis": [1.7]}).encode(),
            )
        assert get_status == 405
        assert bad_json == 400
        assert bad_bounds == 400
        assert out_of_domain == 400
        assert missing_phis == 400
        assert bad_phis == 400

    def test_spec_mismatch_on_query_is_409(self, rng):
        with HttpServerThread(make_collector(seed=47)) as server:
            with ServiceClient(*server.address) as client:
                client.post_batch_retrying(rng.integers(0, DOMAIN, size=200))
            status, _, _ = raw_request(
                server, "POST", "/v1/query",
                body=json.dumps({"ranges": [[0, 1]], "epsilon": EPSILON + 1}).encode(),
            )
        assert status == 409


class TestQueryMetrics:
    def test_cache_and_view_families_exposed(self, rng):
        with HttpServerThread(make_collector(seed=48)) as server:
            with ServiceClient(*server.address) as client:
                client.post_batch_retrying(rng.integers(0, DOMAIN, size=400))
                queries = [[0, 15]]
                client.query_ranges(queries)
                client.query_ranges(queries)  # second read: a cache hit
                text = client.metrics()
                stats = server.stats()
        assert "repro_query_views_built_total 1" in text
        assert "repro_query_cache_hits_total 1" in text
        assert "repro_query_cache_misses_total 1" in text
        assert "repro_query_cache_capacity" in text
        cache = stats["query"]["answer_cache"]
        assert cache["hits"] == 1
        assert cache["misses"] == 1

    def test_query_cache_size_zero_disables_server_side(self, rng):
        with HttpServerThread(make_collector(seed=49), query_cache_size=0) as server:
            with ServiceClient(*server.address) as client:
                client.post_batch_retrying(rng.integers(0, DOMAIN, size=400))
                client.query_ranges([[0, 15]])
                client.query_ranges([[0, 15]])
                stats = server.stats()
        cache = stats["query"]["answer_cache"]
        assert cache["hits"] == 0
        assert cache["maxsize"] == 0
