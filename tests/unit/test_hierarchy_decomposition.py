"""Unit tests for repro.hierarchy.decomposition."""

import numpy as np
import pytest

from repro.exceptions import InvalidQueryError
from repro.hierarchy.decomposition import (
    NodeRun,
    batched_axis_runs,
    decompose_to_runs,
    runs_per_level,
)
from repro.hierarchy.tree import DomainTree


def _runs_to_items(tree: DomainTree, runs):
    """Expand runs back into the covered item set."""
    items = []
    for run in runs:
        for node in range(run.first, run.last + 1):
            start, end = tree.node_range(run.level, node)
            items.extend(range(start, end + 1))
    return sorted(items)


class TestDecomposeToRuns:
    @pytest.mark.parametrize("branching", [2, 4, 8, 16])
    def test_runs_cover_query_exactly(self, branching):
        tree = DomainTree(256, branching)
        for start, end in [(0, 255), (3, 200), (17, 17), (128, 255), (1, 254)]:
            runs = decompose_to_runs(tree, start, end)
            assert _runs_to_items(tree, runs) == list(range(start, end + 1))

    def test_runs_on_padded_domain(self):
        tree = DomainTree(100, 4)
        runs = decompose_to_runs(tree, 0, 99)
        assert _runs_to_items(tree, runs) == list(range(0, 100))

    def test_point_query_is_single_leaf(self):
        tree = DomainTree(64, 4)
        runs = decompose_to_runs(tree, 10, 10)
        assert runs == [NodeRun(level=3, first=10, last=10)]

    def test_whole_domain_is_level_one(self):
        tree = DomainTree(64, 4)
        runs = decompose_to_runs(tree, 0, 63)
        assert runs == [NodeRun(level=1, first=0, last=3)]

    def test_adjacent_nodes_merge_into_one_run(self):
        tree = DomainTree(64, 4)
        # [0, 31] is exactly the first two level-1 nodes for B=4, D=64.
        runs = decompose_to_runs(tree, 0, 31)
        assert runs == [NodeRun(level=1, first=0, last=1)]

    def test_run_counts_are_logarithmic(self):
        tree = DomainTree(1 << 14, 2)
        runs = decompose_to_runs(tree, 3, (1 << 14) - 5)
        assert len(runs) <= 2 * tree.height

    def test_invalid_query(self):
        tree = DomainTree(64, 4)
        with pytest.raises(InvalidQueryError):
            decompose_to_runs(tree, 10, 64)
        with pytest.raises(InvalidQueryError):
            decompose_to_runs(tree, 5, 4)

    def test_node_run_count_property(self):
        assert NodeRun(level=2, first=3, last=7).count == 5


class TestRunsPerLevel:
    def test_grouping(self):
        tree = DomainTree(256, 2)
        runs = decompose_to_runs(tree, 3, 200)
        grouped = runs_per_level(runs)
        assert sum(len(v) for v in grouped.values()) == len(runs)
        for level, level_runs in grouped.items():
            assert all(run.level == level for run in level_runs)
            # At most a left and a right fringe run per level.
            assert len(level_runs) <= 2


class TestBatchedAxisRuns:
    def _slot_nodes(self, runs, query_index):
        """Node set per level covered by one query's run slots."""
        covered = {}
        for level, slots in runs.items():
            nodes = []
            for first, last in slots:
                nodes.extend(range(int(first[query_index]), int(last[query_index])))
            covered[level] = sorted(nodes)
        return covered

    @pytest.mark.parametrize("domain,branching", [(256, 2), (256, 4), (100, 4), (81, 3)])
    def test_matches_decompose_to_runs(self, domain, branching):
        tree = DomainTree(domain, branching)
        rng = np.random.default_rng(7)
        endpoints = np.sort(rng.integers(0, domain, size=(64, 2)), axis=1)
        queries = np.concatenate(
            [endpoints, [[0, domain - 1], [0, 0], [domain - 1, domain - 1]]]
        )
        runs = batched_axis_runs(tree, queries[:, 0], queries[:, 1])
        for index, (start, end) in enumerate(queries):
            expected = {level: [] for level in tree.levels}
            for run in decompose_to_runs(tree, int(start), int(end)):
                expected[run.level].extend(range(run.first, run.last + 1))
            got = self._slot_nodes(runs, index)
            for level in tree.levels:
                assert got.get(level, []) == sorted(expected[level]), (
                    f"level {level} mismatch for query [{start}, {end}]"
                )

    def test_empty_slots_have_zero_width(self):
        tree = DomainTree(64, 2)
        runs = batched_axis_runs(tree, np.array([10]), np.array([10]))
        total = sum(
            int(last[0] - first[0])
            for slots in runs.values()
            for first, last in slots
        )
        # A point query covers exactly one leaf node.
        assert total == 1
