"""Figure/Table 5 — mean squared error of arbitrary range queries vs epsilon.

Regenerates the paper's Table 5 grid (rows = epsilon in 0.2..1.4, columns =
HHc_2, HHc_4, HHc_16, HaarHRR, values = MSE x 1000, best per row marked) for
a small and a medium domain.  Laptop-scale substitution: N = 2^16 users and
domains 2^8 / 2^12 instead of 2^26 users and domains up to 2^22; the method
ordering and the epsilon trend are what carries over (EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import table5_epsilon_ranges
from repro.experiments.reporting import render_results


def _check_table5_shape(results) -> None:
    """Assert the qualitative claims the paper draws from Table 5."""
    by_eps = {}
    for cell in results:
        by_eps.setdefault(cell.epsilon, {})[cell.mechanism] = cell.mse_mean
    epsilons = sorted(by_eps)
    # Error decreases as epsilon grows, for every method.
    for method in ("hhc_2", "hhc_4", "hhc_16", "haar"):
        assert by_eps[epsilons[-1]][method] < by_eps[epsilons[0]][method]
    # No method is ever catastrophically worse than the best (the paper's
    # "regret for choosing the wrong method is low" conclusion).
    for epsilon in epsilons:
        row = by_eps[epsilon]
        assert max(row.values()) < 5.0 * min(row.values())
    # The wavelet is competitive at the strictest privacy level: never the
    # worst method there by a large margin.
    strict = by_eps[epsilons[0]]
    assert strict["haar"] <= 1.3 * min(strict.values())


@pytest.mark.benchmark(group="table5")
def test_table5_small_domain(run_once, bench_config):
    domain = 1 << 8
    results = run_once(table5_epsilon_ranges, bench_config, domain)
    print(f"\n=== Table 5(a) | D = 2^8 | range queries | MSE x 1000 ===")
    print(render_results(results))
    _check_table5_shape(results)


@pytest.mark.benchmark(group="table5")
def test_table5_medium_domain(run_once, bench_config):
    domain = 1 << 12
    results = run_once(table5_epsilon_ranges, bench_config, domain)
    print(f"\n=== Table 5(b) | D = 2^12 | range queries | MSE x 1000 ===")
    print(render_results(results))
    _check_table5_shape(results)
