"""Shared-memory transport for the parallel experiment engine.

``ProcessPoolExecutor`` ships worker inputs by pickling them into the task
pipe.  For the experiment engine the big inputs — the per-item counts, the
workload query matrix and its exact answers — are identical for every
worker, so the pickle/IPC round trip is pure overhead, and at small cell
sizes it is the *dominant* cost (the ``parallel_grid_speedup`` regression
history in :mod:`repro.experiments.runner`).  This module replaces the copy
with :mod:`multiprocessing.shared_memory`: the parent packs the arrays into
one named segment, workers attach by name and build zero-copy numpy views.

Lifecycle contract:

* the parent owns the segment: it creates it, hands workers only a small
  picklable *descriptor* (segment name + per-array dtype/shape/offset), and
  closes **and unlinks** it in a ``finally`` — so a worker crashing mid-run
  (even hard, e.g. ``os._exit``) never leaks a segment;
* workers attach read-only views and simply close their mapping when the
  process exits; they never unlink;
* when shared memory is unavailable (platform without it, or creation
  fails at runtime — ``/dev/shm`` full, permissions), callers fall back to
  the pickle transport; results are bit-identical either way because the
  transported bytes are.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "TRANSPORTS",
    "SharedArrayPack",
    "resolve_transport",
    "shm_available",
]

#: Transport request values accepted by the runner/bench knobs.
TRANSPORTS = ("auto", "shm", "pickle")

#: Offsets are aligned so every array view starts on a cache-line boundary.
_ALIGN = 64


def shm_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` imports on this host."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - always available on CPython>=3.8
        return False
    return True


def resolve_transport(requested: Optional[str]) -> str:
    """Map a transport request to the concrete transport to use.

    ``auto`` and ``shm`` both resolve to ``"shm"`` only when shared memory
    is importable and to ``"pickle"`` otherwise — the documented graceful
    fallback (a later creation failure downgrades the same way).  Unknown
    values raise.
    """
    requested = (requested or "auto").strip().lower() or "auto"
    if requested not in TRANSPORTS:
        raise ConfigurationError(
            f"unknown transport {requested!r}; expected one of {TRANSPORTS}"
        )
    if requested == "pickle":
        return "pickle"
    return "shm" if shm_available() else "pickle"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrayPack:
    """Named numpy arrays packed into one POSIX shared-memory segment.

    Create in the parent with :meth:`create`, ship :attr:`descriptor` (a
    small picklable dict) through the pool initializer, and rebuild views
    in workers with :meth:`attach`.  The creating side is the *owner* and
    must call :meth:`unlink` (idempotent) when the pool is done; attached
    sides only :meth:`close`.
    """

    def __init__(self, shm: object, layout: Dict[str, dict], owner: bool) -> None:
        self._shm = shm
        self._layout = layout
        self._owner = owner
        self._unlinked = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Dict[str, np.ndarray]) -> "SharedArrayPack":
        """Copy ``arrays`` into a fresh segment (parent side, owner).

        Raises ``OSError`` when the segment cannot be created — callers
        catch it and fall back to the pickle transport.
        """
        from multiprocessing import shared_memory

        prepared: List[Tuple[str, np.ndarray]] = []
        layout: Dict[str, dict] = {}
        total = 0
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset = _aligned(total)
            layout[name] = {
                "dtype": array.dtype.str,
                "shape": tuple(int(dim) for dim in array.shape),
                "offset": offset,
            }
            prepared.append((name, array))
            total = offset + array.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        for name, array in prepared:
            entry = layout[name]
            view = np.ndarray(
                entry["shape"],
                dtype=np.dtype(entry["dtype"]),
                buffer=shm.buf,
                offset=entry["offset"],
            )
            view[...] = array
        return cls(shm, layout, owner=True)

    @classmethod
    def attach(cls, descriptor: Dict[str, object]) -> "SharedArrayPack":
        """Map an existing segment from its descriptor (worker side)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=str(descriptor["name"]), create=False)
        return cls(shm, dict(descriptor["layout"]), owner=False)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Kernel-level name of the underlying segment."""
        return self._shm.name  # type: ignore[attr-defined]

    @property
    def descriptor(self) -> Dict[str, object]:
        """Small picklable handle workers attach from."""
        return {"name": self.name, "layout": dict(self._layout)}

    def arrays(self) -> Dict[str, np.ndarray]:
        """Zero-copy read-only views of every packed array.

        Views are marked non-writable: the transported inputs are shared by
        every worker, so an accidental in-place write would corrupt sibling
        repetitions — better to fail loudly.
        """
        views: Dict[str, np.ndarray] = {}
        for name, entry in self._layout.items():
            view = np.ndarray(
                tuple(entry["shape"]),
                dtype=np.dtype(entry["dtype"]),
                buffer=self._shm.buf,  # type: ignore[attr-defined]
                offset=int(entry["offset"]),
            )
            view.flags.writeable = False
            views[name] = view
        return views

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (both sides; idempotent)."""
        try:
            self._shm.close()  # type: ignore[attr-defined]
        except (OSError, BufferError):  # pragma: no cover - platform quirk
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner side; idempotent, crash-tolerant)."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()  # type: ignore[attr-defined]
        except FileNotFoundError:
            # Already gone (e.g. a resource tracker beat us to it after a
            # worker crash) — the goal state, not an error.
            pass

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
        self.unlink()

    @staticmethod
    def segment_exists(name: str) -> bool:
        """Whether a segment named ``name`` still exists (test hook)."""
        from multiprocessing import shared_memory

        try:
            probe = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            return False
        probe.close()
        return True
