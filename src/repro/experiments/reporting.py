"""Plain-text rendering of experiment results.

The benchmark scripts print their tables in the same orientation as the
paper (rows = epsilon, columns = methods, values = MSE x 1000) so that the
console output can be compared side by side with the published tables.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.runner import CellResult

__all__ = ["format_table", "render_results", "pivot_by_epsilon"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple aligned text table."""
    headers = [str(h) for h in headers]
    text_rows = [[_format_value(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in text_rows:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def pivot_by_epsilon(results: Sequence[CellResult]) -> Dict[float, Dict[str, CellResult]]:
    """Group grid results as ``{epsilon: {mechanism: cell}}``."""
    table: Dict[float, Dict[str, CellResult]] = {}
    for cell in results:
        table.setdefault(cell.epsilon, {})[cell.mechanism] = cell
    return table


def render_results(
    results: Sequence[CellResult],
    scale: float = 1000.0,
    mark_best: bool = True,
) -> str:
    """Render a Table-5/6 style grid: rows = epsilon, columns = mechanisms.

    Values are MSE multiplied by ``scale`` (1000, the paper's presentation
    unit).  The smallest value in every row is marked with ``*`` when
    ``mark_best`` is set, mirroring the bold entries of the paper.
    """
    if not results:
        return "(no results)"
    mechanisms: List[str] = []
    for cell in results:
        if cell.mechanism not in mechanisms:
            mechanisms.append(cell.mechanism)
    table = pivot_by_epsilon(results)
    headers = ["eps"] + mechanisms
    rows: List[List[object]] = []
    for epsilon in sorted(table):
        row_cells = table[epsilon]
        values = {
            name: row_cells[name].mse_mean * scale
            for name in mechanisms
            if name in row_cells
        }
        best = min(values.values()) if values else None
        row: List[object] = [f"{epsilon:g}"]
        for name in mechanisms:
            if name not in values:
                row.append("-")
                continue
            text = f"{values[name]:.3f}"
            if mark_best and best is not None and values[name] == best:
                text += "*"
            row.append(text)
        rows.append(row)
    return format_table(headers, rows)
