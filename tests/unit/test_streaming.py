"""Unit tests for the streaming subsystem (ShardedCollector + mechanism API)."""

import numpy as np
import pytest

from repro.core.flat import FlatMechanism
from repro.core.hierarchical import HierarchicalHistogramMechanism
from repro.core.wavelet import HaarWaveletMechanism
from repro.exceptions import ConfigurationError, NotFittedError
from repro.streaming import ShardedCollector

DOMAIN = 64


@pytest.fixture
def items(rng):
    return rng.integers(0, DOMAIN, size=60_000)


class TestPartialFit:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: FlatMechanism(1.0, DOMAIN),
            lambda: HierarchicalHistogramMechanism(1.0, DOMAIN, branching=4),
            lambda: HierarchicalHistogramMechanism(
                1.0, DOMAIN, branching=4, consistency=False
            ),
            lambda: HierarchicalHistogramMechanism(
                1.0, DOMAIN, branching=4, budget_strategy="splitting"
            ),
            lambda: HaarWaveletMechanism(1.0, DOMAIN),
        ],
    )
    def test_batches_accumulate_users_and_accuracy(self, factory, items):
        mechanism = factory()
        stream = np.random.default_rng(3)
        for batch in np.array_split(items, 5):
            mechanism.partial_fit(batch, random_state=stream)
        assert mechanism.is_fitted
        assert mechanism.n_users == items.size
        truth = np.mean((items >= 10) & (items <= 50))
        assert mechanism.answer_range(10, 50) == pytest.approx(truth, abs=0.08)

    def test_queryable_after_every_batch(self, items):
        mechanism = FlatMechanism(1.0, DOMAIN)
        stream = np.random.default_rng(1)
        seen = 0
        for batch in np.array_split(items, 3):
            mechanism.partial_fit(batch, random_state=stream)
            seen += batch.size
            assert mechanism.n_users == seen
            assert np.isfinite(mechanism.answer_range(0, DOMAIN - 1))

    def test_partial_fit_on_top_of_one_shot(self, items):
        mechanism = FlatMechanism(1.0, DOMAIN)
        mechanism.fit_items(items[:30_000], random_state=0)
        mechanism.partial_fit(items[30_000:], random_state=1)
        assert mechanism.n_users == items.size

    def test_per_user_mode(self, rng):
        items = rng.integers(0, 16, size=20_000)
        mechanism = HierarchicalHistogramMechanism(2.0, 16, branching=4)
        for batch in np.array_split(items, 4):
            mechanism.partial_fit(batch, random_state=rng, mode="per_user")
        truth = np.mean(items <= 7)
        assert mechanism.answer_range(0, 7) == pytest.approx(truth, abs=0.1)

    def test_rejects_float_items(self):
        mechanism = FlatMechanism(1.0, DOMAIN)
        from repro.exceptions import InvalidQueryError

        with pytest.raises(InvalidQueryError):
            mechanism.partial_fit(np.array([1.5, 2.0]))


class TestMergeFrom:
    def test_merge_requires_fitted_source(self):
        with pytest.raises(NotFittedError):
            FlatMechanism(1.0, DOMAIN).merge_from(FlatMechanism(1.0, DOMAIN))

    def test_merge_rejects_different_type(self, items):
        target = FlatMechanism(1.0, DOMAIN)
        source = HaarWaveletMechanism(1.0, DOMAIN).fit_items(items, random_state=0)
        with pytest.raises(ConfigurationError):
            target.merge_from(source)

    def test_merge_rejects_mismatched_config(self, items):
        source = HierarchicalHistogramMechanism(1.0, DOMAIN, branching=4)
        source.fit_items(items, random_state=0)
        for target in (
            HierarchicalHistogramMechanism(2.0, DOMAIN, branching=4),
            HierarchicalHistogramMechanism(1.0, DOMAIN, branching=8),
            HierarchicalHistogramMechanism(1.0, DOMAIN, branching=4, consistency=False),
            HierarchicalHistogramMechanism(1.0, DOMAIN, branching=4, oracle="hrr"),
        ):
            with pytest.raises(ConfigurationError):
                target.merge_from(source)

    def test_merge_is_weighted_combination_for_flat(self, items):
        first = FlatMechanism(1.0, DOMAIN).fit_items(items[:40_000], random_state=1)
        second = FlatMechanism(1.0, DOMAIN).fit_items(items[40_000:], random_state=2)
        merged = FlatMechanism(1.0, DOMAIN).merge_from(first).merge_from(second)
        n1, n2 = first.n_users, second.n_users
        expected = (
            n1 * first.estimate_frequencies() + n2 * second.estimate_frequencies()
        ) / (n1 + n2)
        assert merged.n_users == items.size
        np.testing.assert_allclose(merged.estimate_frequencies(), expected, atol=1e-12)

    def test_merge_into_fitted_target(self, items):
        target = FlatMechanism(1.0, DOMAIN).fit_items(items[:20_000], random_state=1)
        source = FlatMechanism(1.0, DOMAIN).fit_items(items[20_000:], random_state=2)
        target.merge_from(source)
        assert target.n_users == items.size

    def test_lazy_merges_fold_shards_with_one_materialization(self, items):
        # Merging only touches statistics; the estimates are rebuilt once,
        # on the first read, and land exactly on the eager per-merge result.
        parts = [
            FlatMechanism(1.0, DOMAIN).fit_items(chunk, random_state=index)
            for index, chunk in enumerate(np.array_split(items, 3))
        ]
        eager = FlatMechanism(1.0, DOMAIN)
        for part in parts:
            eager.merge_from(part).materialize()
        lazy = FlatMechanism(1.0, DOMAIN)
        for part in parts:
            lazy.merge_from(part)
        assert not lazy.is_materialized
        assert lazy.materialization_count == 0
        assert lazy.n_users == eager.n_users == items.size
        np.testing.assert_array_equal(
            lazy.estimate_frequencies(), eager.estimate_frequencies()
        )
        assert lazy.is_materialized
        assert lazy.materialization_count == 1

    def test_unsupported_mechanism_raises_configuration_error(self):
        from repro.core.base import RangeQueryMechanism

        class OneShotOnly(RangeQueryMechanism):
            """Minimal mechanism without accumulator support."""

            def _collect(self, items, counts, rng, mode):
                self._fractions = counts / max(1, counts.sum())

            def _answer_range(self, start, end):
                return float(self._fractions[start : end + 1].sum())

        a = OneShotOnly(1.0, DOMAIN).fit_counts(
            np.ones(DOMAIN, dtype=np.int64), random_state=0
        )
        b = OneShotOnly(1.0, DOMAIN).fit_counts(
            np.ones(DOMAIN, dtype=np.int64), random_state=1
        )
        with pytest.raises(ConfigurationError):
            a.merge_from(b)
        with pytest.raises(ConfigurationError):
            a.partial_fit(np.zeros(10, dtype=np.int64))


class TestShardedCollector:
    def test_round_robin_routing(self, items):
        collector = ShardedCollector("flat", 1.0, DOMAIN, n_shards=3, random_state=0)
        targets = [collector.submit(batch) for batch in np.array_split(items, 7)]
        assert targets == [0, 1, 2, 0, 1, 2, 0]
        assert collector.n_batches == 7
        assert collector.n_users == items.size

    def test_explicit_shard_routing(self, items):
        collector = ShardedCollector("flat", 1.0, DOMAIN, n_shards=4, random_state=0)
        assert collector.submit(items, shard=2) == 2
        assert collector.shards[2].is_fitted
        assert not collector.shards[0].is_fitted

    def test_invalid_shard_index(self, items):
        collector = ShardedCollector("flat", 1.0, DOMAIN, n_shards=2, random_state=0)
        with pytest.raises(ConfigurationError):
            collector.submit(items, shard=5)

    def test_invalid_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardedCollector("flat", 1.0, DOMAIN, n_shards=0)

    def test_reduce_requires_data(self):
        collector = ShardedCollector("flat", 1.0, DOMAIN, n_shards=2)
        with pytest.raises(NotFittedError):
            collector.reduce()

    def test_reduce_combines_all_shards(self, items):
        collector = ShardedCollector("hhc_4", 1.0, DOMAIN, n_shards=4, random_state=9)
        collector.extend(np.array_split(items, 8))
        merged = collector.reduce()
        assert merged.n_users == items.size
        truth = np.mean((items >= 5) & (items <= 40))
        assert merged.answer_range(5, 40) == pytest.approx(truth, abs=0.08)

    def test_reduce_is_deterministic_given_seed(self, items):
        def run():
            collector = ShardedCollector(
                "haar", 1.0, DOMAIN, n_shards=3, random_state=42
            )
            collector.extend(np.array_split(items, 6))
            return collector.reduce().estimate_frequencies()

        np.testing.assert_array_equal(run(), run())

    def test_reduce_can_be_repeated_while_streaming(self, items):
        collector = ShardedCollector("flat", 1.0, DOMAIN, n_shards=2, random_state=1)
        collector.submit(items[:30_000])
        first = collector.reduce()
        collector.submit(items[30_000:])
        second = collector.reduce()
        assert first.n_users == 30_000
        assert second.n_users == items.size

    def test_session_wraps_reduction(self, items):
        collector = ShardedCollector("hhc_4", 1.1, DOMAIN, n_shards=2, random_state=3)
        collector.extend(np.array_split(items, 4))
        session = collector.session()
        assert session.epsilon == pytest.approx(1.1)
        assert session.n_users == items.size
        assert len(session.quantiles()) == 9

    def test_explicit_and_round_robin_interleave_deterministically(self, items):
        """Explicit routing bypasses the router: for a fixed seed, mixing
        pinned and policy-routed batches is fully reproducible and pinned
        batches never advance the round-robin cursor."""

        def run():
            collector = ShardedCollector(
                "flat", 1.0, DOMAIN, n_shards=3, random_state=17
            )
            targets = []
            batches = np.array_split(items, 8)
            targets.append(collector.submit(batches[0]))            # rr -> 0
            targets.append(collector.submit(batches[1], shard=2))   # pinned
            targets.append(collector.submit(batches[2]))            # rr -> 1
            targets.append(collector.submit(batches[3], shard=0))   # pinned
            targets.append(collector.submit(batches[4]))            # rr -> 2
            targets.append(collector.submit(batches[5]))            # rr -> 0
            targets.append(collector.submit(batches[6], shard=1))   # pinned
            targets.append(collector.submit(batches[7]))            # rr -> 1
            return targets, collector.reduce().estimate_frequencies()

        targets, estimates = run()
        assert targets == [0, 2, 1, 0, 2, 0, 1, 1]
        repeat_targets, repeat_estimates = run()
        assert repeat_targets == targets
        np.testing.assert_array_equal(estimates, repeat_estimates)

    def test_template_mechanism_instead_of_spec(self, items):
        from repro.core.wavelet import HaarWaveletMechanism

        template = HaarWaveletMechanism(1.0, DOMAIN)
        collector = ShardedCollector(template, n_shards=2, random_state=4)
        collector.extend(np.array_split(items, 4))
        assert collector.reduce().n_users == items.size
        assert not template.is_fitted  # the template is a config donor only

    def test_template_mechanism_rejects_conflicting_parameters(self):
        from repro.core.flat import FlatMechanism

        template = FlatMechanism(1.0, DOMAIN)
        with pytest.raises(ConfigurationError):
            ShardedCollector(template, epsilon=2.0)
        with pytest.raises(ConfigurationError):
            ShardedCollector(template, domain_size=DOMAIN * 2)
        with pytest.raises(ConfigurationError):
            ShardedCollector(template, oracle="hrr")

    def test_spec_requires_epsilon_and_domain(self):
        with pytest.raises(ConfigurationError):
            ShardedCollector("flat")


class TestCollectorCheckpoint:
    @pytest.mark.parametrize("spec", ["flat_oue", "hhc_4", "haar"])
    def test_restored_collector_resumes_bit_for_bit(self, spec, items):
        batches = np.array_split(items, 10)

        def build():
            return ShardedCollector(
                spec, 1.0, DOMAIN, n_shards=3, random_state=23
            )

        uninterrupted = build()
        for batch in batches:
            uninterrupted.submit(batch)
        expected = uninterrupted.reduce().estimate_frequencies()

        crashed = build()
        for batch in batches[:4]:
            crashed.submit(batch)
        snapshot = crashed.checkpoint_bytes()
        del crashed

        resumed = ShardedCollector.from_checkpoint_bytes(snapshot)
        assert resumed.n_batches == 4
        for batch in batches[4:]:
            resumed.submit(batch)
        np.testing.assert_array_equal(
            resumed.reduce().estimate_frequencies(), expected
        )

    def test_checkpoint_file_round_trip(self, items, tmp_path):
        collector = ShardedCollector("hhc_4", 1.0, DOMAIN, n_shards=2, random_state=7)
        collector.extend(np.array_split(items, 4))
        path = collector.checkpoint(tmp_path / "collector.snap")
        restored = ShardedCollector.restore(path)
        assert restored.n_users == collector.n_users
        assert restored.n_batches == collector.n_batches
        np.testing.assert_array_equal(
            restored.reduce().estimate_frequencies(),
            collector.reduce().estimate_frequencies(),
        )

    def test_checkpoint_preserves_router_position(self, items):
        collector = ShardedCollector("flat", 1.0, DOMAIN, n_shards=3, random_state=1)
        collector.submit(items[:1000])  # round-robin cursor now at shard 1
        restored = ShardedCollector.from_checkpoint_bytes(collector.checkpoint_bytes())
        assert restored.submit(items[1000:2000]) == collector.submit(items[1000:2000]) == 1

    def test_checkpoint_preserves_unfitted_shards(self, items):
        collector = ShardedCollector("flat", 1.0, DOMAIN, n_shards=4, random_state=2)
        collector.submit(items[:1000])  # only shard 0 fitted
        restored = ShardedCollector.from_checkpoint_bytes(collector.checkpoint_bytes())
        fitted = [shard.is_fitted for shard in restored.shards]
        assert fitted == [True, False, False, False]

    def test_mechanism_snapshot_rejected_as_checkpoint(self, items):
        from repro import persist
        from repro.core.flat import FlatMechanism

        mechanism = FlatMechanism(1.0, DOMAIN).fit_items(items, random_state=0)
        with pytest.raises(ConfigurationError, match="collector"):
            ShardedCollector.from_checkpoint_bytes(persist.to_bytes(mechanism))

    def test_unregistered_custom_router_rejected_at_checkpoint_time(self, items):
        from repro.streaming import ShardRouter

        class TeleportRouter(ShardRouter):
            name = "teleport"

            def route(self, n_items, key=None):
                return 0

        collector = ShardedCollector(
            "flat", 1.0, DOMAIN, n_shards=2, random_state=0,
            router=TeleportRouter(),
        )
        collector.submit(items[:1000])
        with pytest.raises(ConfigurationError, match="register_router"):
            collector.checkpoint_bytes()

    def test_registered_custom_router_round_trips(self, items):
        from repro.streaming import ShardRouter, register_router
        from repro.streaming.routing import _ROUTERS

        @register_router
        class SecondShardRouter(ShardRouter):
            name = "second-shard"

            def route(self, n_items, key=None):
                return 1 % self.n_shards

        try:
            collector = ShardedCollector(
                "flat", 1.0, DOMAIN, n_shards=3, random_state=0,
                router=SecondShardRouter(),
            )
            collector.submit(items[:1000])
            restored = ShardedCollector.from_checkpoint_bytes(
                collector.checkpoint_bytes()
            )
            assert restored.submit(items[1000:2000]) == 1
        finally:
            _ROUTERS.pop("second-shard", None)

    def test_snapshot_missing_level_counts_raises_configuration_error(self, items):
        from repro.core.hierarchical import HierarchicalHistogramMechanism
        from repro.core.wavelet import HaarWaveletMechanism

        for mechanism in (
            HierarchicalHistogramMechanism(1.0, DOMAIN, branching=4),
            HaarWaveletMechanism(1.0, DOMAIN),
        ):
            mechanism.fit_items(items, random_state=0)
            state = mechanism.state_dict()
            del state["level_user_counts"]
            with pytest.raises(ConfigurationError, match="level_user_counts"):
                type(mechanism)(1.0, DOMAIN).load_state_dict(state)

    def test_collector_checkpoint_loads_via_persist(self, items):
        from repro import persist

        collector = ShardedCollector("flat", 1.0, DOMAIN, n_shards=2, random_state=3)
        collector.submit(items[:5000])
        restored = persist.from_bytes(collector.checkpoint_bytes())
        assert isinstance(restored, ShardedCollector)
        assert restored.n_users == 5000
        with pytest.raises(ConfigurationError):
            persist.from_bytes(
                collector.checkpoint_bytes(),
                template=ShardedCollector("flat", 1.0, DOMAIN),
            )
