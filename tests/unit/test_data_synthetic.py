"""Unit tests for repro.data.synthetic."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, InvalidDomainError
from repro.data.synthetic import (
    bimodal_probabilities,
    cauchy_probabilities,
    expected_counts,
    gaussian_probabilities,
    sample_counts,
    sample_items,
    uniform_probabilities,
    zipf_probabilities,
)


class TestDistributions:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda d: cauchy_probabilities(d),
            lambda d: zipf_probabilities(d),
            lambda d: gaussian_probabilities(d),
            lambda d: uniform_probabilities(d),
            lambda d: bimodal_probabilities(d),
        ],
    )
    def test_probabilities_are_valid(self, factory):
        probabilities = factory(256)
        assert probabilities.shape == (256,)
        assert np.all(probabilities >= 0)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_cauchy_mode_location(self):
        # The mode sits at P * D (the paper's parameterisation).
        probabilities = cauchy_probabilities(1000, center_fraction=0.4)
        assert abs(int(np.argmax(probabilities)) - 400) <= 1

    def test_cauchy_height_controls_spread(self):
        narrow = cauchy_probabilities(1000, height_fraction=0.01)
        wide = cauchy_probabilities(1000, height_fraction=0.5)
        assert narrow.max() > wide.max()

    def test_cauchy_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            cauchy_probabilities(100, center_fraction=1.5)
        with pytest.raises(ConfigurationError):
            cauchy_probabilities(100, height_fraction=0.0)
        with pytest.raises(InvalidDomainError):
            cauchy_probabilities(0)

    def test_zipf_is_decreasing(self):
        probabilities = zipf_probabilities(100, exponent=1.2)
        assert np.all(np.diff(probabilities) <= 0)

    def test_gaussian_centered(self):
        probabilities = gaussian_probabilities(500, center_fraction=0.5)
        assert abs(int(np.argmax(probabilities)) - 250) <= 1

    def test_bimodal_has_two_peaks(self):
        probabilities = bimodal_probabilities(400, centers=(0.25, 0.75), std_fraction=0.03)
        left_peak = probabilities[:200].max()
        right_peak = probabilities[200:].max()
        valley = probabilities[190:210].min()
        assert left_peak > 5 * valley and right_peak > 5 * valley


class TestSampling:
    def test_sample_counts_sum_to_population(self, rng):
        counts = sample_counts(uniform_probabilities(64), 10_000, rng)
        assert counts.sum() == 10_000
        assert counts.shape == (64,)

    def test_sample_items_within_domain(self, rng):
        items = sample_items(cauchy_probabilities(128), 5000, rng)
        assert items.shape == (5000,)
        assert items.min() >= 0 and items.max() < 128

    def test_sample_items_follow_distribution(self, rng):
        probabilities = np.array([0.7, 0.2, 0.1])
        items = sample_items(probabilities, 50_000, rng)
        observed = np.bincount(items, minlength=3) / 50_000
        np.testing.assert_allclose(observed, probabilities, atol=0.01)

    def test_negative_population_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            sample_counts(uniform_probabilities(4), -1, rng)
        with pytest.raises(ConfigurationError):
            sample_items(uniform_probabilities(4), -1, rng)


class TestExpectedCounts:
    def test_sum_is_exact(self):
        counts = expected_counts(cauchy_probabilities(333), 12_345)
        assert counts.sum() == 12_345
        assert np.all(counts >= 0)

    def test_deterministic(self):
        first = expected_counts(cauchy_probabilities(64), 1000)
        second = expected_counts(cauchy_probabilities(64), 1000)
        np.testing.assert_array_equal(first, second)

    def test_close_to_expectation(self):
        probabilities = cauchy_probabilities(64)
        counts = expected_counts(probabilities, 100_000)
        np.testing.assert_allclose(counts, probabilities * 100_000, atol=1.0)


class TestClusteredGridPointsND:
    def test_shapes_and_bounds(self):
        from repro.data.synthetic import clustered_grid_points

        points = clustered_grid_points(16, 5000, random_state=91, dims=3)
        assert points.shape == (5000, 3)
        assert points.dtype.kind == "i"
        assert points.min() >= 0 and points.max() < 16

    def test_default_dims_is_two(self):
        from repro.data.synthetic import clustered_grid_points

        np.testing.assert_array_equal(
            clustered_grid_points(16, 500, random_state=92),
            clustered_grid_points(16, 500, random_state=92, dims=2),
        )

    def test_clusters_occupy_opposite_corners(self):
        from repro.data.synthetic import clustered_grid_points

        points = clustered_grid_points(64, 20_000, random_state=93, dims=3)
        # Axis 0 centres sit at 0.3 and 0.75 of the side; the overall mean
        # lands between them, far from uniform-over-two-tight-clusters only
        # if the clusters actually separated.
        first = points[points[:, 0] < 32]
        second = points[points[:, 0] >= 32]
        assert len(first) > 2000 and len(second) > 2000
        assert abs(first[:, 1].mean() - 0.7 * 64) < 6
        assert abs(second[:, 1].mean() - 0.25 * 64) < 6
