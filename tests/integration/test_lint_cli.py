"""Integration tests for the ``python -m repro lint`` gate.

The contract mirrored in CI: the committed tree is clean under an empty
baseline, and seeding one violation per rule family flips the exit code.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.devtools import lint as lintmod

PACKAGE_DIR = Path(repro.__file__).resolve().parent
REPO_ROOT = PACKAGE_DIR.parents[1]

#: One minimal violating snippet per rule family (all are plain library
#: code once copied outside the exempt directories).
SEEDED_VIOLATIONS = {
    "LDP-R001": """
        import numpy as np
        RNG = np.random.default_rng(42)
        """,
    "LDP-R002": """
        import math

        def variance(epsilon):
            return math.exp(epsilon)
        """,
    "LDP-R003": """
        class Mechanism:
            def partial_fit(self, items):
                self._collect(items)
                self.materialize()
        """,
    "LDP-R004": """
        import time

        async def worker():
            time.sleep(1)
        """,
    "LDP-R005": """
        class HalfSnapshot:
            def state_dict(self):
                return {}
        """,
    "LDP-R006": """
        def answer(start, end):
            raise ValueError("bad range")
        """,
    "LDP-R007": """
        from repro.kernels import register_kernel

        @register_kernel("numba", "orphan_kernel")
        def orphan_kernel(x):
            return x
        """,
}


class TestTreeIsClean:
    def test_lint_paths_finds_nothing_in_the_package(self):
        findings, stats = lintmod.lint_paths([PACKAGE_DIR])
        assert findings == [], "\n".join(f.render() for f in findings)
        assert stats["files"] > 50

    def test_cli_default_paths_exit_zero(self, capsys):
        assert lintmod.main([]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_committed_baseline_is_empty_and_accepted(self, capsys):
        baseline = REPO_ROOT / "LINT_BASELINE.json"
        assert baseline.exists()
        assert json.loads(baseline.read_text())["findings"] == []
        assert lintmod.main(["--baseline", str(baseline), str(PACKAGE_DIR)]) == 0

    def test_python_m_repro_lint_subprocess_exits_zero(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(PACKAGE_DIR.parent) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(PACKAGE_DIR)],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 finding(s)" in result.stdout


class TestSeededViolations:
    @pytest.mark.parametrize("rule", sorted(SEEDED_VIOLATIONS))
    def test_each_rule_family_flips_the_gate(self, rule, tmp_path, capsys):
        package_copy = tmp_path / "tree"
        package_copy.mkdir()
        seeded = package_copy / f"seeded_{rule.lower().replace('-', '_')}.py"
        seeded.write_text(
            textwrap.dedent(SEEDED_VIOLATIONS[rule]), encoding="utf-8"
        )
        assert lintmod.main([str(package_copy)]) == 1
        out = capsys.readouterr().out
        assert rule in out

    def test_seeded_violation_in_real_package_layout(self, tmp_path, capsys):
        """A violation dropped next to the real sources is caught when the
        tree and the extra file are linted together (what CI would see)."""
        seeded = tmp_path / "seeded_core_module.py"
        seeded.write_text(
            "import numpy as np\nRNG = np.random.default_rng(13)\n",
            encoding="utf-8",
        )
        assert lintmod.main([str(PACKAGE_DIR), str(seeded)]) == 1
        out = capsys.readouterr().out
        assert "LDP-R001" in out and "seeded_core_module" in out
