"""Prefix, CDF and quantile estimation (Section 4.7).

Prefix queries are range queries anchored at the start of the domain, and
quantiles are found by (binary) searching for the smallest prefix whose
estimated mass reaches the target ``phi``.  Any fitted
:class:`~repro.core.base.RangeQueryMechanism` can serve as the underlying
prefix oracle; the helpers here add the two practical refinements used by
the experiments:

* the estimated CDF is made monotone with a running maximum before the
  quantile search (noise can make raw prefix estimates locally decreasing,
  which would otherwise make binary search order-dependent);
* a whole batch of quantiles (the deciles of Section 5.5) is answered from a
  single CDF reconstruction instead of ``O(log D)`` prefix queries each.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.base import RangeQueryMechanism
from repro.exceptions import InvalidQueryError

__all__ = [
    "estimate_cdf",
    "monotone_cdf",
    "estimate_quantiles",
    "estimate_median",
    "DECILES",
]

#: The decile targets evaluated in Section 5.5 of the paper.
DECILES = tuple(round(0.1 * k, 1) for k in range(1, 10))


def estimate_cdf(mechanism: RangeQueryMechanism, monotone: bool = True) -> np.ndarray:
    """Estimated cumulative distribution ``F(b)`` for every item ``b``.

    Parameters
    ----------
    mechanism:
        A fitted range-query mechanism.
    monotone:
        Clamp the estimate to be non-decreasing and within ``[0, 1]`` (a
        benign post-processing step that cannot hurt accuracy and never
        touches the privacy guarantee, since it only processes released
        estimates).
    """
    cdf = mechanism.estimate_cdf()
    if monotone:
        return monotone_cdf(cdf)
    return cdf


def monotone_cdf(cdf: np.ndarray) -> np.ndarray:
    """Clamp a noisy CDF estimate to be a valid CDF (monotone, in [0, 1])."""
    cdf = np.asarray(cdf, dtype=np.float64)
    if cdf.ndim != 1 or cdf.size == 0:
        raise InvalidQueryError("cdf must be a non-empty one-dimensional array")
    return np.clip(np.maximum.accumulate(cdf), 0.0, 1.0)


def estimate_quantiles(
    mechanism: RangeQueryMechanism,
    targets: Sequence[float] = DECILES,
    monotone: bool = True,
) -> List[int]:
    """Estimate a batch of quantiles from one CDF reconstruction.

    Returns, for each target ``phi``, the smallest item whose estimated
    cumulative mass reaches ``phi``.
    """
    targets = [float(t) for t in targets]
    for target in targets:
        if not 0.0 <= target <= 1.0:
            raise InvalidQueryError(f"quantile targets must be in [0, 1], got {target!r}")
    cdf = estimate_cdf(mechanism, monotone=monotone)
    items = np.searchsorted(cdf, np.asarray(targets), side="left")
    # Clamp by the CDF's own length: mechanisms whose item domain differs
    # from `domain_size` (the 2-D grid reports its side length but walks the
    # flattened D^2 domain) would otherwise clip every quantile to the
    # wrong end of the domain.
    return [int(min(item, cdf.shape[0] - 1)) for item in items]


def estimate_median(mechanism: RangeQueryMechanism) -> int:
    """Convenience wrapper: the estimated 0.5-quantile."""
    return estimate_quantiles(mechanism, targets=(0.5,))[0]
