"""Unit tests for the flat range-query mechanism."""

import numpy as np
import pytest

from repro.core.flat import FlatMechanism
from repro.exceptions import InvalidQueryError, NotFittedError


class TestLifecycle:
    def test_not_fitted_errors(self):
        mechanism = FlatMechanism(1.0, 32)
        assert not mechanism.is_fitted
        with pytest.raises(NotFittedError):
            mechanism.answer_range(0, 3)
        with pytest.raises(NotFittedError):
            mechanism.estimate_frequencies()

    def test_fit_counts_sets_population(self, small_counts):
        mechanism = FlatMechanism(1.0, small_counts.shape[0])
        mechanism.fit_counts(small_counts, random_state=0)
        assert mechanism.is_fitted
        assert mechanism.n_users == int(small_counts.sum())

    def test_fit_items_equivalent_population(self, rng):
        items = rng.integers(0, 16, size=1000)
        mechanism = FlatMechanism(1.0, 16).fit_items(items, random_state=1)
        assert mechanism.n_users == 1000

    def test_default_name_mentions_oracle(self):
        assert "OUE" in FlatMechanism(1.0, 8).name
        assert "HRR" in FlatMechanism(1.0, 8, oracle="hrr").name


class TestAnswers:
    def test_range_answers_are_prefix_differences(self, small_counts):
        mechanism = FlatMechanism(1.1, small_counts.shape[0])
        mechanism.fit_counts(small_counts, random_state=0)
        frequencies = mechanism.estimate_frequencies()
        assert mechanism.answer_range(3, 10) == pytest.approx(frequencies[3:11].sum())

    def test_full_domain_close_to_one(self, small_counts):
        mechanism = FlatMechanism(1.1, small_counts.shape[0])
        mechanism.fit_counts(small_counts, random_state=0)
        assert mechanism.answer_range(0, small_counts.shape[0] - 1) == pytest.approx(1.0, abs=0.1)

    def test_accuracy_on_large_population(self, medium_counts):
        domain = medium_counts.shape[0]
        mechanism = FlatMechanism(1.1, domain).fit_counts(medium_counts, random_state=3)
        truth = medium_counts[10:21].sum() / medium_counts.sum()
        assert mechanism.answer_range(10, 20) == pytest.approx(truth, abs=0.05)

    def test_answer_ranges_vectorised_matches_scalar(self, small_counts):
        mechanism = FlatMechanism(1.0, small_counts.shape[0])
        mechanism.fit_counts(small_counts, random_state=0)
        queries = np.array([[0, 5], [3, 3], [10, 63]])
        vectorised = mechanism.answer_ranges(queries)
        scalar = [mechanism.answer_range(a, b) for a, b in queries]
        np.testing.assert_allclose(vectorised, scalar)

    def test_estimate_cdf_reuses_prefix_bit_exactly(self, small_counts):
        """The CDF is the materialized prefix array, not a re-derivation."""
        mechanism = FlatMechanism(1.0, small_counts.shape[0])
        mechanism.fit_counts(small_counts, random_state=0)
        np.testing.assert_array_equal(
            mechanism.estimate_cdf(), np.cumsum(mechanism.estimate_frequencies())
        )
        assert mechanism.estimate_cdf().shape == (small_counts.shape[0],)

    def test_invalid_queries(self, small_counts):
        mechanism = FlatMechanism(1.0, small_counts.shape[0])
        mechanism.fit_counts(small_counts, random_state=0)
        with pytest.raises(InvalidQueryError):
            mechanism.answer_range(5, 4)
        with pytest.raises(InvalidQueryError):
            mechanism.answer_range(0, 64)
        with pytest.raises(InvalidQueryError):
            mechanism.answer_ranges(np.array([[0, 64]]))

    def test_per_query_variance_is_linear(self, small_counts):
        mechanism = FlatMechanism(1.0, small_counts.shape[0])
        mechanism.fit_counts(small_counts, random_state=0)
        assert mechanism.per_query_variance(10) == pytest.approx(
            10 * mechanism.per_query_variance(1)
        )

    def test_per_user_mode(self, rng):
        items = rng.integers(0, 8, size=2000)
        mechanism = FlatMechanism(2.0, 8).fit_items(items, random_state=rng, mode="per_user")
        truth = np.bincount(items, minlength=8) / 2000
        np.testing.assert_allclose(mechanism.estimate_frequencies(), truth, atol=0.08)

    def test_malformed_query_array_raises_invalid_query(self, small_counts):
        # Regression: the prefix-sum fast path used to raise a bare
        # ValueError, breaking the library's exception taxonomy.
        mechanism = FlatMechanism(1.0, small_counts.shape[0])
        mechanism.fit_counts(small_counts, random_state=0)
        with pytest.raises(InvalidQueryError):
            mechanism.answer_ranges(np.array([1, 2, 3]))
        with pytest.raises(InvalidQueryError):
            mechanism.answer_ranges(np.zeros((2, 3), dtype=np.int64))

    def test_float_items_rejected(self):
        # Regression: float arrays used to be silently truncated by
        # astype(int64) — item 2.9 became 2 with no error.
        mechanism = FlatMechanism(1.0, 8)
        with pytest.raises(InvalidQueryError):
            mechanism.fit_items(np.array([0.0, 1.5, 2.9]))
        with pytest.raises(InvalidQueryError):
            mechanism.fit_items(np.array([1.0, 2.0]))  # integral values, float dtype
        # Integer dtypes of any width stay accepted.
        mechanism.fit_items(np.array([1, 2, 3], dtype=np.int16), random_state=0)
        assert mechanism.n_users == 3

    def test_bool_items_still_accepted(self):
        # Booleans cast to 0/1 without loss, so they keep working (e.g. a
        # binary indicator attribute over a two-item domain).
        mechanism = FlatMechanism(1.0, 2)
        mechanism.fit_items(np.array([True, False, True]), random_state=0)
        assert mechanism.n_users == 3
