"""Theoretical error model and empirical error metrics."""

from repro.analysis.metrics import (
    ErrorSummary,
    mean_absolute_error,
    mean_squared_error,
    quantile_errors,
    summarize_errors,
)
from repro.analysis.variance import (
    flat_average_variance,
    flat_range_variance,
    frequency_oracle_variance,
    grid2d_rectangle_variance,
    grid_nd_box_variance,
    haar_range_variance,
    hh_average_variance,
    hh_consistent_range_variance,
    hh_range_variance,
    optimal_branching_factor,
    optimal_branching_factor_consistent,
)

__all__ = [
    "frequency_oracle_variance",
    "flat_range_variance",
    "flat_average_variance",
    "hh_range_variance",
    "hh_consistent_range_variance",
    "hh_average_variance",
    "haar_range_variance",
    "grid2d_rectangle_variance",
    "grid_nd_box_variance",
    "optimal_branching_factor",
    "optimal_branching_factor_consistent",
    "mean_squared_error",
    "mean_absolute_error",
    "quantile_errors",
    "summarize_errors",
    "ErrorSummary",
]
