"""Unit tests for the coalesced query executor (repro.service.query)."""

import asyncio

import numpy as np
import pytest

from repro.core.factory import mechanism_from_spec
from repro.data.workloads import random_boxes
from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.service import QueryCoalescer

SIDE = 16
DOMAIN = 64


@pytest.fixture(scope="module")
def grid():
    mechanism = mechanism_from_spec("grid2d_2", epsilon=1.1, domain_size=SIDE)
    points = np.random.default_rng(5).integers(0, SIDE, size=(4000, 2))
    return mechanism.fit_points(points, random_state=6).materialize()


@pytest.fixture(scope="module")
def flat():
    mechanism = mechanism_from_spec("flat_oue", epsilon=1.1, domain_size=DOMAIN)
    items = np.random.default_rng(7).integers(0, DOMAIN, size=4000)
    return mechanism.fit_items(items, random_state=8).materialize()


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_boxes_share_one_batched_call(self, grid):
        boxes = random_boxes(SIDE, 24, dims=2, random_state=9)
        serial = grid.answer_boxes(boxes)
        coalescer = QueryCoalescer()

        async def main():
            parts = np.array_split(boxes, 4)
            return await asyncio.gather(
                *(coalescer.answer_boxes(grid, part) for part in parts)
            )

        coalesced = np.concatenate(run(main()))
        np.testing.assert_array_equal(coalesced, serial)
        stats = coalescer.stats()
        assert stats["flushes"] == 1
        assert stats["coalesced_calls"] == 1
        assert stats["coalesced_queries"] == 24

    def test_concurrent_ranges_share_one_batched_call(self, flat):
        queries = np.sort(
            np.random.default_rng(10).integers(0, DOMAIN, size=(20, 2)), axis=1
        )
        serial = flat.answer_ranges(queries)
        coalescer = QueryCoalescer()

        async def main():
            parts = np.array_split(queries, 5)
            return await asyncio.gather(
                *(coalescer.answer_ranges(flat, part) for part in parts)
            )

        np.testing.assert_array_equal(np.concatenate(run(main())), serial)
        assert coalescer.stats()["coalesced_calls"] == 1

    def test_single_waiter_answered_without_concatenation(self, grid):
        boxes = random_boxes(SIDE, 6, dims=2, random_state=11)
        coalescer = QueryCoalescer()
        answers = run(coalescer.answer_boxes(grid, boxes))
        np.testing.assert_array_equal(answers, grid.answer_boxes(boxes))
        stats = coalescer.stats()
        assert stats["flushes"] == 1
        assert stats["coalesced_calls"] == 0  # lone waiter: direct call

    def test_different_mechanisms_grouped_separately(self, grid, flat):
        boxes = random_boxes(SIDE, 8, dims=2, random_state=12)
        queries = np.sort(
            np.random.default_rng(13).integers(0, DOMAIN, size=(8, 2)), axis=1
        )
        coalescer = QueryCoalescer()

        async def main():
            return await asyncio.gather(
                coalescer.answer_boxes(grid, boxes),
                coalescer.answer_ranges(flat, queries),
            )

        box_answers, range_answers = run(main())
        np.testing.assert_array_equal(box_answers, grid.answer_boxes(boxes))
        np.testing.assert_array_equal(range_answers, flat.answer_ranges(queries))

    def test_sequential_awaits_flush_separately(self, grid):
        boxes = random_boxes(SIDE, 4, dims=2, random_state=14)
        coalescer = QueryCoalescer()

        async def main():
            first = await coalescer.answer_boxes(grid, boxes)
            second = await coalescer.answer_boxes(grid, boxes)
            return first, second

        first, second = run(main())
        np.testing.assert_array_equal(first, second)
        assert coalescer.stats()["flushes"] == 2


class TestErrorIsolation:
    def test_bad_waiter_does_not_poison_the_batch(self, grid):
        good = random_boxes(SIDE, 6, dims=2, random_state=15)
        bad = np.array([[0, SIDE + 5, 0, SIDE + 5]], dtype=np.int64)  # out of domain
        coalescer = QueryCoalescer()

        async def main():
            return await asyncio.gather(
                coalescer.answer_boxes(grid, good),
                coalescer.answer_boxes(grid, bad),
                return_exceptions=True,
            )

        good_answers, bad_outcome = run(main())
        np.testing.assert_array_equal(good_answers, grid.answer_boxes(good))
        assert isinstance(bad_outcome, InvalidQueryError)

    def test_shape_error_raised_immediately(self, grid):
        coalescer = QueryCoalescer()
        with pytest.raises(InvalidQueryError):
            run(coalescer.answer_ranges(grid, np.zeros((3, 3), dtype=np.int64)))

    def test_non_mechanism_rejected(self):
        coalescer = QueryCoalescer()
        with pytest.raises(ConfigurationError):
            run(coalescer.answer_boxes(object(), np.zeros((1, 4), dtype=np.int64)))

    def test_missing_surface_rejected(self, flat):
        coalescer = QueryCoalescer()
        with pytest.raises(InvalidQueryError):
            run(coalescer.answer_boxes(flat, np.zeros((1, 4), dtype=np.int64)))


class TestStats:
    def test_counters_start_at_zero(self):
        assert QueryCoalescer().stats() == {
            "flushes": 0,
            "coalesced_queries": 0,
            "coalesced_calls": 0,
        }
