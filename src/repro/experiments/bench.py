"""Repo-wide benchmark harness: ``python -m repro bench --suite <name>``.

Every suite runs a fixed set of hot-path benchmarks — per-oracle encode and
aggregate throughput (packed vs dense unary payloads), the blocked OLH
decode, sharded collection with a merge reduce, constrained inference, the
2-D grid rectangle workload (one-shot fit, batched rectangle answering and
sharded reduce with a checkpoint/restore bit-identity check), small-batch
streaming ingest under lazy materialization (vs the eager
refresh-per-batch baseline, with a lazy-vs-eager bit-identity check), an
end-to-end HTTP batch ingest against a localhost service (raw p50/p99
request latency, with explicit mid-run scale events and a static-replay
bit-identity check), the hot read path (the generation-keyed answer cache
on a repeated box workload, and live HTTP query serving with p50/p99 read
latency, a JSON-vs-npy wire comparison and cached/coalesced bit-identity
checks), and an end-to-end epsilon grid (serial vs parallel)
— and writes the measurements to ``BENCH_<suite>.json`` so the perf
trajectory of the repo is recorded rather than anecdotal.

:func:`compare_payloads` diffs a fresh run against a stored baseline
payload and flags per-record throughput regressions;
``python -m repro bench --suite smoke --compare BENCH_smoke.json`` prints
the diff and exits non-zero when any record dropped below the threshold,
which is what the CI bench job runs on every PR.

Output schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "suite": "smoke",
      "created_at_unix": 1706000000.0,
      "environment": {"python": ..., "numpy": ..., "platform": ...,
                       "cpu_count": ..., "git_commit": ...},
      "parameters": {... the suite's size knobs ...},
      "results": [
        {"name": "unary_aggregate_packed", "wall_seconds": ...,
         "work_items": ..., "throughput": ..., "unit": "users/s",
         "rss_max_kb": ..., "extras": {...}},
        ...
      ],
      "checks": {"packed_payload_ratio": ..., "packed_aggregate_speedup": ...,
                  "parallel_grid_bit_identical": true, ...}
    }

``throughput`` is ``work_items`` divided by the best wall time over the
suite's repeat count; ``rss_max_kb`` is the process peak RSS observed after
the benchmark (cumulative maximum — Unix ``ru_maxrss`` never decreases).
Exception: the two ``epsilon_grid_*`` entries are timed once each (a full
grid is too heavy to repeat), so their walls include one-time costs such as
process-pool startup — compare them across commits with that in mind.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import kernels
from repro.data.workloads import random_range_queries
from repro.exceptions import ConfigurationError
from repro.experiments.config import DataConfig
from repro.experiments.runner import run_epsilon_grid
from repro.experiments.transport import resolve_transport, shm_available
from repro.frequency_oracles.registry import make_oracle
from repro.hierarchy.consistency import enforce_consistency
from repro.streaming import ShardedCollector

try:  # pragma: no cover - resource is Unix-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

__all__ = ["SUITES", "BenchRecord", "compare_payloads", "load_payload", "run_suite"]

#: Size knobs per named suite.  ``smoke`` finishes in well under a minute on
#: a laptop and is what CI runs on every PR; ``full`` is for before/after
#: numbers on real hardware.
SUITES: Dict[str, Dict[str, object]] = {
    "smoke": dict(
        repeats=3,
        epsilon=1.1,
        encode_users=20_000,
        encode_domain=256,
        unary_users=50_000,
        unary_domain=1024,
        olh_users=4_000,
        olh_domain=256,
        shard_users=100_000,
        shard_domain=1024,
        shards=4,
        consistency_branching=4,
        consistency_height=8,
        grid_users=100_000,
        grid_domain=256,
        grid_specs=("hhc_4", "haar"),
        grid_epsilons=(0.5, 1.1),
        grid_repetitions=3,
        grid2d_users=50_000,
        grid2d_side=32,
        grid2d_branching=2,
        grid2d_shards=4,
        grid2d_batches=8,
        grid2d_rectangles=2000,
        gridnd_users=40_000,
        gridnd_side=16,
        gridnd_dims=3,
        gridnd_branching=4,
        gridnd_shards=3,
        gridnd_batches=6,
        gridnd_boxes=400,
        planner_branchings=(2, 4, 16),
        stream_batch_users=6,
        stream_hh_domain=16384,
        stream_hh_branching=2,
        stream_hh_batches=300,
        stream_grid_side=128,
        stream_grid_branching=2,
        stream_grid_batches=200,
        http_domain=256,
        http_shards=2,
        http_queue_size=8,
        http_batches=60,
        http_batch_users=500,
        cache_side=32,
        cache_users=30_000,
        cache_boxes=64,
        cache_workload_repeat=25,
        query_side=32,
        query_points=15_000,
        query_point_batches=6,
        query_boxes=32,
        query_requests=30,
        query_shards=2,
        query_queue_size=8,
        kernel_runs_queries=4000,
        kernel_runs_branching=2,
        kernel_runs_height=16,
    ),
    "full": dict(
        repeats=5,
        epsilon=1.1,
        encode_users=100_000,
        encode_domain=1024,
        unary_users=200_000,
        unary_domain=1024,
        olh_users=20_000,
        olh_domain=256,
        shard_users=1_000_000,
        shard_domain=4096,
        shards=8,
        consistency_branching=4,
        consistency_height=10,
        grid_users=1 << 17,
        grid_domain=1024,
        grid_specs=("hhc_4", "hh_4", "haar", "flat_oue"),
        grid_epsilons=(0.2, 0.6, 1.1, 1.4),
        grid_repetitions=3,
        grid2d_users=500_000,
        grid2d_side=64,
        grid2d_branching=2,
        grid2d_shards=8,
        grid2d_batches=16,
        grid2d_rectangles=5000,
        gridnd_users=200_000,
        gridnd_side=32,
        gridnd_dims=3,
        gridnd_branching=4,
        gridnd_shards=8,
        gridnd_batches=16,
        gridnd_boxes=2000,
        planner_branchings=(2, 4, 8, 16),
        stream_batch_users=8,
        stream_hh_domain=32768,
        stream_hh_branching=2,
        stream_hh_batches=600,
        stream_grid_side=256,
        stream_grid_branching=2,
        stream_grid_batches=300,
        http_domain=1024,
        http_shards=4,
        http_queue_size=8,
        http_batches=200,
        http_batch_users=2000,
        cache_side=64,
        cache_users=200_000,
        cache_boxes=400,
        cache_workload_repeat=50,
        query_side=64,
        query_points=100_000,
        query_point_batches=10,
        query_boxes=200,
        query_requests=150,
        query_shards=4,
        query_queue_size=8,
        kernel_runs_queries=20_000,
        kernel_runs_branching=2,
        kernel_runs_height=20,
    ),
}


@dataclass
class BenchRecord:
    """One benchmark's measurement."""

    name: str
    wall_seconds: float
    work_items: int
    unit: str
    rss_max_kb: int = 0
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.work_items / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "work_items": self.work_items,
            "throughput": self.throughput,
            "unit": self.unit,
            "rss_max_kb": self.rss_max_kb,
            "extras": self.extras,
        }


def _rss_max_kb() -> int:
    if resource is None:  # pragma: no cover - non-Unix
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _best_wall(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn`` (first call warms caches)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _git_commit() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _environment() -> Dict[str, object]:
    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_commit": _git_commit(),
        # Which kernel backend produced the numbers — a numba payload and a
        # numpy payload are not comparable without this.
        "kernel_backend": kernels.backend_info(),
    }


# ----------------------------------------------------------------------
# Individual benchmarks.  Each returns one or more BenchRecords.
# ----------------------------------------------------------------------
def _bench_encode(params: dict) -> List[BenchRecord]:
    n_users = int(params["encode_users"])
    domain = int(params["encode_domain"])
    epsilon = float(params["epsilon"])
    records = []
    for name in ("sue", "oue", "olh", "hrr"):
        oracle = make_oracle(name, epsilon=epsilon, domain_size=domain)
        values = np.random.default_rng(1).integers(0, domain, size=n_users)
        rng = np.random.default_rng(2)
        wall = _best_wall(
            lambda: oracle.encode_batch(values, rng), int(params["repeats"])
        )
        records.append(
            BenchRecord(
                name=f"encode_{name}",
                wall_seconds=wall,
                work_items=n_users,
                unit="users/s",
                rss_max_kb=_rss_max_kb(),
                extras={"domain_size": domain},
            )
        )
    return records


def _bench_unary_aggregate(params: dict) -> List[BenchRecord]:
    """Packed vs dense unary aggregation — the tentpole's headline numbers."""
    n_users = int(params["unary_users"])
    domain = int(params["unary_domain"])
    oracle = make_oracle("oue", epsilon=float(params["epsilon"]), domain_size=domain)
    values = np.random.default_rng(3).integers(0, domain, size=n_users)
    packed = oracle.encode_batch(values, np.random.default_rng(4), packed=True)
    dense = oracle.encode_batch(values, np.random.default_rng(4), packed=False)
    packed_bytes = int(packed.payload["packed_bits"].nbytes)
    dense_bytes = int(dense.payload["bits"].nbytes)
    repeats = int(params["repeats"])
    wall_dense = _best_wall(lambda: oracle.accumulator().add(dense), repeats)
    wall_packed = _best_wall(lambda: oracle.accumulator().add(packed), repeats)
    shared = {"domain_size": domain, "payload_bytes_dense": dense_bytes,
              "payload_bytes_packed": packed_bytes}
    return [
        BenchRecord(
            name="unary_aggregate_dense",
            wall_seconds=wall_dense,
            work_items=n_users,
            unit="users/s",
            rss_max_kb=_rss_max_kb(),
            extras=dict(shared, payload_bytes=dense_bytes),
        ),
        BenchRecord(
            name="unary_aggregate_packed",
            wall_seconds=wall_packed,
            work_items=n_users,
            unit="users/s",
            rss_max_kb=_rss_max_kb(),
            extras=dict(
                shared,
                payload_bytes=packed_bytes,
                payload_ratio=dense_bytes / packed_bytes,
                speedup_vs_dense=wall_dense / wall_packed,
            ),
        ),
    ]


def _bench_olh_decode(params: dict) -> List[BenchRecord]:
    n_users = int(params["olh_users"])
    domain = int(params["olh_domain"])
    oracle = make_oracle("olh", epsilon=float(params["epsilon"]), domain_size=domain)
    values = np.random.default_rng(5).integers(0, domain, size=n_users)
    reports = oracle.encode_batch(values, np.random.default_rng(6))
    wall = _best_wall(
        lambda: oracle.accumulator().add(reports), int(params["repeats"])
    )
    return [
        BenchRecord(
            name="olh_decode",
            wall_seconds=wall,
            work_items=n_users,
            unit="users/s",
            rss_max_kb=_rss_max_kb(),
            extras={"domain_size": domain},
        )
    ]


def _bench_kernels(params: dict) -> List[BenchRecord]:
    """Per-kernel microbenches across every available backend.

    Each of the three registered kernels is timed on every backend the
    process can load; the record's headline wall is the **active** backend's
    (what library calls actually dispatch to), with per-backend walls, the
    compiled-vs-numpy speedup and a bit-identity verdict in ``extras``.  The
    verdict feeds the ``kernels_bit_identical`` check: a compiled kernel
    whose output differs from the numpy reference by even one bit fails the
    suite's contract, whatever its speed.
    """
    from repro.frequency_oracles.local_hashing import (
        _PRIME,
        OLH_DECODE_TARGET_BYTES,
    )
    from repro.frequency_oracles.unary import UNARY_SUM_BLOCK_TARGET_BYTES

    repeats = int(params["repeats"])
    backends = kernels.available_backends()
    active = kernels.active_backend()

    n_users = int(params["unary_users"])
    unary_domain = int(params["unary_domain"])
    bits = (np.random.default_rng(40).random((n_users, unary_domain)) < 0.3).astype(
        np.uint8
    )
    packed = np.packbits(bits, axis=1)

    olh_users = int(params["olh_users"])
    olh_domain = int(params["olh_domain"])
    olh_rng = np.random.default_rng(41)
    prime = np.int64((1 << 31) - 1)
    assert prime == _PRIME
    a = olh_rng.integers(1, prime, size=olh_users, dtype=np.int64)
    b = olh_rng.integers(0, prime, size=olh_users, dtype=np.int64)
    symbols = olh_rng.integers(0, 8, size=olh_users, dtype=np.int64)

    branching = int(params["kernel_runs_branching"])
    height = int(params["kernel_runs_height"])
    run_domain = branching**height
    runs_rng = np.random.default_rng(42)
    endpoints = np.sort(
        runs_rng.integers(0, run_domain, size=(int(params["kernel_runs_queries"]), 2)),
        axis=1,
    )

    cases = {
        "unary_column_sums": (
            (packed, unary_domain, UNARY_SUM_BLOCK_TARGET_BYTES),
            n_users,
            "users/s",
            {"domain_size": unary_domain},
        ),
        "olh_decode": (
            (a, b, symbols, olh_domain, 8, int(prime), OLH_DECODE_TARGET_BYTES),
            olh_users,
            "users/s",
            {"domain_size": olh_domain},
        ),
        "badic_axis_runs": (
            (endpoints[:, 0], endpoints[:, 1], branching, height),
            int(endpoints.shape[0]),
            "queries/s",
            {"branching": branching, "height": height},
        ),
    }

    records = []
    for name, (args, work_items, unit, shared) in cases.items():
        reference = kernels.get_kernel(name, "numpy")(*args)
        reference = reference if isinstance(reference, tuple) else (reference,)
        walls: Dict[str, float] = {}
        identical = True
        for backend in backends:
            fn = kernels.get_kernel(name, backend)
            out = fn(*args)  # warm call: triggers the jit compile off-clock
            out = out if isinstance(out, tuple) else (out,)
            identical = identical and all(
                np.array_equal(got, want) for got, want in zip(out, reference)
            )
            walls[backend] = _best_wall(lambda: fn(*args), repeats)
        records.append(
            BenchRecord(
                name=f"kernel_{name}",
                wall_seconds=walls[active],
                work_items=work_items,
                unit=unit,
                rss_max_kb=_rss_max_kb(),
                extras=dict(
                    shared,
                    backend=active,
                    backends={key: wall for key, wall in walls.items()},
                    speedup_vs_numpy=walls["numpy"] / walls[active],
                    bit_identical=identical,
                ),
            )
        )
    return records


def _bench_shard_reduce(params: dict) -> List[BenchRecord]:
    """Sharded collection of a full population plus the merge reduce."""
    n_users = int(params["shard_users"])
    domain = int(params["shard_domain"])
    n_shards = int(params["shards"])
    probabilities = DataConfig().probabilities(domain)
    items = np.random.default_rng(7).choice(domain, size=n_users, p=probabilities)
    batches = np.array_split(items, n_shards * 4)

    def run() -> None:
        collector = ShardedCollector(
            "hh_4",
            epsilon=float(params["epsilon"]),
            domain_size=domain,
            n_shards=n_shards,
            random_state=8,
        )
        for batch in batches:
            collector.submit(batch)
        collector.reduce()

    wall = _best_wall(run, int(params["repeats"]))
    return [
        BenchRecord(
            name="shard_collect_reduce",
            wall_seconds=wall,
            work_items=n_users,
            unit="users/s",
            rss_max_kb=_rss_max_kb(),
            extras={"domain_size": domain, "shards": n_shards},
        )
    ]


def _bench_consistency(params: dict) -> List[BenchRecord]:
    branching = int(params["consistency_branching"])
    height = int(params["consistency_height"])
    rng = np.random.default_rng(9)
    levels = [rng.random(branching**depth) for depth in range(1, height + 1)]
    n_nodes = sum(level.size for level in levels)
    wall = _best_wall(
        lambda: enforce_consistency(levels, branching, root_value=1.0),
        int(params["repeats"]),
    )
    return [
        BenchRecord(
            name="consistency_enforce",
            wall_seconds=wall,
            work_items=n_nodes,
            unit="nodes/s",
            rss_max_kb=_rss_max_kb(),
            extras={"branching": branching, "height": height},
        )
    ]


def _bench_grid2d(params: dict) -> List[BenchRecord]:
    """Rectangle-workload throughput: one-shot 2-D fit and sharded reduce.

    Also verifies (and records under ``extras``) that a checkpoint taken
    mid-stream and restored reproduces the uninterrupted sharded run's leaf
    heatmap bit-for-bit — the 2-D crash-recovery contract.
    """
    from repro.core.multidim import HierarchicalGrid2D
    from repro.data.synthetic import clustered_grid_points
    from repro.data.workloads import random_rectangles

    n_users = int(params["grid2d_users"])
    side = int(params["grid2d_side"])
    branching = int(params["grid2d_branching"])
    n_shards = int(params["grid2d_shards"])
    epsilon = float(params["epsilon"])
    repeats = int(params["repeats"])
    points = clustered_grid_points(side, n_users, random_state=12)
    flat = HierarchicalGrid2D(epsilon, side, branching=branching).flatten_points(points)
    batches = np.array_split(flat, max(2, int(params["grid2d_batches"])))

    wall_fit = _best_wall(
        lambda: HierarchicalGrid2D(epsilon, side, branching=branching).fit_points(
            points, random_state=13
        ),
        repeats,
    )

    # Rectangle-workload answering: the batched per-level-pair gathers vs a
    # Python loop over answer_rectangle (timed once — it is the slow side).
    fitted = HierarchicalGrid2D(epsilon, side, branching=branching).fit_points(
        points, random_state=13
    )
    rectangles = random_rectangles(side, int(params["grid2d_rectangles"]), random_state=15)
    wall_rect = _best_wall(lambda: fitted.answer_rectangles(rectangles), repeats)
    loop_start = time.perf_counter()
    for x0, x1, y0, y1 in rectangles:
        fitted.answer_rectangle((int(x0), int(x1)), (int(y0), int(y1)))
    wall_rect_loop = time.perf_counter() - loop_start

    def sharded_run(interrupt: bool) -> HierarchicalGrid2D:
        collector = ShardedCollector(
            f"grid2d_{branching}",
            epsilon=epsilon,
            domain_size=side,
            n_shards=n_shards,
            random_state=14,
        )
        half = len(batches) // 2
        for batch in batches[:half]:
            collector.submit(batch)
        if interrupt:
            collector = ShardedCollector.from_checkpoint_bytes(
                collector.checkpoint_bytes()
            )
        for batch in batches[half:]:
            collector.submit(batch)
        return collector.reduce()

    wall_sharded = _best_wall(lambda: sharded_run(False), repeats)
    restore_identical = bool(
        np.array_equal(
            sharded_run(False).estimate_heatmap(),
            sharded_run(True).estimate_heatmap(),
        )
    )
    shared = {"side": side, "branching": branching}
    return [
        BenchRecord(
            name="grid2d_fit_points",
            wall_seconds=wall_fit,
            work_items=n_users,
            unit="users/s",
            rss_max_kb=_rss_max_kb(),
            extras=dict(shared),
        ),
        BenchRecord(
            name="grid2d_rectangle_queries",
            wall_seconds=wall_rect,
            work_items=int(rectangles.shape[0]),
            unit="queries/s",
            rss_max_kb=_rss_max_kb(),
            extras=dict(
                shared,
                per_query_loop_wall_seconds=wall_rect_loop,
                speedup_vs_per_query_loop=wall_rect_loop / wall_rect,
            ),
        ),
        BenchRecord(
            name="grid2d_shard_collect_reduce",
            wall_seconds=wall_sharded,
            work_items=n_users,
            unit="users/s",
            rss_max_kb=_rss_max_kb(),
            extras=dict(
                shared,
                shards=n_shards,
                batches=len(batches),
                restore_bit_identical=restore_identical,
            ),
        ),
    ]


def _bench_gridnd(params: dict) -> List[BenchRecord]:
    """d-dimensional grid throughput plus the two refactor contracts.

    ``gridnd_fit_points`` times the d = 3 one-shot fit, then runs the full
    end-to-end pipeline — shard ingest of d-column points, reduce, persist
    round-trip, box queries — recording under ``extras`` that the restored
    mechanism answers the box workload bit-for-bit, and that
    ``HierarchicalGridND(dims=2)`` reproduces ``HierarchicalGrid2D``
    rectangle answers bit-for-bit (the d = 2 specialization contract).

    ``planner_pick_vs_worst`` plans the same box workload with
    :func:`repro.planner.plan`, fits the best- and worst-ranked candidates
    on the same population, and records both measured errors — the check
    gate asserts the closed-form ranking picked a measurably better
    configuration.
    """
    from repro.core.factory import mechanism_from_spec
    from repro.core.multidim import HierarchicalGrid2D, HierarchicalGridND
    from repro.data.synthetic import clustered_grid_points
    from repro.data.workloads import BoxWorkload, evaluate_exact_boxes, random_boxes
    from repro.persist import snapshots
    from repro.planner import plan

    n_users = int(params["gridnd_users"])
    side = int(params["gridnd_side"])
    dims = int(params["gridnd_dims"])
    branching = int(params["gridnd_branching"])
    n_shards = int(params["gridnd_shards"])
    epsilon = float(params["epsilon"])
    repeats = int(params["repeats"])
    points = clustered_grid_points(side, n_users, random_state=21, dims=dims)
    boxes = random_boxes(side, int(params["gridnd_boxes"]), dims=dims, random_state=22)

    wall_fit = _best_wall(
        lambda: HierarchicalGridND(
            epsilon, side, dims=dims, branching=branching
        ).fit_points(points, random_state=23),
        repeats,
    )

    # End-to-end: d-column shard ingest -> reduce -> persist round-trip ->
    # box workload, answered bit-identically by the restored mechanism.
    collector = ShardedCollector(
        f"grid{dims}d_{branching}",
        epsilon=epsilon,
        domain_size=side,
        n_shards=n_shards,
        random_state=24,
    )
    for batch in np.array_split(points, max(2, int(params["gridnd_batches"]))):
        collector.submit_points(batch)
    reduced = collector.reduce()
    answers = reduced.answer_boxes(boxes)
    restored = snapshots.from_bytes(snapshots.to_bytes(reduced))
    restore_identical = bool(np.array_equal(answers, restored.answer_boxes(boxes)))

    # d = 2 specialization contract: the generic machinery must reproduce
    # the historical 2-D mechanism bit-for-bit on the same random streams.
    side_2d = int(params["grid2d_side"])
    points_2d = clustered_grid_points(side_2d, n_users, random_state=25)
    rectangles = random_boxes(side_2d, int(params["gridnd_boxes"]), dims=2, random_state=26)
    generic = HierarchicalGridND(
        epsilon, side_2d, dims=2, branching=branching
    ).fit_points(points_2d, random_state=27)
    special = HierarchicalGrid2D(epsilon, side_2d, branching=branching).fit_points(
        points_2d, random_state=27
    )
    d2_identical = bool(
        np.array_equal(
            generic.answer_boxes(rectangles), special.answer_rectangles(rectangles)
        )
    )

    # Planner: rank by closed-form bound, then measure best vs worst on the
    # same population and workload.
    workload = BoxWorkload(side, dims, boxes, name="bench-boxes")
    start = time.perf_counter()
    chosen = plan(
        workload,
        n_users=n_users,
        epsilon=epsilon,
        branchings=tuple(params["planner_branchings"]),
    )
    wall_plan = time.perf_counter() - start
    exact_counts = np.zeros((side,) * dims)
    np.add.at(exact_counts, tuple(points.T), 1)
    truth = evaluate_exact_boxes(exact_counts, boxes)

    def measured_mse(spec: str) -> float:
        mechanism = mechanism_from_spec(spec, epsilon=epsilon, domain_size=side)
        mechanism.fit_points(points, random_state=28)
        return float(np.mean((mechanism.answer_boxes(boxes) - truth) ** 2))

    best_mse = measured_mse(chosen.best.spec)
    worst_mse = measured_mse(chosen.worst.spec)

    shared = {"side": side, "dims": dims, "branching": branching}
    return [
        BenchRecord(
            name="gridnd_fit_points",
            wall_seconds=wall_fit,
            work_items=n_users,
            unit="users/s",
            rss_max_kb=_rss_max_kb(),
            extras=dict(
                shared,
                shards=n_shards,
                boxes=int(boxes.shape[0]),
                restore_bit_identical=restore_identical,
                d2_bit_identical=d2_identical,
            ),
        ),
        BenchRecord(
            name="planner_pick_vs_worst",
            wall_seconds=wall_plan,
            work_items=len(chosen.candidates),
            unit="candidates/s",
            rss_max_kb=_rss_max_kb(),
            extras=dict(
                shared,
                best_spec=chosen.best.spec,
                worst_spec=chosen.worst.spec,
                best_predicted_variance=chosen.best.predicted_variance,
                worst_predicted_variance=chosen.worst.predicted_variance,
                best_measured_mse=best_mse,
                worst_measured_mse=worst_mse,
                planner_pick_beats_worst=bool(best_mse < worst_mse),
            ),
        ),
    ]


def _bench_stream_ingest(params: dict) -> List[BenchRecord]:
    """Small-batch streaming ingest: lazy materialization vs eager refresh.

    The headline numbers of the lazy-materialization work: a stream of tiny
    ``per_user``-mode batches (real local-protocol reports trickling in) is
    absorbed with pure statistics accumulation plus one final
    materialization — the new write path — versus the previous behaviour of
    rebuilding the post-processed estimates (consistency least squares /
    double-cumsum per level pair) after every batch, emulated by calling
    ``materialize()`` per batch.  Both runs replay the same seed, so the
    final estimates must be bit-identical; the comparison is recorded in
    ``extras`` and surfaces as the ``lazy_vs_eager_bit_identical`` check.
    """
    from repro.core.hierarchical import HierarchicalHistogramMechanism
    from repro.core.multidim import HierarchicalGrid2D
    from repro.data.synthetic import clustered_grid_points
    from repro.data.workloads import random_rectangles

    repeats = int(params["repeats"])
    batch_users = int(params["stream_batch_users"])
    epsilon = float(params["epsilon"])
    records: List[BenchRecord] = []

    def run_stream(make, batches, eager: bool):
        mechanism = make()
        rng = np.random.default_rng(21)
        for batch in batches:
            mechanism.partial_fit(batch, rng, mode="per_user")
            if eager:
                mechanism.materialize()
        mechanism.materialize()
        return mechanism

    def measure(name, make, batches, extras, read_surfaces) -> None:
        wall_lazy = _best_wall(lambda: run_stream(make, batches, False), repeats)
        wall_eager = _best_wall(lambda: run_stream(make, batches, True), repeats)
        lazy = run_stream(make, batches, False)
        eager = run_stream(make, batches, True)
        identical = all(
            np.array_equal(read(lazy), read(eager)) for read in read_surfaces
        )
        records.append(
            BenchRecord(
                name=name,
                wall_seconds=wall_lazy,
                work_items=sum(int(batch.shape[0]) for batch in batches),
                unit="users/s",
                rss_max_kb=_rss_max_kb(),
                extras=dict(
                    extras,
                    mode="per_user",
                    batch_users=batch_users,
                    n_batches=len(batches),
                    eager_wall_seconds=wall_eager,
                    speedup_vs_eager=wall_eager / wall_lazy,
                    lazy_vs_eager_bit_identical=identical,
                ),
            )
        )

    hh_domain = int(params["stream_hh_domain"])
    hh_branching = int(params["stream_hh_branching"])
    n_hh_batches = int(params["stream_hh_batches"])
    hh_items = np.random.default_rng(20).integers(
        0, hh_domain, size=batch_users * n_hh_batches
    )
    hh_queries = random_range_queries(
        hh_domain, 64, random_state=22, name="stream-hh"
    ).queries
    measure(
        "hh_consistent_stream_ingest",
        lambda: HierarchicalHistogramMechanism(
            epsilon, hh_domain, branching=hh_branching, consistency=True
        ),
        np.array_split(hh_items, n_hh_batches),
        {"domain_size": hh_domain, "branching": hh_branching},
        [
            lambda m: m.estimate_frequencies(),
            lambda m: m.answer_ranges(hh_queries),
        ],
    )

    side = int(params["stream_grid_side"])
    grid_branching = int(params["stream_grid_branching"])
    n_grid_batches = int(params["stream_grid_batches"])
    points = clustered_grid_points(
        side, batch_users * n_grid_batches, random_state=23
    )
    flat = HierarchicalGrid2D(epsilon, side, branching=grid_branching).flatten_points(
        points
    )
    rectangles = random_rectangles(side, 64, random_state=24)
    measure(
        "grid2d_stream_ingest",
        lambda: HierarchicalGrid2D(epsilon, side, branching=grid_branching),
        np.array_split(flat, n_grid_batches),
        {"side": side, "branching": grid_branching},
        [
            lambda m: m.estimate_heatmap(),
            lambda m: m.answer_rectangles(rectangles),
        ],
    )
    return records


def _bench_transport_grid(params: dict, workers: int) -> List[BenchRecord]:
    """Shared-memory vs pickle worker transport on the epsilon grid.

    Runs the same parallel grid twice — once per transport — through a real
    process pool (forced to at least two workers, even on one-core hosts,
    because the transport only exists on the pool path) and records the
    wall of each plus a bit-identity verdict: the transport moves bytes, so
    it must never move results.  When shared memory is unavailable the shm
    leg degrades to pickle by design; the record says so instead of
    pretending to measure a difference.
    """
    domain = int(params["grid_domain"])
    counts = DataConfig().counts(domain, int(params["grid_users"]))
    workload = random_range_queries(domain, 2000, random_state=10, name="bench-grid")
    specs = list(params["grid_specs"])
    epsilons = list(params["grid_epsilons"])
    repetitions = int(params["grid_repetitions"])
    cells = len(specs) * len(epsilons) * repetitions
    pool_workers = max(2, min(int(workers), os.cpu_count() or 1))

    def run(transport: str):
        return run_epsilon_grid(
            specs,
            counts,
            workload,
            epsilons=epsilons,
            repetitions=repetitions,
            random_state=11,
            workers=pool_workers,
            transport=transport,
        )

    start = time.perf_counter()
    pickled = run("pickle")
    wall_pickle = time.perf_counter() - start
    start = time.perf_counter()
    shm = run("shm")  # degrades to pickle when shm is unavailable
    wall_shm = time.perf_counter() - start
    return [
        BenchRecord(
            name="transport_grid_shm",
            wall_seconds=wall_shm,
            work_items=cells,
            unit="fits/s",
            rss_max_kb=_rss_max_kb(),
            extras={
                "domain_size": domain,
                "workers": pool_workers,
                "shm_available": shm_available(),
                "wall_pickle_seconds": wall_pickle,
                "wall_shm_seconds": wall_shm,
                "speedup_vs_pickle": wall_pickle / wall_shm,
                "bit_identical_to_pickle": pickled == shm,
            },
        )
    ]


def _bench_epsilon_grid(
    params: dict, workers: int, transport: str = "auto"
) -> List[BenchRecord]:
    """Serial vs parallel epsilon-grid sweep, clamped to available cores.

    Requesting more worker processes than the machine has cores cannot
    speed anything up — it only adds fork/pickle overhead — so the
    effective worker count is ``min(workers, cpu_count)``.  On a one-core
    host that clamp makes the parallel configuration *identical* to the
    serial execution plan (``run_epsilon_grid`` dispatches ``workers=1``
    in-process), so its wall is measured but the speedup is ``1.0`` by
    construction; the second run still earns its keep as a same-seed rerun
    determinism check.  On multicore hosts both configurations are timed
    and the honest speedup recorded — the chunked submissions (one worker
    round trip per chunk of cells, not per repetition) are what keep the
    pool overhead from drowning small grids.
    """
    domain = int(params["grid_domain"])
    counts = DataConfig().counts(domain, int(params["grid_users"]))
    workload = random_range_queries(domain, 2000, random_state=10, name="bench-grid")
    specs = list(params["grid_specs"])
    epsilons = list(params["grid_epsilons"])
    repetitions = int(params["grid_repetitions"])
    cells = len(specs) * len(epsilons) * repetitions
    effective_workers = max(1, min(int(workers), os.cpu_count() or 1))

    def run(n_workers: int):
        return run_epsilon_grid(
            specs,
            counts,
            workload,
            epsilons=epsilons,
            repetitions=repetitions,
            random_state=11,
            workers=n_workers,
            transport=transport,
        )

    start = time.perf_counter()
    serial = run(1)
    wall_serial = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run(effective_workers)
    wall_parallel = time.perf_counter() - start
    bit_identical = serial == parallel
    degenerate = effective_workers == 1
    speedup = 1.0 if degenerate else wall_serial / wall_parallel
    return [
        BenchRecord(
            name="epsilon_grid_serial",
            wall_seconds=wall_serial,
            work_items=cells,
            unit="fits/s",
            rss_max_kb=_rss_max_kb(),
            extras={"domain_size": domain, "workers": 1},
        ),
        BenchRecord(
            name="epsilon_grid_parallel",
            wall_seconds=wall_parallel,
            work_items=cells,
            unit="fits/s",
            rss_max_kb=_rss_max_kb(),
            extras={
                "domain_size": domain,
                "workers": effective_workers,
                "workers_requested": int(workers),
                "transport": resolve_transport(transport),
                "single_cpu_degenerate": degenerate,
                "speedup_vs_serial": speedup,
                "measured_wall_ratio": wall_serial / wall_parallel,
                "bit_identical_to_serial": bit_identical,
            },
        ),
    ]


def _bench_http_ingest(params: dict) -> List[BenchRecord]:
    """End-to-end HTTP batch ingest: localhost service, real wire latency.

    A :class:`~repro.service.http.HttpServerThread` serves a sharded
    collector on ``127.0.0.1``; a synchronous
    :class:`~repro.service.client.ServiceClient` (one fleet producer) posts
    ``http_batches`` JSON batches and the per-request wall — JSON encode,
    TCP round trip, parse, validate, route, enqueue, respond — is sampled
    raw, yielding exact p50/p99 rather than bucketed estimates.

    Midway through, the bench drives two explicit scale events (grow, then
    shrink) through :meth:`HttpServerThread.scale_to`, logging the stream
    id each accepted batch landed on (the 202 response carries it).  After
    the run, a *static* collector with one shard per spawned stream
    replays the same batches pinned to those logged streams: its
    ``reduce()`` must match the autoscaled run bit-for-bit — the
    scale-events-don't-change-estimates contract, measured over the real
    wire (surfaced as the ``autoscale_bit_identical`` check).
    """
    from repro.service.client import ServiceClient
    from repro.service.http import HttpServerThread

    domain = int(params["http_domain"])
    n_shards = int(params["http_shards"])
    queue_size = int(params["http_queue_size"])
    n_batches = int(params["http_batches"])
    batch_users = int(params["http_batch_users"])
    epsilon = float(params["epsilon"])
    rng = np.random.default_rng(30)
    batches = [
        rng.integers(0, domain, size=batch_users) for _ in range(n_batches)
    ]
    # Scale at the third points: grow by one, later shrink back.
    grow_after = n_batches // 3
    shrink_after = (2 * n_batches) // 3

    collector = ShardedCollector(
        "hhc_4",
        epsilon=epsilon,
        domain_size=domain,
        n_shards=n_shards,
        random_state=31,
        router="least-loaded",
    )
    latencies: List[float] = []
    placements: List[tuple] = []
    rejected = 0
    with HttpServerThread(collector, queue_size=queue_size) as server:
        client = ServiceClient(server.host, server.port)
        start = time.perf_counter()
        for index, batch in enumerate(batches):
            if index == grow_after:
                server.scale_to(n_shards + 1)
            elif index == shrink_after:
                server.scale_to(n_shards)
            request_start = time.perf_counter()
            response = client.post_batch_retrying(batch)
            latencies.append(time.perf_counter() - request_start)
            if response.status != 202:
                rejected += 1
                continue
            placements.append((batch, int(response.json()["stream"])))
        wall = time.perf_counter() - start
        client.close()
        stats = server.stats()
    autoscaled = server.reduce().estimate_frequencies()

    # Static replay: one shard per stream ever spawned, batches pinned to
    # the logged stream ids — the reference run autoscaling must match.
    streams_spawned = int(stats["totals"]["streams_spawned"])
    static = ShardedCollector(
        "hhc_4",
        epsilon=epsilon,
        domain_size=domain,
        n_shards=streams_spawned,
        random_state=31,
        router="least-loaded",
    )
    for batch, stream in placements:
        static.submit(batch, shard=stream)
    autoscale_identical = bool(
        np.array_equal(autoscaled, static.reduce().estimate_frequencies())
    )

    ordered = np.sort(np.asarray(latencies))
    p50 = float(ordered[int(0.50 * (ordered.size - 1))])
    p99 = float(ordered[int(0.99 * (ordered.size - 1))])
    return [
        BenchRecord(
            name="http_ingest",
            wall_seconds=wall,
            work_items=len(placements) * batch_users,
            unit="users/s",
            rss_max_kb=_rss_max_kb(),
            extras={
                "domain_size": domain,
                "shards": n_shards,
                "queue_size": queue_size,
                "batches": n_batches,
                "batch_users": batch_users,
                "rejected_batches": rejected,
                "latency_p50_ms": p50 * 1000.0,
                "latency_p99_ms": p99 * 1000.0,
                "grow_events": int(stats["totals"]["grow_events"]),
                "shrink_events": int(stats["totals"]["shrink_events"]),
                "streams_spawned": streams_spawned,
                "autoscale_bit_identical": autoscale_identical,
            },
        )
    ]


def _bench_answer_cache(params: dict) -> List[BenchRecord]:
    """Generation-keyed answer cache: repeated box workload, cache on vs off.

    A fitted 2-D grid answers the same :class:`BoxWorkload` over and over —
    the dashboard-refresh read pattern the cache targets.  With the cache on
    every sweep after the first is pure lookups; with
    ``set_answer_cache_size(0)`` every call recomputes the per-level-pair
    gathers.  The record's extras carry the ``speedup_vs_uncached`` wall
    ratio, the observed hit ratio, and two contracts surfaced as the
    ``cache_bit_identical`` check: cached answers match the uncached compute
    bit-for-bit, and a ``partial_fit`` between reads invalidates the cache
    (the generation key changes) so post-write answers come from fresh
    estimates, again bit-identical to an uncached mechanism fed the same
    stream.
    """
    from repro.core.multidim import HierarchicalGrid2D
    from repro.data.synthetic import clustered_grid_points
    from repro.data.workloads import BoxWorkload, random_boxes

    side = int(params["cache_side"])
    n_users = int(params["cache_users"])
    n_boxes = int(params["cache_boxes"])
    sweeps = int(params["cache_workload_repeat"])
    epsilon = float(params["epsilon"])
    repeats = int(params["repeats"])
    points = clustered_grid_points(side, n_users, random_state=35)
    workload = BoxWorkload(
        side, 2, random_boxes(side, n_boxes, dims=2, random_state=36),
        name="cache-boxes",
    )
    queries = workload.queries

    def fitted_grid() -> HierarchicalGrid2D:
        grid = HierarchicalGrid2D(epsilon, side, branching=2).fit_points(
            points, random_state=37
        )
        grid.materialize()
        return grid

    grid = fitted_grid()

    def sweep(mechanism: HierarchicalGrid2D) -> np.ndarray:
        answers = None
        for _ in range(sweeps):
            answers = mechanism.answer_boxes(queries)
        return answers

    # Uncached reference first: its answers are the ground truth the cached
    # run must reproduce bit-for-bit.
    grid.set_answer_cache_size(0)
    uncached = sweep(grid)
    wall_off = _best_wall(lambda: sweep(grid), repeats)
    grid.set_answer_cache_size(max(sweeps, 4))
    cached = sweep(grid)
    wall_on = _best_wall(lambda: sweep(grid), repeats)
    stats = grid.answer_cache_stats()
    lookups = int(stats["hits"]) + int(stats["misses"])
    hit_ratio = float(stats["hits"]) / lookups if lookups else 0.0
    identical = bool(np.array_equal(cached, uncached))

    # Invalidation contract: a write between reads bumps the generation, so
    # the next read recomputes — and matches an uncached twin fed the same
    # stream (bit-identity across the invalidation boundary).
    extra = np.random.default_rng(38).integers(0, side, size=(256, 2))
    warm, cold = fitted_grid(), fitted_grid()
    cold.set_answer_cache_size(0)
    before = warm.answer_boxes(queries)
    warm.answer_boxes(queries)  # hit — served from the cache
    for twin in (warm, cold):
        twin.partial_fit_points(extra, np.random.default_rng(39))
        twin.materialize()
    invalidation_ok = bool(
        np.array_equal(warm.answer_boxes(queries), cold.answer_boxes(queries))
        and not np.array_equal(warm.answer_boxes(queries), before)
    )

    return [
        BenchRecord(
            name="answer_cache",
            wall_seconds=wall_on,
            work_items=sweeps * n_boxes,
            unit="queries/s",
            rss_max_kb=_rss_max_kb(),
            extras={
                "side": side,
                "boxes": n_boxes,
                "workload_sweeps": sweeps,
                "uncached_wall_seconds": wall_off,
                "speedup_vs_uncached": wall_off / wall_on,
                "hit_ratio": hit_ratio,
                "cache_stats": dict(stats),
                "bit_identical": identical,
                "invalidation_bit_identical": invalidation_ok,
            },
        )
    ]


def _bench_query_serving(params: dict) -> List[BenchRecord]:
    """End-to-end HTTP query serving: live reads against a sharded ingest.

    One :class:`HttpServerThread` ingests a clustered 2-D point population,
    then a :class:`ServiceClient` replays the same box workload
    ``query_requests`` times through ``POST /v1/query`` — the raw
    per-request wall gives exact p50/p99 read latency and the server-side
    answer-cache hit ratio comes from its own stats.  Three companion
    measurements ride along in extras: the same requests against a replica
    with ``query_cache_size=0`` (the over-the-wire cache speedup), a mixed
    read/write phase alternating ``POST /v1/points`` with queries (users/s
    while generations keep bumping), and the same point payload shipped as
    JSON vs ``application/x-npy`` (the ``binary_wire_speedup`` check).
    Coalesced-vs-serial execution is checked in-process: the workload split
    across concurrent awaiters of a :class:`QueryCoalescer` must match the
    one-shot batched call bit-for-bit (``coalesce_bit_identical``).
    """
    import asyncio

    from repro.data.synthetic import clustered_grid_points
    from repro.data.workloads import random_boxes
    from repro.service.client import ServiceClient
    from repro.service.http import HttpServerThread
    from repro.service.query import QueryCoalescer

    side = int(params["query_side"])
    n_points = int(params["query_points"])
    n_batches = int(params["query_point_batches"])
    n_boxes = int(params["query_boxes"])
    n_requests = int(params["query_requests"])
    n_shards = int(params["query_shards"])
    queue_size = int(params["query_queue_size"])
    epsilon = float(params["epsilon"])
    points = clustered_grid_points(side, n_points, random_state=44)
    batches = np.array_split(points, max(1, n_batches))
    boxes = random_boxes(side, n_boxes, dims=2, random_state=45)
    write_batches = np.array_split(
        clustered_grid_points(side, max(n_requests * 8, 64), random_state=46),
        max(1, n_requests // 4),
    )

    def collector() -> ShardedCollector:
        return ShardedCollector(
            "grid2d_2",
            epsilon=epsilon,
            domain_size=side,
            n_shards=n_shards,
            random_state=47,
        )

    def post_all(client: ServiceClient, binary: bool) -> float:
        start = time.perf_counter()
        for batch in batches:
            client.post_points(batch, binary=binary)
        return time.perf_counter() - start

    def query_sweep(client: ServiceClient) -> List[float]:
        walls: List[float] = []
        for _ in range(n_requests):
            request_start = time.perf_counter()
            client.query_boxes(boxes)
            walls.append(time.perf_counter() - request_start)
        return walls

    with HttpServerThread(collector(), queue_size=queue_size) as server:
        with ServiceClient(server.host, server.port) as client:
            # Wire-format comparison doubles as the ingest load: the same
            # payload lands twice, once per encoding.
            wall_json = post_all(client, binary=False)
            wall_npy = post_all(client, binary=True)
            start = time.perf_counter()
            latencies = query_sweep(client)
            wall_reads = time.perf_counter() - start
            quantile_items = client.query_quantiles((0.25, 0.5, 0.75))
            binary_answers = client.query_boxes(boxes, binary=True)
            json_answers = client.query_boxes(boxes, binary=False)
            # Mixed read/write: every write bumps the ingest generation, so
            # each following read rebuilds the view and misses the cache.
            mixed_start = time.perf_counter()
            mixed_users = 0
            for batch in write_batches:
                client.post_points(batch, binary=True)
                client.query_boxes(boxes)
                mixed_users += int(batch.shape[0])
            wall_mixed = time.perf_counter() - mixed_start
            stats = server.stats()

    cache = stats["query"]["answer_cache"]
    lookups = int(cache["hits"]) + int(cache["misses"])
    hit_ratio = float(cache["hits"]) / lookups if lookups else 0.0

    # Replica with the cache disabled: same ingest, same reads.
    with HttpServerThread(
        collector(), queue_size=queue_size, query_cache_size=0
    ) as server_off:
        with ServiceClient(server_off.host, server_off.port) as client_off:
            post_all(client_off, binary=False)
            post_all(client_off, binary=True)
            start = time.perf_counter()
            query_sweep(client_off)
            wall_reads_off = time.perf_counter() - start

    # Coalesced-vs-serial bit-identity, in-process on a private event loop:
    # concurrent awaiters over workload slices must reproduce the one-shot
    # batched answers exactly.
    local = collector()
    for batch in batches:
        local.submit_points(batch)
    mechanism = local.reduce()
    serial = mechanism.answer_boxes(boxes)
    coalescer = QueryCoalescer()

    async def coalesced_run() -> List[np.ndarray]:
        slices = np.array_split(boxes, min(4, max(1, boxes.shape[0])))
        return await asyncio.gather(
            *(coalescer.answer_boxes(mechanism, part) for part in slices)
        )

    coalesced = np.concatenate(asyncio.run(coalesced_run()))
    coalesce_identical = bool(np.array_equal(serial, coalesced))

    ordered = np.sort(np.asarray(latencies))
    p50 = float(ordered[int(0.50 * (ordered.size - 1))])
    p99 = float(ordered[int(0.99 * (ordered.size - 1))])
    return [
        BenchRecord(
            name="query_serving",
            wall_seconds=wall_reads,
            work_items=n_requests * n_boxes,
            unit="queries/s",
            rss_max_kb=_rss_max_kb(),
            extras={
                "side": side,
                "shards": n_shards,
                "boxes": n_boxes,
                "requests": n_requests,
                "latency_p50_ms": p50 * 1000.0,
                "latency_p99_ms": p99 * 1000.0,
                "cache_hit_ratio": hit_ratio,
                "cache_stats": dict(cache),
                "uncached_wall_seconds": wall_reads_off,
                "wire_cache_speedup": wall_reads_off / wall_reads,
                "mixed_rw_users_per_s": mixed_users / wall_mixed,
                "ingest_wall_json_seconds": wall_json,
                "ingest_wall_npy_seconds": wall_npy,
                "binary_wire_speedup": wall_json / wall_npy,
                "binary_response_bit_identical": bool(
                    np.array_equal(binary_answers, json_answers)
                ),
                "quantile_items": [int(item) for item in quantile_items],
                "coalesce_bit_identical": coalesce_identical,
                "coalescer_stats": coalescer.stats(),
            },
        )
    ]


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------
def run_suite(
    suite: str = "smoke",
    workers: Optional[int] = None,
    out_dir: Optional[str] = ".",
    overrides: Optional[dict] = None,
    transport: str = "auto",
) -> Dict[str, object]:
    """Run a named benchmark suite and write ``BENCH_<suite>.json``.

    Parameters
    ----------
    suite:
        One of :data:`SUITES` (``smoke`` or ``full``).
    workers:
        Worker count for the parallel epsilon-grid benchmark; defaults to 4
        regardless of core count, so the process-pool path and its
        bit-identity check are exercised even on one-core runners (the
        speedup is recorded honestly either way).
    out_dir:
        Directory receiving ``BENCH_<suite>.json``; ``None`` skips writing.
    overrides:
        Optional size-knob overrides merged over the suite's parameters
        (used by the tests to shrink the suite).
    transport:
        Worker transport of the parallel epsilon-grid benchmark (``auto`` /
        ``shm`` / ``pickle``); the shm-vs-pickle comparison record always
        measures both regardless of this knob.

    Returns
    -------
    dict
        The full payload that was (or would have been) written, with the
        output path added under ``"path"`` when a file was written.
    """
    if suite not in SUITES:
        raise ConfigurationError(
            f"unknown benchmark suite {suite!r}; expected one of {sorted(SUITES)}"
        )
    params = dict(SUITES[suite])
    params.update(overrides or {})
    if workers is None:
        workers = 4
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers!r}")

    records: List[BenchRecord] = []
    records.extend(_bench_encode(params))
    records.extend(_bench_unary_aggregate(params))
    records.extend(_bench_olh_decode(params))
    records.extend(_bench_kernels(params))
    records.extend(_bench_shard_reduce(params))
    records.extend(_bench_consistency(params))
    records.extend(_bench_grid2d(params))
    records.extend(_bench_gridnd(params))
    records.extend(_bench_stream_ingest(params))
    records.extend(_bench_http_ingest(params))
    records.extend(_bench_answer_cache(params))
    records.extend(_bench_query_serving(params))
    records.extend(_bench_epsilon_grid(params, workers, transport))
    records.extend(_bench_transport_grid(params, workers))

    by_name = {record.name: record for record in records}
    packed = by_name["unary_aggregate_packed"]
    grid_parallel = by_name["epsilon_grid_parallel"]
    grid2d = by_name["grid2d_shard_collect_reduce"]
    hh_stream = by_name["hh_consistent_stream_ingest"]
    grid_stream = by_name["grid2d_stream_ingest"]
    http_ingest = by_name["http_ingest"]
    answer_cache = by_name["answer_cache"]
    query_serving = by_name["query_serving"]
    # The speedup number is informational at smoke scale (tiny grids, and
    # one-core hosts degenerate to the serial plan); only a full-suite run
    # with real parallelism is expected to beat serial, so only there does
    # the _ok flag actually depend on the measurement.
    speedup_gates = (
        suite == "full" and not grid_parallel.extras["single_cpu_degenerate"]
    )
    checks: Dict[str, object] = {
        "packed_payload_ratio": packed.extras["payload_ratio"],
        "packed_aggregate_speedup": packed.extras["speedup_vs_dense"],
        "parallel_grid_speedup": grid_parallel.extras["speedup_vs_serial"],
        "parallel_grid_speedup_ok": (
            bool(grid_parallel.extras["speedup_vs_serial"] > 1.0)
            if speedup_gates
            else True
        ),
        "parallel_grid_bit_identical": grid_parallel.extras[
            "bit_identical_to_serial"
        ],
        "autoscale_bit_identical": http_ingest.extras["autoscale_bit_identical"],
        "http_ingest_p50_ms": http_ingest.extras["latency_p50_ms"],
        "http_ingest_p99_ms": http_ingest.extras["latency_p99_ms"],
        # The hot-read-path contracts: cached answers are bit-identical to
        # the uncached compute (including across a generation-bump
        # invalidation), and coalesced execution is bit-identical to the
        # one-shot batched call.
        "query_cache_speedup": answer_cache.extras["speedup_vs_uncached"],
        "query_cache_hit_ratio": query_serving.extras["cache_hit_ratio"],
        "query_p50_ms": query_serving.extras["latency_p50_ms"],
        "query_p99_ms": query_serving.extras["latency_p99_ms"],
        "binary_wire_speedup": query_serving.extras["binary_wire_speedup"],
        "cache_bit_identical": bool(
            answer_cache.extras["bit_identical"]
            and answer_cache.extras["invalidation_bit_identical"]
            and query_serving.extras["binary_response_bit_identical"]
        ),
        "coalesce_bit_identical": query_serving.extras["coalesce_bit_identical"],
        "grid2d_restore_bit_identical": grid2d.extras["restore_bit_identical"],
        "gridnd_restore_bit_identical": by_name["gridnd_fit_points"].extras[
            "restore_bit_identical"
        ],
        # The refactor contract: the generic N-d machinery at d = 2 answers
        # the same rectangle workload bit-for-bit as HierarchicalGrid2D.
        "gridnd_d2_bit_identical": by_name["gridnd_fit_points"].extras[
            "d2_bit_identical"
        ],
        # The planner contract: the closed-form ranking's pick measurably
        # beats the worst-ranked candidate on the same population.
        "planner_pick_beats_worst": by_name["planner_pick_vs_worst"].extras[
            "planner_pick_beats_worst"
        ],
        "hh_stream_ingest_speedup": hh_stream.extras["speedup_vs_eager"],
        "grid2d_stream_ingest_speedup": grid_stream.extras["speedup_vs_eager"],
        "lazy_vs_eager_bit_identical": bool(
            hh_stream.extras["lazy_vs_eager_bit_identical"]
            and grid_stream.extras["lazy_vs_eager_bit_identical"]
        ),
        "grid2d_rectangle_batch_speedup": by_name["grid2d_rectangle_queries"].extras[
            "speedup_vs_per_query_loop"
        ],
        # Kernel backend contract: every backend's output of every kernel
        # matched the numpy reference bit-for-bit during the microbenches.
        "kernels_bit_identical": all(
            bool(by_name[f"kernel_{name}"].extras["bit_identical"])
            for name in kernels.KERNEL_NAMES
        ),
        "kernel_backend": kernels.active_backend(),
        "kernel_unary_speedup": by_name["kernel_unary_column_sums"].extras[
            "speedup_vs_numpy"
        ],
        "kernel_olh_decode_speedup": by_name["kernel_olh_decode"].extras[
            "speedup_vs_numpy"
        ],
        "kernel_badic_runs_speedup": by_name["kernel_badic_axis_runs"].extras[
            "speedup_vs_numpy"
        ],
        "transport_bit_identical": by_name["transport_grid_shm"].extras[
            "bit_identical_to_pickle"
        ],
        "shm_transport_speedup": by_name["transport_grid_shm"].extras[
            "speedup_vs_pickle"
        ],
    }

    payload: Dict[str, object] = {
        "schema_version": 1,
        "suite": suite,
        "created_at_unix": time.time(),
        "environment": _environment(),
        "parameters": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in params.items()
        },
        "workers": workers,
        "results": [record.as_dict() for record in records],
        "checks": checks,
    }
    if out_dir is not None:
        path = os.path.join(out_dir, f"BENCH_{suite}.json")
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        payload["path"] = path
    return payload


# ----------------------------------------------------------------------
# Baseline comparison (``python -m repro bench --compare BASELINE.json``)
# ----------------------------------------------------------------------
def load_payload(path: str) -> Dict[str, object]:
    """Read a ``BENCH_<suite>.json`` payload written by :func:`run_suite`."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "results" not in payload:
        raise ConfigurationError(
            f"{path!r} does not look like a bench payload (no 'results' key)"
        )
    return payload


def compare_payloads(
    current: Dict[str, object],
    baseline: Dict[str, object],
    fail_threshold: float = 0.5,
) -> Dict[str, object]:
    """Per-record throughput/wall regression diff of two bench payloads.

    Parameters
    ----------
    current, baseline:
        Payloads as produced by :func:`run_suite` / read by
        :func:`load_payload`.
    fail_threshold:
        Maximum tolerated fractional throughput drop per record: a record
        *regresses* when ``current_throughput < (1 - fail_threshold) *
        baseline_throughput``.  The default ``0.5`` only flags >2x
        slowdowns — deliberately lenient because records are compared
        across commits *and machines* (CI diffs the runner's numbers
        against the committed baseline), so only drastic cliffs should
        gate; tighten it for same-machine before/after comparisons.

    Returns
    -------
    dict
        ``rows`` — one entry per current record (name, baseline/current
        throughput and wall, ``throughput_ratio``, ``status`` of ``ok`` /
        ``regression`` / ``new``); ``regressions`` — names of regressed
        records; ``missing`` — baseline records absent from the current
        run; ``check_rows`` — one entry per current *check* (name,
        baseline/current value, ``delta`` for numeric checks, ``status`` of
        ``ok`` / ``changed`` / ``new``, informational only — regression
        decisions stay record-based); ``fail_threshold`` echoed back.
    """
    if not 0.0 <= float(fail_threshold) < 1.0:
        raise ConfigurationError(
            f"fail_threshold must be in [0, 1), got {fail_threshold!r}"
        )
    fail_threshold = float(fail_threshold)
    baseline_by_name = {
        record["name"]: record for record in baseline.get("results", [])
    }
    rows: List[Dict[str, object]] = []
    regressions: List[str] = []
    for record in current.get("results", []):
        name = record["name"]
        base = baseline_by_name.pop(name, None)
        if base is None:
            rows.append(
                {
                    "name": name,
                    "status": "new",
                    "current_throughput": record["throughput"],
                    "current_wall": record["wall_seconds"],
                    "baseline_throughput": None,
                    "baseline_wall": None,
                    "throughput_ratio": None,
                }
            )
            continue
        base_throughput = float(base["throughput"])
        ratio = (
            record["throughput"] / base_throughput
            if base_throughput > 0
            else float("inf")
        )
        regressed = ratio < (1.0 - fail_threshold)
        rows.append(
            {
                "name": name,
                "status": "regression" if regressed else "ok",
                "current_throughput": record["throughput"],
                "current_wall": record["wall_seconds"],
                "baseline_throughput": base_throughput,
                "baseline_wall": base["wall_seconds"],
                "throughput_ratio": ratio,
            }
        )
        if regressed:
            regressions.append(name)
    return {
        "rows": rows,
        "regressions": regressions,
        "missing": sorted(baseline_by_name),
        "check_rows": _compare_checks(current, baseline),
        "fail_threshold": fail_threshold,
    }


def _compare_checks(
    current: Dict[str, object], baseline: Dict[str, object]
) -> List[Dict[str, object]]:
    """Per-check deltas between two payloads' ``checks`` maps.

    Purely informational — a check value drifting (a speedup shrinking, a
    latency growing) is worth seeing in the diff, but gating stays on
    per-record throughput so machine-to-machine noise in derived ratios
    cannot fail CI on its own.
    """
    baseline_checks = dict(baseline.get("checks") or {})
    rows: List[Dict[str, object]] = []
    for name, value in (current.get("checks") or {}).items():
        base = baseline_checks.get(name)
        row: Dict[str, object] = {
            "name": name,
            "current": value,
            "baseline": base,
            "delta": None,
        }
        if name not in baseline_checks:
            row["status"] = "new"
        elif (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and isinstance(base, (int, float))
            and not isinstance(base, bool)
        ):
            row["delta"] = float(value) - float(base)
            row["status"] = "ok"
        else:
            row["status"] = "ok" if value == base else "changed"
        rows.append(row)
    return rows
