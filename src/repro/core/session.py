"""High-level session API.

:class:`LdpRangeQuerySession` bundles the pieces a deployment needs — pick a
mechanism, collect a population once, then answer arbitrary analytic
questions (ranges, CDF, quantiles, histograms) — behind a single object, so
the examples and downstream users do not have to assemble the lower-level
components by hand.

:class:`Grid2DSession` is the two-dimensional counterpart: the same
collect / persist / async surface over a
:class:`~repro.core.multidim.HierarchicalGrid2D`, speaking ``(x, y)`` points
and rectangle queries instead of items and ranges.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.base import RangeQueryMechanism
from repro.core.factory import mechanism_from_spec
from repro.core.quantiles import DECILES, estimate_cdf, estimate_quantiles
from repro.data.workloads import RangeWorkload
from repro.exceptions import ConfigurationError, NotFittedError
from repro.privacy.randomness import RandomState

__all__ = ["Grid2DSession", "LdpRangeQuerySession"]


def _unfitted_clone(mechanism: RangeQueryMechanism) -> RangeQueryMechanism:
    """Fresh unfitted mechanism configured like ``mechanism`` (lazy import
    keeps ``repro.core`` free of a hard dependency on the persist layer)."""
    from repro.persist.snapshots import clone_unfitted

    return clone_unfitted(mechanism)


class LdpRangeQuerySession:
    """Convenience wrapper around one mechanism and one collected population.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget for the whole session (each user reports
        exactly once).
    domain_size:
        Number of items ``D`` of the discretised attribute.
    mechanism:
        Specification string (see :func:`repro.core.factory.mechanism_from_spec`)
        or an already-constructed mechanism instance.  Defaults to the
        paper's all-round recommendation ``HaarHRR`` for strong privacy and
        competitive accuracy everywhere.
    """

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        mechanism: "str | RangeQueryMechanism" = "haar",
        **mechanism_kwargs,
    ) -> None:
        if isinstance(mechanism, RangeQueryMechanism):
            # A pre-built instance must agree with the session parameters,
            # otherwise `session.epsilon` would silently misreport the
            # privacy budget the mechanism actually spends.
            if not math.isclose(mechanism.epsilon, float(epsilon), rel_tol=1e-9):
                raise ConfigurationError(
                    f"session epsilon {float(epsilon)!r} does not match the "
                    f"mechanism's epsilon {mechanism.epsilon!r}"
                )
            if mechanism.domain_size != int(domain_size):
                raise ConfigurationError(
                    f"session domain_size {int(domain_size)!r} does not match the "
                    f"mechanism's domain_size {mechanism.domain_size!r}"
                )
            self._mechanism = mechanism
        else:
            self._mechanism = mechanism_from_spec(
                mechanism, epsilon=epsilon, domain_size=domain_size, **mechanism_kwargs
            )
        self._epsilon = float(epsilon)
        self._domain_size = int(domain_size)
        #: Throughput report of the most recent :meth:`collect_async` sweep.
        self.last_ingestion_report = None

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect(
        self,
        items: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "LdpRangeQuerySession":
        """Collect one report from every user in ``items``."""
        self._mechanism.fit_items(items, random_state=random_state, mode=mode)
        return self

    def collect_counts(
        self,
        counts: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "LdpRangeQuerySession":
        """Collect a population described by exact per-item counts."""
        self._mechanism.fit_counts(counts, random_state=random_state, mode=mode)
        return self

    def collect_batch(
        self,
        items: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "LdpRangeQuerySession":
        """Collect one batch of users on top of everything collected so far.

        Incremental counterpart of :meth:`collect` (each user must still
        appear in exactly one batch); answers are queryable after every
        batch.  Batches only accumulate sufficient statistics — the
        estimates are rebuilt lazily on the next query (or an explicit
        :meth:`materialize`), so tight ingest loops pay pure accumulation
        cost.  See :meth:`RangeQueryMechanism.partial_fit`.
        """
        self._mechanism.partial_fit(items, random_state=random_state, mode=mode)
        return self

    def merge_from(
        self, other: "Union[LdpRangeQuerySession, RangeQueryMechanism]"
    ) -> "LdpRangeQuerySession":
        """Fold another session's (or mechanism's) collected state into this one.

        The source must wrap an identically configured, fitted mechanism —
        typically a shard of a distributed collection (see
        :class:`repro.streaming.ShardedCollector`).
        """
        source = other.mechanism if isinstance(other, LdpRangeQuerySession) else other
        self._mechanism.merge_from(source)
        return self

    def collect_async(
        self,
        batches: Sequence[np.ndarray],
        n_shards: int = 4,
        n_producers: int = 2,
        router: "Union[None, str]" = None,
        random_state: RandomState = None,
        mode: str = "aggregate",
        queue_size: int = 8,
        parallelism: int = 0,
    ) -> "LdpRangeQuerySession":
        """Collect ``batches`` through the async multi-producer ingestion tier.

        Spins up a :class:`repro.service.IngestionService` over ``n_shards``
        shards configured like this session's mechanism, fans the batches
        across ``n_producers`` concurrent producers (with per-shard
        backpressure), reduces the shards and folds the result into this
        session — on top of anything collected before, exactly like
        :meth:`collect_batch`.  Each user must still appear in exactly one
        batch overall.  The throughput report of the sweep is kept on
        :attr:`last_ingestion_report`.

        Must be called from synchronous code; inside a running event loop
        drive :class:`repro.service.IngestionService` directly.
        """
        from repro.service.ingestion import run_ingestion
        from repro.streaming.sharded import ShardedCollector

        collector = ShardedCollector(
            _unfitted_clone(self._mechanism),
            n_shards=n_shards,
            random_state=random_state,
            mode=mode,
            router=router,
        )
        self.last_ingestion_report = run_ingestion(
            collector,
            batches,
            n_producers=n_producers,
            queue_size=queue_size,
            parallelism=parallelism,
        )
        self._mechanism.merge_from(collector.reduce())
        return self

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: "Union[str, Path]") -> Path:
        """Snapshot the fitted mechanism to ``path`` (see :mod:`repro.persist`).

        The file is self-contained: :meth:`load` rebuilds the mechanism and
        the session around it, with bit-identical estimates.
        """
        from repro.persist import snapshots

        return snapshots.save(self._mechanism, path)

    def to_bytes(self) -> bytes:
        """The session's mechanism as one snapshot byte string."""
        from repro.persist import snapshots

        return snapshots.to_bytes(self._mechanism)

    @classmethod
    def load(cls, path: "Union[str, Path]") -> "LdpRangeQuerySession":
        """Rebuild a session from a :meth:`save` file."""
        from repro.persist import snapshots

        mechanism = snapshots.load(path)
        return cls._wrap(mechanism)

    @classmethod
    def from_bytes(cls, data: bytes) -> "LdpRangeQuerySession":
        """Rebuild a session from :meth:`to_bytes` output."""
        from repro.persist import snapshots

        mechanism = snapshots.from_bytes(data)
        return cls._wrap(mechanism)

    @classmethod
    def _wrap(cls, mechanism) -> "LdpRangeQuerySession":
        if not isinstance(mechanism, RangeQueryMechanism):
            raise ConfigurationError(
                "snapshot does not hold a mechanism; sessions load mechanism "
                f"snapshots only, got {type(mechanism).__name__}"
            )
        return cls(
            epsilon=mechanism.epsilon,
            domain_size=mechanism.domain_size,
            mechanism=mechanism,
        )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    @property
    def mechanism(self) -> RangeQueryMechanism:
        """The underlying mechanism (exposes the full low-level API)."""
        return self._mechanism

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def domain_size(self) -> int:
        return self._domain_size

    @property
    def n_users(self) -> Optional[int]:
        return self._mechanism.n_users

    @property
    def is_materialized(self) -> bool:
        """Whether the mechanism's estimates reflect everything collected."""
        return self._mechanism.is_materialized

    def materialize(self) -> "LdpRangeQuerySession":
        """Rebuild the queryable estimates now instead of on the next query.

        Collection (``collect_batch``, ``merge_from``, ``collect_async``)
        only accumulates sufficient statistics; the first query after a
        mutation pays one reconstruction.  Call this to move that cost off a
        latency-critical read path — it is idempotent and answers are
        bit-identical either way.
        """
        self._mechanism.materialize()
        return self

    def set_answer_cache_size(self, maxsize: int) -> "LdpRangeQuerySession":
        """Bound the mechanism's generation-keyed answer cache (``0``
        disables it); see
        :meth:`repro.core.base.RangeQueryMechanism.set_answer_cache_size`."""
        self._mechanism.set_answer_cache_size(maxsize)
        return self

    def answer_cache_stats(self) -> dict:
        """Hit/miss/eviction counters of the mechanism's answer cache."""
        return self._mechanism.answer_cache_stats()

    def range_query(self, start: int, end: int) -> float:
        """Estimated fraction of the population inside ``[start, end]``."""
        return self._mechanism.answer_range(start, end)

    def range_queries(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised range queries over an ``(n, 2)`` array."""
        return self._mechanism.answer_ranges(queries)

    def workload(self, workload: RangeWorkload) -> np.ndarray:
        """Answer a full workload object."""
        return self._mechanism.answer_workload(workload)

    def histogram(self) -> np.ndarray:
        """Estimated per-item fractions."""
        return self._mechanism.estimate_frequencies()

    def cdf(self) -> np.ndarray:
        """Monotone estimate of the cumulative distribution."""
        return estimate_cdf(self._mechanism)

    def quantiles(self, targets: Sequence[float] = DECILES) -> List[int]:
        """Estimated quantile items for the given targets (deciles default)."""
        return estimate_quantiles(self._mechanism, targets)

    def median(self) -> int:
        """Estimated median item."""
        return self.quantiles((0.5,))[0]

    def summary(self) -> dict:
        """Small status dictionary used by the examples' printouts."""
        if not self._mechanism.is_fitted:
            raise NotFittedError("collect a population before asking for a summary")
        return {
            "mechanism": self._mechanism.name,
            "epsilon": self._epsilon,
            "domain_size": self._domain_size,
            "n_users": self._mechanism.n_users,
        }


class GridNDSession(LdpRangeQuerySession):
    """Session over a ``d``-dimensional grid population (Section 6).

    Wraps a :class:`~repro.core.multidim.HierarchicalGridND` with the same
    lifecycle as :class:`LdpRangeQuerySession` — one-shot, batched or async
    collection, snapshots, shard merging — but the collection surface takes
    ``(n, d)`` integer point arrays and the query surface answers axis-
    aligned boxes.  ``domain_size`` is the grid *side length* ``D``; pass
    ``dims=`` (with a spec-string mechanism) to choose the dimensionality.

    The inherited item/range API remains available and operates on the
    flattened row-major domain ``[0, D^d)`` (a point ``(x_1, ..., x_d)`` is
    the item ``x_1 D^{d-1} + ... + x_d``), which is the representation the
    sharded and async pipelines transport.
    """

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        mechanism: "str | RangeQueryMechanism" = "gridnd",
        **mechanism_kwargs,
    ) -> None:
        super().__init__(epsilon, domain_size, mechanism=mechanism, **mechanism_kwargs)
        from repro.core.multidim import HierarchicalGridND

        if not isinstance(self._mechanism, HierarchicalGridND):
            raise ConfigurationError(
                f"{type(self).__name__} requires a HierarchicalGridND mechanism, "
                f"got {type(self._mechanism).__name__}"
            )

    @property
    def dims(self) -> int:
        """Number of grid axes ``d``."""
        return self._mechanism.dims

    # ------------------------------------------------------------------
    # Point collection
    # ------------------------------------------------------------------
    def collect_points(
        self,
        points: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "GridNDSession":
        """Collect one report from every user's d-dimensional point
        (one-shot)."""
        self._mechanism.fit_points(points, random_state=random_state, mode=mode)
        return self

    def collect_points_batch(
        self,
        points: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "GridNDSession":
        """Collect one batch of points on top of everything collected so far."""
        self._mechanism.partial_fit_points(points, random_state=random_state, mode=mode)
        return self

    def collect_points_async(
        self,
        point_batches: Sequence[np.ndarray],
        **kwargs,
    ) -> "GridNDSession":
        """Collect d-dimensional point batches through the async ingestion
        tier.

        Each batch is validated and flattened to row-major items, then fed
        through :meth:`LdpRangeQuerySession.collect_async` (same sharding,
        routing, backpressure and accuracy contract).
        """
        flattened = [self._mechanism.flatten_points(batch) for batch in point_batches]
        self.collect_async(flattened, **kwargs)
        return self

    # ------------------------------------------------------------------
    # Box analysis
    # ------------------------------------------------------------------
    def box_query(self, ranges: "Sequence[tuple[int, int]]") -> float:
        """Estimated fraction of users inside an axis-aligned box (one
        inclusive ``(start, end)`` pair per axis)."""
        return self._mechanism.answer_box(ranges)

    def box_queries(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised box queries over ``(n, 2d)`` rows of per-axis
        ``(start, end)`` pairs."""
        return self._mechanism.answer_boxes(queries)

    def heatmap(self) -> np.ndarray:
        """Leaf-resolution ``D x ... x D`` density estimate."""
        return self._mechanism.estimate_heatmap()


class Grid2DSession(GridNDSession):
    """Session over a two-dimensional grid population — the rectangle-
    flavoured ``d = 2`` specialization of :class:`GridNDSession`.

    Wraps a :class:`~repro.core.multidim.HierarchicalGrid2D`; the inherited
    item/range API operates on the flattened row-major domain ``[0, D^2)``
    (a point ``(x, y)`` is the item ``x * D + y``).
    """

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        mechanism: "str | RangeQueryMechanism" = "grid2d",
        **mechanism_kwargs,
    ) -> None:
        LdpRangeQuerySession.__init__(
            self, epsilon, domain_size, mechanism=mechanism, **mechanism_kwargs
        )
        from repro.core.multidim import HierarchicalGrid2D

        if not isinstance(self._mechanism, HierarchicalGrid2D):
            raise ConfigurationError(
                "Grid2DSession requires a HierarchicalGrid2D mechanism, got "
                f"{type(self._mechanism).__name__}"
            )

    # ------------------------------------------------------------------
    # Rectangle analysis
    # ------------------------------------------------------------------
    def rectangle_query(
        self, x_range: "tuple[int, int]", y_range: "tuple[int, int]"
    ) -> float:
        """Estimated fraction of users inside an axis-aligned rectangle."""
        return self._mechanism.answer_rectangle(x_range, y_range)

    def rectangle_queries(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised rectangle queries over ``(n, 4)`` rows
        ``(x_start, x_end, y_start, y_end)``."""
        return self._mechanism.answer_rectangles(queries)
