"""Prometheus text exposition for the service tier (no client library).

The ``/metrics`` endpoint of :mod:`repro.service.http` needs exactly three
instrument kinds — counters, gauges and one latency histogram — rendered in
the Prometheus text exposition format (version 0.0.4).  Pulling in a client
library for that would violate the "stdlib + numpy only" rule of this repo,
and the format is small enough to own: ``# HELP`` / ``# TYPE`` headers, one
``name{label="value"} number`` sample per line, histograms as cumulative
``_bucket`` series plus ``_sum`` / ``_count``.

Two layers live here:

* **Instruments** — :class:`Counter`, :class:`Gauge`, :class:`Histogram`
  and the :class:`MetricsRegistry` that renders them.  The HTTP server owns
  a registry for its request counters and latency histogram.
* **Stats mapping** — :func:`ingestion_stats_lines` turns one
  :meth:`IngestionService.stats() <repro.service.IngestionService.stats>`
  snapshot into metric families: monotonic totals become counters
  (``repro_ingest_absorbed_users_total`` never goes backwards across
  shrink events — that is what the service-level totals are for), live
  queue state becomes gauges with a ``shard`` label.

Everything renders deterministically (insertion order, stable label
order), so tests can assert on exact output.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ingestion_stats_lines",
    "render_ingestion_stats",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): sub-millisecond ingest up to slow
#: multi-second tails, roughly logarithmic like client_python's defaults.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelValues = Tuple[str, ...]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise ConfigurationError(f"invalid metric name {name!r}")
    return name


def _check_labels(label_names: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(str(name) for name in label_names)
    for name in names:
        if not _LABEL_RE.match(name):
            raise ConfigurationError(f"invalid label name {name!r}")
    return names


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _sample_line(
    name: str, labels: Mapping[str, str], value: float
) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label_value(str(val))}"' for key, val in labels.items()
        )
        return f"{name}{{{rendered}}} {_format_number(value)}"
    return f"{name} {_format_number(value)}"


class _Instrument:
    """Shared plumbing: name/help validation and label bookkeeping."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = str(help)
        self.label_names = _check_labels(label_names)

    def _key(self, labels: Optional[Mapping[str, str]]) -> LabelValues:
        labels = dict(labels or {})
        if set(labels) != set(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} expects labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _labels_of(self, key: LabelValues) -> Dict[str, str]:
        return dict(zip(self.label_names, key))

    def header_lines(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def sample_lines(self) -> List[str]:  # pragma: no cover - abstract-ish
        raise NotImplementedError

    def render_lines(self) -> List[str]:
        return self.header_lines() + self.sample_lines()


class Counter(_Instrument):
    """Monotonically increasing sample(s); one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, labels: Optional[Mapping[str, str]] = None) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount!r})"
            )
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, labels: Optional[Mapping[str, str]] = None) -> float:
        return self._values.get(self._key(labels), 0.0)

    def sample_lines(self) -> List[str]:
        return [
            _sample_line(self.name, self._labels_of(key), value)
            for key, value in self._values.items()
        ]


class Gauge(_Instrument):
    """Point-in-time sample(s) that may go up or down."""

    kind = "gauge"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, labels: Optional[Mapping[str, str]] = None) -> None:
        self._values[self._key(labels)] = float(value)

    def value(self, labels: Optional[Mapping[str, str]] = None) -> float:
        return self._values.get(self._key(labels), 0.0)

    def sample_lines(self) -> List[str]:
        return [
            _sample_line(self.name, self._labels_of(key), value)
            for key, value in self._values.items()
        ]


class Histogram(_Instrument):
    """Cumulative-bucket histogram (`*_bucket` / `*_sum` / `*_count`)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        label_names: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be non-empty and strictly "
                f"increasing, got {buckets!r}"
            )
        self.buckets = bounds
        self._counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._totals: Dict[LabelValues, int] = {}

    def observe(self, value: float, labels: Optional[Mapping[str, str]] = None) -> None:
        key = self._key(labels)
        counts = self._counts.setdefault(key, [0] * len(self.buckets))
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
                break
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, labels: Optional[Mapping[str, str]] = None) -> int:
        return self._totals.get(self._key(labels), 0)

    def quantile(self, q: float, labels: Optional[Mapping[str, str]] = None) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        containing the ``q``-th observation); used by the bench harness for
        p50/p99 without keeping raw samples."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q!r}")
        key = self._key(labels)
        total = self._totals.get(key, 0)
        if total == 0:
            return float("nan")
        rank = q * total
        seen = 0
        for bound, count in zip(self.buckets, self._counts.get(key, ())):
            seen += count
            if seen >= rank:
                return bound
        return float("inf")

    def sample_lines(self) -> List[str]:
        lines: List[str] = []
        for key in self._totals:
            labels = self._labels_of(key)
            cumulative = 0
            for bound, count in zip(self.buckets, self._counts[key]):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_number(float(bound))
                lines.append(
                    _sample_line(f"{self.name}_bucket", bucket_labels, cumulative)
                )
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            lines.append(
                _sample_line(f"{self.name}_bucket", inf_labels, self._totals[key])
            )
            lines.append(
                _sample_line(f"{self.name}_sum", labels, self._sums.get(key, 0.0))
            )
            lines.append(
                _sample_line(f"{self.name}_count", labels, self._totals[key])
            )
        return lines


class MetricsRegistry:
    """Ordered collection of instruments with one-shot text rendering."""

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def register(self, instrument: _Instrument) -> _Instrument:
        if instrument.name in self._instruments:
            raise ConfigurationError(
                f"metric {instrument.name!r} is already registered"
            )
        self._instruments[instrument.name] = instrument
        return instrument

    def counter(self, name: str, help: str, label_names: Sequence[str] = ()) -> Counter:
        return self.register(Counter(name, help, label_names))  # type: ignore[return-value]

    def gauge(self, name: str, help: str, label_names: Sequence[str] = ()) -> Gauge:
        return self.register(Gauge(name, help, label_names))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        label_names: Sequence[str] = (),
    ) -> Histogram:
        return self.register(Histogram(name, help, buckets, label_names))  # type: ignore[return-value]

    def render_lines(self) -> List[str]:
        lines: List[str] = []
        for instrument in self._instruments.values():
            lines.extend(instrument.render_lines())
        return lines

    def render(self) -> str:
        """The full exposition payload (trailing newline included)."""
        return "\n".join(self.render_lines()) + "\n"


# ----------------------------------------------------------------------
# IngestionService.stats() -> metric families
# ----------------------------------------------------------------------
def ingestion_stats_lines(stats: Mapping[str, object]) -> List[str]:
    """Render one ``IngestionService.stats()`` snapshot as exposition lines.

    Monotonic service totals map to counters; live queue/shard state maps
    to gauges labelled by shard index (plus the shard's stable random
    ``stream`` id where it aids debugging a scale event).  Stateless by
    design: the service's stats dictionary *is* the state, so rendering
    twice never double-counts.
    """
    totals = dict(stats.get("totals") or {})
    per_shard = list(stats.get("per_shard") or [])

    def counter(name: str, help: str, value: object) -> Iterable[str]:
        return [
            f"# HELP {name} {help}",
            f"# TYPE {name} counter",
            _sample_line(name, {}, float(value)),  # type: ignore[arg-type]
        ]

    lines: List[str] = []
    lines += [
        "# HELP repro_ingest_up Whether the ingestion service is started.",
        "# TYPE repro_ingest_up gauge",
        _sample_line("repro_ingest_up", {}, 1 if stats.get("started") else 0),
        "# HELP repro_ingest_scaling Whether a shard scale event is in progress.",
        "# TYPE repro_ingest_scaling gauge",
        _sample_line("repro_ingest_scaling", {}, 1 if stats.get("scaling") else 0),
        "# HELP repro_ingest_shards Current shard count.",
        "# TYPE repro_ingest_shards gauge",
        _sample_line("repro_ingest_shards", {}, int(stats.get("n_shards", 0))),
        "# HELP repro_ingest_queue_capacity Per-shard queue capacity (batches).",
        "# TYPE repro_ingest_queue_capacity gauge",
        _sample_line(
            "repro_ingest_queue_capacity", {}, int(stats.get("queue_size", 0))
        ),
        "# HELP repro_ingest_kernel_backend_info Active repro.kernels "
        "backend decoding this service's reports (constant 1, label carries "
        "the identity).",
        "# TYPE repro_ingest_kernel_backend_info gauge",
        _sample_line(
            "repro_ingest_kernel_backend_info",
            {"backend": str(stats.get("kernel_backend", "numpy"))},
            1,
        ),
    ]
    lines += counter(
        "repro_ingest_submitted_batches_total",
        "Batches accepted for queueing since service creation.",
        totals.get("submitted_batches", 0),
    )
    lines += counter(
        "repro_ingest_submitted_users_total",
        "User reports accepted for queueing since service creation.",
        totals.get("submitted_users", 0),
    )
    lines += counter(
        "repro_ingest_absorbed_batches_total",
        "Batches folded into shard statistics (survives shrink events).",
        totals.get("absorbed_batches", 0),
    )
    lines += counter(
        "repro_ingest_absorbed_users_total",
        "User reports folded into shard statistics (survives shrink events).",
        totals.get("absorbed_users", 0),
    )
    lines += counter(
        "repro_ingest_rejected_batches_total",
        "Batches bounced with backpressure (full queue or mid-scale).",
        totals.get("rejected_batches", 0),
    )
    lines += counter(
        "repro_ingest_rejected_users_total",
        "User reports bounced with backpressure.",
        totals.get("rejected_users", 0),
    )
    lines += [
        "# HELP repro_ingest_scale_events_total Shard scale events by direction.",
        "# TYPE repro_ingest_scale_events_total counter",
        _sample_line(
            "repro_ingest_scale_events_total",
            {"direction": "grow"},
            int(totals.get("grow_events", 0)),
        ),
        _sample_line(
            "repro_ingest_scale_events_total",
            {"direction": "shrink"},
            int(totals.get("shrink_events", 0)),
        ),
    ]
    lines += counter(
        "repro_ingest_streams_spawned_total",
        "Independent random streams ever spawned for shards.",
        totals.get("streams_spawned", 0),
    )
    lines += counter(
        "repro_ingest_materializations_total",
        "Estimate rebuilds actually performed across live shards.",
        stats.get("materializations_performed", 0),
    )

    # Read-serving families: tolerate snapshots without a "query" section
    # (pre-read-path services, synthetic test dicts) by rendering zeros.
    query = dict(stats.get("query") or {})
    answer_cache = dict(query.get("answer_cache") or {})
    lines += counter(
        "repro_query_views_built_total",
        "Reduced+materialized read views built (one per generation change).",
        query.get("views_built", 0),
    )
    lines += counter(
        "repro_query_cache_hits_total",
        "Answer-cache hits on the live read view.",
        answer_cache.get("hits", 0),
    )
    lines += counter(
        "repro_query_cache_misses_total",
        "Answer-cache misses on the live read view.",
        answer_cache.get("misses", 0),
    )
    lines += counter(
        "repro_query_cache_evictions_total",
        "Answer-cache LRU evictions on the live read view.",
        answer_cache.get("evictions", 0),
    )
    lines += [
        "# HELP repro_query_cache_size Live answer-cache entry count.",
        "# TYPE repro_query_cache_size gauge",
        _sample_line(
            "repro_query_cache_size", {}, int(answer_cache.get("size", 0))
        ),
        "# HELP repro_query_cache_capacity Answer-cache entry bound "
        "(0 disables caching).",
        "# TYPE repro_query_cache_capacity gauge",
        _sample_line(
            "repro_query_cache_capacity", {}, int(answer_cache.get("maxsize", 0))
        ),
    ]

    gauge_specs = [
        (
            "repro_ingest_queue_depth",
            "Live queue depth (batches) per shard.",
            "queue_depth",
        ),
        (
            "repro_ingest_queue_peak",
            "Queue high-water mark (batches) per shard.",
            "queue_peak",
        ),
        (
            "repro_ingest_shard_batches",
            "Batches absorbed by each live shard.",
            "batches",
        ),
        (
            "repro_ingest_shard_users",
            "User reports absorbed by each live shard.",
            "users",
        ),
        (
            "repro_ingest_shard_rejected",
            "Batches bounced off each live shard's full queue.",
            "rejected",
        ),
    ]
    for name, help_text, field in gauge_specs:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        for entry in per_shard:
            labels = {
                "shard": str(entry.get("shard")),
                "stream": str(entry.get("stream")),
            }
            lines.append(_sample_line(name, labels, float(entry.get(field, 0))))
    return lines


def render_ingestion_stats(stats: Mapping[str, object]) -> str:
    """:func:`ingestion_stats_lines` joined into one exposition payload."""
    return "\n".join(ingestion_stats_lines(stats)) + "\n"
