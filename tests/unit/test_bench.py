"""Unit tests for the benchmark harness (repro.experiments.bench)."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.bench import (
    SUITES,
    compare_payloads,
    load_payload,
    run_suite,
)

#: Shrunk size knobs so the whole suite runs in well under a second.
TINY = dict(
    repeats=1,
    encode_users=200,
    encode_domain=32,
    unary_users=300,
    unary_domain=64,
    olh_users=100,
    olh_domain=16,
    shard_users=500,
    shard_domain=64,
    shards=2,
    consistency_branching=2,
    consistency_height=4,
    grid_users=500,
    grid_domain=16,
    grid_specs=("hhc_4",),
    grid_epsilons=(1.1,),
    grid_repetitions=1,
    grid2d_users=400,
    grid2d_side=8,
    grid2d_branching=2,
    grid2d_shards=2,
    grid2d_batches=4,
    grid2d_rectangles=50,
    stream_batch_users=4,
    stream_hh_domain=64,
    stream_hh_branching=2,
    stream_hh_batches=8,
    stream_grid_side=8,
    stream_grid_branching=2,
    stream_grid_batches=8,
    http_domain=32,
    http_shards=2,
    http_queue_size=4,
    http_batches=12,
    http_batch_users=50,
    cache_side=8,
    cache_users=400,
    cache_boxes=16,
    cache_workload_repeat=5,
    query_side=8,
    query_points=400,
    query_point_batches=2,
    query_boxes=8,
    query_requests=6,
    query_shards=2,
    query_queue_size=4,
    kernel_runs_queries=40,
    kernel_runs_branching=2,
    kernel_runs_height=6,
    gridnd_users=10_000,
    gridnd_side=16,
    gridnd_dims=3,
    gridnd_branching=4,
    gridnd_shards=2,
    gridnd_batches=3,
    gridnd_boxes=120,
    planner_branchings=(2, 4, 16),
)

EXPECTED_BENCHMARKS = {
    "encode_sue",
    "encode_oue",
    "encode_olh",
    "encode_hrr",
    "unary_aggregate_dense",
    "unary_aggregate_packed",
    "olh_decode",
    "shard_collect_reduce",
    "consistency_enforce",
    "grid2d_fit_points",
    "grid2d_rectangle_queries",
    "grid2d_shard_collect_reduce",
    "hh_consistent_stream_ingest",
    "grid2d_stream_ingest",
    "epsilon_grid_serial",
    "epsilon_grid_parallel",
    "http_ingest",
    "answer_cache",
    "query_serving",
    "kernel_unary_column_sums",
    "kernel_olh_decode",
    "kernel_badic_axis_runs",
    "transport_grid_shm",
    "gridnd_fit_points",
    "planner_pick_vs_worst",
}


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("bench")
    return run_suite(suite="smoke", workers=2, out_dir=str(out_dir), overrides=TINY)


class TestRunSuite:
    def test_writes_bench_json(self, payload):
        path = payload["path"]
        assert path.endswith("BENCH_smoke.json")
        on_disk = json.loads(open(path).read())
        assert on_disk["schema_version"] == 1
        assert on_disk["suite"] == "smoke"

    def test_all_benchmarks_present_with_throughput(self, payload):
        results = {record["name"]: record for record in payload["results"]}
        assert set(results) == EXPECTED_BENCHMARKS
        for record in results.values():
            assert record["wall_seconds"] > 0
            assert record["throughput"] > 0
            assert record["unit"]

    def test_checks_present(self, payload):
        checks = payload["checks"]
        assert checks["packed_payload_ratio"] >= 4
        assert checks["parallel_grid_bit_identical"] is True
        assert checks["packed_aggregate_speedup"] > 0
        assert checks["parallel_grid_speedup"] > 0
        assert checks["grid2d_restore_bit_identical"] is True
        assert checks["hh_stream_ingest_speedup"] > 0
        assert checks["grid2d_stream_ingest_speedup"] > 0
        assert checks["lazy_vs_eager_bit_identical"] is True
        assert checks["grid2d_rectangle_batch_speedup"] > 0
        assert checks["parallel_grid_speedup_ok"] is True
        assert checks["autoscale_bit_identical"] is True
        assert checks["http_ingest_p50_ms"] > 0
        assert checks["http_ingest_p99_ms"] >= checks["http_ingest_p50_ms"]
        assert checks["query_p50_ms"] > 0
        assert checks["query_p99_ms"] >= checks["query_p50_ms"]
        assert checks["query_cache_speedup"] > 0
        assert 0.0 <= checks["query_cache_hit_ratio"] <= 1.0
        assert checks["binary_wire_speedup"] > 0
        assert checks["cache_bit_identical"] is True
        assert checks["coalesce_bit_identical"] is True
        assert checks["kernels_bit_identical"] is True
        assert checks["kernel_backend"] in ("numpy", "numba")
        assert checks["kernel_unary_speedup"] > 0
        assert checks["kernel_olh_decode_speedup"] > 0
        assert checks["kernel_badic_runs_speedup"] > 0
        assert checks["transport_bit_identical"] is True
        assert checks["shm_transport_speedup"] > 0
        assert checks["gridnd_restore_bit_identical"] is True
        assert checks["gridnd_d2_bit_identical"] is True
        assert checks["planner_pick_beats_worst"] is True

    def test_environment_metadata(self, payload):
        environment = payload["environment"]
        for key in ("python", "numpy", "platform", "cpu_count"):
            assert environment[key]
        backend = environment["kernel_backend"]
        assert backend["active"] in ("numpy", "numba")
        assert "numpy" in backend["available"]

    def test_parameters_recorded(self, payload):
        assert payload["parameters"]["unary_domain"] == TINY["unary_domain"]
        assert payload["workers"] == 2

    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigurationError):
            run_suite(suite="nope", out_dir=None)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_suite(suite="smoke", workers=0, out_dir=None)

    def test_no_file_when_out_dir_none(self):
        result = run_suite(suite="smoke", workers=2, out_dir=None, overrides=TINY)
        assert "path" not in result

    def test_suites_registry(self):
        assert {"smoke", "full"} <= set(SUITES)


def _payload_with(throughputs):
    return {
        "results": [
            {
                "name": name,
                "throughput": value,
                "wall_seconds": 1.0 / value if value else 0.0,
            }
            for name, value in throughputs.items()
        ]
    }


class TestComparePayloads:
    def test_flags_only_drops_past_threshold(self):
        baseline = _payload_with({"a": 100.0, "b": 100.0, "c": 100.0})
        current = _payload_with({"a": 120.0, "b": 60.0, "c": 40.0})
        diff = compare_payloads(current, baseline, fail_threshold=0.5)
        by_name = {row["name"]: row for row in diff["rows"]}
        assert by_name["a"]["status"] == "ok"
        assert by_name["b"]["status"] == "ok"  # 0.6x is above the 0.5x floor
        assert by_name["c"]["status"] == "regression"
        assert diff["regressions"] == ["c"]

    def test_new_and_missing_records(self):
        baseline = _payload_with({"a": 100.0, "gone": 50.0})
        current = _payload_with({"a": 100.0, "fresh": 10.0})
        diff = compare_payloads(current, baseline)
        by_name = {row["name"]: row for row in diff["rows"]}
        assert by_name["fresh"]["status"] == "new"
        assert diff["missing"] == ["gone"]
        assert diff["regressions"] == []

    def test_zero_baseline_throughput_never_regresses(self):
        baseline = _payload_with({"a": 0.0})
        current = _payload_with({"a": 10.0})
        assert compare_payloads(current, baseline)["regressions"] == []

    def test_invalid_threshold_rejected(self):
        payload = _payload_with({"a": 1.0})
        with pytest.raises(ConfigurationError):
            compare_payloads(payload, payload, fail_threshold=1.5)

    def test_load_payload_round_trip_and_validation(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(_payload_with({"a": 1.0})))
        assert load_payload(str(path))["results"][0]["name"] == "a"
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ConfigurationError):
            load_payload(str(bad))

    def test_identical_payloads_compare_clean(self, payload):
        diff = compare_payloads(payload, payload, fail_threshold=0.1)
        assert diff["regressions"] == []
        assert diff["missing"] == []
        assert all(row["status"] == "ok" for row in diff["rows"])
        assert all(row["status"] == "ok" for row in diff["check_rows"])
        numeric = [row for row in diff["check_rows"] if row["delta"] is not None]
        assert numeric and all(row["delta"] == 0.0 for row in numeric)

    def test_check_rows_report_deltas_not_regressions(self):
        baseline = _payload_with({"a": 100.0})
        baseline["checks"] = {"speedup": 4.0, "identical": True, "backend": "numpy"}
        current = _payload_with({"a": 100.0})
        current["checks"] = {
            "speedup": 3.0,
            "identical": False,
            "backend": "numpy",
            "fresh": 1.0,
        }
        diff = compare_payloads(current, baseline)
        rows = {row["name"]: row for row in diff["check_rows"]}
        assert rows["speedup"]["delta"] == -1.0
        assert rows["speedup"]["status"] == "ok"
        assert rows["identical"]["status"] == "changed"
        assert rows["identical"]["delta"] is None
        assert rows["backend"]["status"] == "ok"
        assert rows["fresh"]["status"] == "new"
        # Check drift never gates: regressions stay record-based.
        assert diff["regressions"] == []
