"""Common interface of all frequency oracles.

A frequency oracle answers *point queries*: given reports from ``N`` users,
estimate the fraction ``theta[z]`` of users holding each item ``z`` of a
discrete domain of size ``D``.  All oracles in this package produce unbiased
estimates whose per-item variance is (asymptotically)
``V_F = 4 e^eps / (N (e^eps - 1)^2)`` — the quantity the range-query error
analysis of Section 4 is expressed in.

Four execution paths are exposed:

``encode`` / ``encode_batch`` + ``aggregate``
    The real protocol: users perturb locally, the aggregator decodes.
``estimate_from_users``
    Convenience wrapper running both halves on a vector of private items.
``simulate_aggregate``
    Samples the aggregator's noisy view directly from the exact per-item
    counts.  The sampled estimates follow the same distribution as the real
    protocol (exactly for the unary oracles, marginally for the others — see
    each oracle's docstring), which lets experiments scale to millions of
    users without materialising per-user reports.
``accumulator``
    Returns a mergeable :class:`~repro.frequency_oracles.accumulators.OracleAccumulator`
    holding the oracle's sufficient statistic, for incremental / sharded
    collection.  ``aggregate`` and ``simulate_aggregate`` are implemented on
    top of it, so the one-shot paths are single-batch accumulations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.exceptions import ConfigurationError, InvalidDomainError, InvalidQueryError
from repro.frequency_oracles.accumulators import OracleAccumulator
from repro.privacy.budget import PrivacyBudget
from repro.privacy.randomness import RandomState, as_generator

__all__ = ["FrequencyOracle", "OracleReports"]


@dataclass
class OracleReports:
    """A batch of user reports together with protocol metadata.

    Attributes
    ----------
    payload:
        Oracle-specific report data (e.g. a bit matrix for unary encodings,
        or index/value arrays for Hadamard randomized response).  Every
        array entry is per-user along its leading axis, so its first
        dimension must equal ``n_users``; scalar metadata entries (e.g. the
        packed layout's ``n_bits``) are exempt.
    n_users:
        Number of users contributing to the batch.
    """

    payload: Dict[str, Any]
    n_users: int

    def __post_init__(self) -> None:
        if self.n_users < 0:
            raise InvalidQueryError(f"n_users must be >= 0, got {self.n_users!r}")
        for key, value in self.payload.items():
            if isinstance(value, np.ndarray) and value.ndim >= 1:
                if value.shape[0] != self.n_users:
                    raise InvalidQueryError(
                        f"payload array {key!r} has leading dimension "
                        f"{value.shape[0]} but the batch declares "
                        f"{self.n_users} users; mismatched reports would "
                        f"silently mis-aggregate"
                    )


class FrequencyOracle(abc.ABC):
    """Abstract base class for ``epsilon``-LDP frequency oracles.

    Parameters
    ----------
    epsilon:
        Privacy budget spent by each user's single report.
    domain_size:
        Number of distinct items ``D``.
    """

    #: Short machine-readable identifier, e.g. ``"oue"`` or ``"hrr"``.
    name: str = "abstract"

    def __init__(self, epsilon: float, domain_size: int) -> None:
        self._budget = PrivacyBudget(epsilon)
        if not isinstance(domain_size, (int, np.integer)) or domain_size < 1:
            raise InvalidDomainError(
                f"domain size must be a positive integer, got {domain_size!r}"
            )
        self._domain_size = int(domain_size)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Privacy budget of one report."""
        return self._budget.epsilon

    @property
    def budget(self) -> PrivacyBudget:
        return self._budget

    @property
    def domain_size(self) -> int:
        """Number of items ``D`` the oracle estimates frequencies over."""
        return self._domain_size

    # ------------------------------------------------------------------
    # User side
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def encode(self, value: int, random_state: RandomState = None) -> Dict[str, Any]:
        """Perturb one user's item into a single report.

        The report is a plain dictionary so it can be serialised directly;
        its keys are oracle-specific and documented per subclass.
        """

    @abc.abstractmethod
    def encode_batch(
        self, values: np.ndarray, random_state: RandomState = None
    ) -> OracleReports:
        """Vectorised :meth:`encode` for a whole population of users."""

    # ------------------------------------------------------------------
    # Aggregator side
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def aggregate(self, reports: OracleReports) -> np.ndarray:
        """Decode a batch of reports into unbiased frequency estimates.

        Returns a length-``D`` float vector estimating the *fraction* of
        users holding each item.  Entries may be negative or exceed one —
        unbiasedness, not feasibility, is the contract (Section 3.2).
        """

    @abc.abstractmethod
    def simulate_aggregate(
        self,
        true_counts: np.ndarray,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Sample frequency estimates directly from exact per-item counts.

        ``true_counts`` is a length-``D`` integer vector whose sum is the
        population size ``N``.
        """

    # ------------------------------------------------------------------
    # Incremental aggregation
    # ------------------------------------------------------------------
    def accumulator(self) -> OracleAccumulator:
        """Fresh mergeable accumulator over this oracle's sufficient statistic.

        Concrete oracles override this; the base implementation refuses so
        that third-party oracles without an accumulator still work for
        one-shot collection.
        """
        raise ConfigurationError(
            f"{type(self).__name__} does not provide a mergeable accumulator"
        )

    def merge_signature(self) -> tuple:
        """Configuration fingerprint deciding accumulator compatibility.

        Two accumulators may merge only if their oracles' signatures are
        equal.  Subclasses with extra protocol parameters (e.g. OLH's hash
        range) extend the tuple.
        """
        return (type(self).__name__, float(self.epsilon), int(self._domain_size))

    def config_dict(self) -> Dict[str, Any]:
        """JSON-serialisable constructor arguments reproducing this oracle.

        Feeding the dictionary back through
        :func:`repro.frequency_oracles.registry.make_oracle` rebuilds an
        identically configured instance; :mod:`repro.persist` stores it in
        snapshot headers so accumulators can be restored without a template.
        Subclasses with extra protocol parameters extend the dictionary.
        """
        return {
            "name": self.name,
            "epsilon": float(self.epsilon),
            "domain_size": int(self._domain_size),
        }

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def estimate_from_users(
        self, values: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Run the full protocol on a vector of private items."""
        rng = as_generator(random_state)
        reports = self.encode_batch(np.asarray(values), rng)
        return self.aggregate(reports)

    def theoretical_variance(self, n_users: int) -> float:
        """Closed-form variance of one frequency estimate with ``n_users``.

        The default is the common bound ``4 e^eps / (N (e^eps - 1)^2)``
        shared by OUE, OLH and HRR; oracles with a different expression
        override this.
        """
        if n_users <= 0:
            raise InvalidQueryError(f"n_users must be positive, got {n_users!r}")
        e = self._budget.exp_epsilon
        return 4.0 * e / (n_users * (e - 1.0) ** 2)

    # ------------------------------------------------------------------
    # Validation helpers shared by subclasses
    # ------------------------------------------------------------------
    def _check_value(self, value: int) -> int:
        if not isinstance(value, (int, np.integer)) or not 0 <= value < self._domain_size:
            raise InvalidQueryError(
                f"item must be in [0, {self._domain_size}), got {value!r}"
            )
        return int(value)

    def _check_values(self, values: np.ndarray) -> np.ndarray:
        array = np.asarray(values)
        if array.ndim != 1:
            raise InvalidQueryError("expected a one-dimensional array of items")
        if array.size and (array.min() < 0 or array.max() >= self._domain_size):
            raise InvalidQueryError(
                f"items must be in [0, {self._domain_size})"
            )
        return array.astype(np.int64)

    def _check_counts(self, counts: np.ndarray) -> np.ndarray:
        array = np.asarray(counts, dtype=np.int64)
        if array.ndim != 1 or array.shape[0] != self._domain_size:
            raise InvalidDomainError(
                f"expected {self._domain_size} per-item counts, got shape {array.shape}"
            )
        if np.any(array < 0):
            raise InvalidQueryError("per-item counts must be non-negative")
        return array

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(epsilon={self.epsilon:.4g}, "
            f"domain_size={self.domain_size})"
        )
