"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import cauchy_probabilities, expected_counts


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for stochastic tests."""
    return np.random.default_rng(20190630)


@pytest.fixture
def small_domain() -> int:
    """Domain size used by most unit tests (power of two, power of four)."""
    return 64


@pytest.fixture
def small_counts(small_domain: int) -> np.ndarray:
    """Deterministic Cauchy-shaped counts over the small domain."""
    return expected_counts(cauchy_probabilities(small_domain), 50_000)


@pytest.fixture
def medium_counts() -> np.ndarray:
    """Deterministic Cauchy-shaped counts over a 256-item domain."""
    return expected_counts(cauchy_probabilities(256), 200_000)
