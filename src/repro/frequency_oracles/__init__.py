"""Frequency oracles (LDP point-query primitives), Section 3.2 of the paper.

Every oracle implements the same two-sided protocol:

* the **user side** (:meth:`~repro.frequency_oracles.base.FrequencyOracle.encode`)
  turns a private item into a randomized report satisfying ``epsilon``-LDP;
* the **aggregator side**
  (:meth:`~repro.frequency_oracles.base.FrequencyOracle.aggregate`) collects
  the reports and produces an unbiased estimate of the fraction of users
  holding each item.

Implemented oracles:

============================  =============================================
:class:`GeneralizedRandomizedResponse`  k-ary randomized response (k-RR)
:class:`SymmetricUnaryEncoding`         basic RAPPOR (SUE)
:class:`OptimizedUnaryEncoding`         OUE [Wang et al. 2017]
:class:`OptimalLocalHashing`            OLH [Wang et al. 2017]
:class:`HadamardRandomizedResponse`     HRR [Cormode et al. 2018; Nguyen et al. 2016]
============================  =============================================

Each oracle also provides ``simulate_aggregate``, a statistically equivalent
fast path that samples the aggregator's noisy view directly from the true
per-item counts — the trick the paper itself uses to scale OUE to very large
domains — and ``accumulator()``, a mergeable
:class:`~repro.frequency_oracles.accumulators.OracleAccumulator` over the
oracle's sufficient statistic for incremental / sharded collection.
"""

from repro.frequency_oracles.accumulators import OracleAccumulator
from repro.frequency_oracles.base import FrequencyOracle, OracleReports
from repro.frequency_oracles.hadamard import HadamardAccumulator, HadamardRandomizedResponse
from repro.frequency_oracles.local_hashing import (
    LocalHashingAccumulator,
    OptimalLocalHashing,
    UniversalHashFamily,
)
from repro.frequency_oracles.randomized_response import (
    BinaryRandomizedResponse,
    DirectEncodingAccumulator,
    GeneralizedRandomizedResponse,
)
from repro.frequency_oracles.registry import available_oracles, make_oracle
from repro.frequency_oracles.unary import (
    OptimizedUnaryEncoding,
    SymmetricUnaryEncoding,
    UnaryAccumulator,
)

__all__ = [
    "FrequencyOracle",
    "OracleReports",
    "OracleAccumulator",
    "BinaryRandomizedResponse",
    "GeneralizedRandomizedResponse",
    "DirectEncodingAccumulator",
    "SymmetricUnaryEncoding",
    "OptimizedUnaryEncoding",
    "UnaryAccumulator",
    "OptimalLocalHashing",
    "LocalHashingAccumulator",
    "UniversalHashFamily",
    "HadamardRandomizedResponse",
    "HadamardAccumulator",
    "make_oracle",
    "available_oracles",
]
