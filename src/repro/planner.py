"""Variance-driven query planner.

The paper's Figure 4 fixes a workload and sweeps the branching factor
offline to find the best tree shape; Section 6 adds that for higher
dimensions the balance tips between hierarchical products and coarse
grids.  This module turns both analyses into a runtime decision: given a
workload (range lengths, dimensionality), a population size, a privacy
budget and a domain shape, :func:`plan` evaluates the **closed-form
variance bounds** of :mod:`repro.analysis.variance` across mechanism
family x branching factor ``B`` x frequency oracle and returns a ranked
:class:`Plan`.  Like bound-driven query optimisation in databases, plans
are chosen from analytic cost bounds, not measurement — no data is
collected to plan, so planning is free of privacy cost.

Usage::

    from repro.planner import plan
    from repro.data.workloads import BoxWorkload, random_boxes

    workload = BoxWorkload(32, 3, random_boxes(32, 200, dims=3, random_state=1))
    chosen = plan(workload, n_users=200_000, epsilon=1.0)
    mechanism = chosen.mechanism()          # best candidate, ready to fit
    print(chosen.describe())                # full ranking with bounds

The ``"auto"`` / ``"auto_3d"`` factory specs
(:func:`repro.core.factory.mechanism_from_spec`) and ``python -m repro
plan`` route here.

Candidate spaces
----------------
* ``dims == 1``: the flat method, the Haar wavelet and hierarchical
  histograms with and without consistency at every candidate ``B`` —
  the full Section 4/5 design space.
* ``dims >= 2``: the hierarchical grid at every candidate ``B`` (the
  only family with a native box surface); the branching factor resolves
  the Section 6 hierarchy-vs-coarse-grid trade-off, since large ``B``
  *is* a coarse grid (``B = D`` collapses the tree to one level).

The closed forms share the oracle-independent ``V_F`` (the paper's OUE /
OLH / HRR bounds coincide asymptotically), so oracle choice breaks ties
by enumeration order rather than by bound; candidates preserve it so a
caller with measured per-oracle costs can re-rank.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.variance import (
    flat_range_variance,
    grid_nd_box_variance,
    haar_range_variance,
    hh_consistent_range_variance,
    hh_range_variance,
)
from repro.data.workloads import BoxWorkload, RangeWorkload
from repro.exceptions import ConfigurationError

__all__ = ["Plan", "PlanCandidate", "plan"]

#: Branching factors swept by default — bracketing the paper's continuous
#: optima (~4.9 plain, ~9.2 with consistency) plus the binary baseline.
DEFAULT_BRANCHINGS: Tuple[int, ...] = (2, 4, 5, 8, 16)


@dataclass(frozen=True)
class PlanCandidate:
    """One evaluated configuration: a factory spec plus its variance bound.

    ``spec`` feeds :func:`repro.core.factory.mechanism_from_spec` directly;
    ``predicted_variance`` is the workload-averaged closed-form bound the
    ranking sorts by (lower is better).
    """

    spec: str
    family: str
    dims: int
    branching: Optional[int]
    oracle: str
    predicted_variance: float


@dataclass(frozen=True)
class Plan:
    """A ranked set of candidate configurations for one planning problem.

    ``candidates`` is sorted by predicted variance, best first (ties break
    by enumeration order, which lists simpler families and the ``"oue"``
    oracle first).
    """

    n_users: int
    epsilon: float
    domain_size: int
    dims: int
    workload_name: str
    candidates: Tuple[PlanCandidate, ...] = field(default_factory=tuple)

    @property
    def best(self) -> PlanCandidate:
        return self.candidates[0]

    @property
    def worst(self) -> PlanCandidate:
        return self.candidates[-1]

    @property
    def spec(self) -> str:
        """Factory spec of the winning candidate."""
        return self.best.spec

    @property
    def predicted_variance(self) -> float:
        return self.best.predicted_variance

    def mechanism(self, **kwargs):
        """Instantiate the winning candidate (unfitted, ready to collect)."""
        from repro.core.factory import mechanism_from_spec

        return mechanism_from_spec(
            self.spec, self.epsilon, self.domain_size, **kwargs
        )

    def describe(self) -> str:
        """Human-readable ranking table (the ``python -m repro plan`` body)."""
        lines = [
            f"plan: domain {self.domain_size}"
            + (f"^{self.dims}" if self.dims > 1 else "")
            + f", n_users={self.n_users}, epsilon={self.epsilon:g}, "
            f"workload={self.workload_name}",
            f"{'rank':>4}  {'spec':<16} {'family':<10} {'B':>4}  predicted variance",
        ]
        for rank, candidate in enumerate(self.candidates, start=1):
            branching = "-" if candidate.branching is None else str(candidate.branching)
            lines.append(
                f"{rank:>4}  {candidate.spec:<16} {candidate.family:<10} "
                f"{branching:>4}  {candidate.predicted_variance:.6e}"
            )
        return "\n".join(lines)


def _candidate_lengths(
    workload: Optional[Union[BoxWorkload, RangeWorkload]],
    domain_size: int,
) -> np.ndarray:
    """Per-query characteristic lengths the bounds are averaged over.

    Boxes use their longest axis (the bounds cover ``r^d`` boxes, so the
    longest side is the conservative ``r``); with no workload the planner
    assumes the worst case — full-domain queries.
    """
    if workload is None:
        return np.array([domain_size], dtype=np.int64)
    if isinstance(workload, BoxWorkload):
        lengths = np.max(workload.axis_lengths, axis=1)
    elif isinstance(workload, RangeWorkload):
        lengths = workload.lengths
    else:
        raise ConfigurationError(
            f"workload must be a BoxWorkload or RangeWorkload, got "
            f"{type(workload).__name__}"
        )
    if lengths.size == 0:
        return np.array([domain_size], dtype=np.int64)
    return lengths


def _mean_bound(bound, lengths: np.ndarray) -> float:
    """Average a per-length closed-form bound over the workload lengths.

    Bounds depend on the length only through ``ceil(log_B r)``-style terms,
    so evaluating unique lengths once keeps planning O(distinct lengths).
    """
    unique, counts = np.unique(lengths, return_counts=True)
    values = np.array([bound(int(length)) for length in unique])
    return float(np.average(values, weights=counts))


def plan(
    workload: Optional[Union[BoxWorkload, RangeWorkload]] = None,
    n_users: int = 0,
    epsilon: float = 1.0,
    domain_size: Optional[int] = None,
    dims: Optional[int] = None,
    branchings: Sequence[int] = DEFAULT_BRANCHINGS,
    oracles: Sequence[str] = ("oue",),
) -> Plan:
    """Rank mechanism configurations by closed-form variance bound.

    Parameters
    ----------
    workload:
        The queries to plan for — a :class:`~repro.data.workloads.BoxWorkload`
        (d-dimensional) or :class:`~repro.data.workloads.RangeWorkload`
        (1-D).  ``None`` plans for the worst case (full-domain queries).
    n_users:
        Expected population size ``N`` (the bounds scale as ``1/N``; the
        ranking is invariant to it but the absolute bounds are not).
    epsilon:
        Per-user privacy budget.
    domain_size, dims:
        Domain shape; inferred from ``workload`` when given (and checked
        for consistency when both are supplied).
    branchings:
        Branching factors to sweep (default brackets the paper's optima).
    oracles:
        Frequency oracles to enumerate (the closed forms share ``V_F``,
        so extra oracles add tie-broken-by-order candidates).

    Returns
    -------
    Plan
        All evaluated candidates, best (lowest bound) first.
    """
    if workload is not None:
        if not isinstance(workload, (BoxWorkload, RangeWorkload)):
            raise ConfigurationError(
                f"workload must be a BoxWorkload or RangeWorkload, got "
                f"{type(workload).__name__}"
            )
        workload_dims = workload.dims if isinstance(workload, BoxWorkload) else 1
        if dims is not None and int(dims) != workload_dims:
            raise ConfigurationError(
                f"dims={dims!r} conflicts with the workload's {workload_dims} axes"
            )
        dims = workload_dims
        if domain_size is not None and int(domain_size) != workload.domain_size:
            raise ConfigurationError(
                f"domain_size={domain_size!r} conflicts with the workload's "
                f"domain of {workload.domain_size}"
            )
        domain_size = workload.domain_size
    if domain_size is None:
        raise ConfigurationError("plan() needs a workload or an explicit domain_size")
    dims = 1 if dims is None else int(dims)
    domain_size = int(domain_size)
    if dims < 1:
        raise ConfigurationError(f"dims must be a positive integer, got {dims!r}")
    if not isinstance(n_users, (int, np.integer)) or n_users < 1:
        raise ConfigurationError(
            f"n_users must be a positive integer, got {n_users!r}"
        )
    n_users = int(n_users)
    branchings = tuple(dict.fromkeys(int(b) for b in branchings))
    if not branchings or any(b < 2 for b in branchings):
        raise ConfigurationError(
            f"branchings must be integers >= 2, got {branchings!r}"
        )
    oracles = tuple(dict.fromkeys(str(o).lower() for o in oracles)) or ("oue",)
    lengths = _candidate_lengths(workload, domain_size)
    workload_name = "worst-case" if workload is None else workload.name

    candidates = []

    def add(spec: str, family: str, branching: Optional[int], oracle: str, bound) -> None:
        candidates.append(
            PlanCandidate(
                spec=spec,
                family=family,
                dims=dims,
                branching=branching,
                oracle=oracle,
                predicted_variance=_mean_bound(bound, lengths),
            )
        )

    if dims == 1:
        for oracle in oracles:
            suffix = "" if oracle == "oue" else f"_{oracle}"
            add(
                f"flat{suffix}",
                "flat",
                None,
                oracle,
                lambda r: flat_range_variance(epsilon, n_users, r, domain_size),
            )
            if oracle == "oue":
                # The Haar mechanism has a fixed HRR-based oracle.
                add(
                    "haar",
                    "haar",
                    None,
                    "hrr",
                    lambda r: haar_range_variance(epsilon, n_users, domain_size),
                )
            for branching in branchings:
                add(
                    f"hh_{branching}{suffix}",
                    "hh",
                    branching,
                    oracle,
                    lambda r, b=branching: hh_range_variance(
                        epsilon, n_users, r, domain_size, b
                    ),
                )
                add(
                    f"hhc_{branching}{suffix}",
                    "hhc",
                    branching,
                    oracle,
                    lambda r, b=branching: hh_consistent_range_variance(
                        epsilon, n_users, r, domain_size, b
                    ),
                )
    else:
        for oracle in oracles:
            suffix = "" if oracle == "oue" else f"_{oracle}"
            for branching in branchings:
                add(
                    f"grid{dims}d_{branching}{suffix}",
                    "gridnd",
                    branching,
                    oracle,
                    lambda r, b=branching: grid_nd_box_variance(
                        epsilon, n_users, r, domain_size, b, dims=dims
                    ),
                )

    ranked = tuple(
        sorted(candidates, key=lambda candidate: candidate.predicted_variance)
    )
    return Plan(
        n_users=n_users,
        epsilon=float(epsilon),
        domain_size=domain_size,
        dims=dims,
        workload_name=workload_name,
        candidates=ranked,
    )
