"""Discrete Haar wavelet mechanism (``HaarHRR``, Section 4.6).

Protocol summary:

* the domain is organised as a complete binary tree; each user's one-hot
  input has exactly one non-zero Haar *detail* coefficient per level, whose
  value is ``+-1 / 2^{l/2}`` (sign depending on whether the item falls in the
  left or right half of its block), plus the constant scaling coefficient
  ``1 / sqrt(D)`` which carries no information and is never reported;
* each user samples one level ``l`` (uniformly — the same optimisation as
  for hierarchical histograms) and perturbs her *rescaled* ``{-1, 0, +1}``
  coefficient vector at that level with Hadamard Randomized Response, which
  handles the negative value natively and costs a single bit plus the level
  and Hadamard index;
* the aggregator forms unbiased estimates of every Haar coefficient of the
  population's frequency vector and answers range queries as weighted
  combinations of the at most ``2 log2 D`` coefficients whose nodes are cut
  by the range (equivalently — and exactly equal, by linearity — it can
  invert the transform and sum leaf estimates, which is how this
  implementation evaluates large workloads in O(1) per query).

Because the Haar basis is orthonormal there is no redundancy between
coefficients and no consistency post-processing is needed; equation (3) of
the paper bounds the variance of *any* range query by ``log2^2(D) V_F / 2``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.base import RangeQueryMechanism
from repro.core.cache import MISS
from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.frequency_oracles.hadamard import HadamardAccumulator, HadamardRandomizedResponse
from repro.transforms.haar import haar_inverse, haar_range_weights
from repro.transforms.hadamard import is_power_of_two

__all__ = ["HaarWaveletMechanism"]


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


class HaarWaveletMechanism(RangeQueryMechanism):
    """The ``HaarHRR`` range-query mechanism.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget.
    domain_size:
        Number of items ``D``.  Non powers of two are padded internally (the
        padding never receives probability mass and is invisible to
        callers).
    level_probabilities:
        Probability of a user sampling each of the ``h = log2(D)`` detail
        levels; uniform by default (the variance-optimal choice).
    """

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        level_probabilities: Optional[Sequence[float]] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(epsilon, domain_size, name=name or "HaarHRR")
        self._padded_size = (
            int(domain_size)
            if is_power_of_two(int(domain_size))
            else _next_power_of_two(int(domain_size))
        )
        if self._padded_size < 2:
            self._padded_size = 2
        self._height = self._padded_size.bit_length() - 1
        self._level_probabilities = self._normalize_level_probabilities(level_probabilities)
        # One HRR oracle per level, over that level's coefficient positions.
        self._oracles: Dict[int, HadamardRandomizedResponse] = {
            level: HadamardRandomizedResponse(
                epsilon, self._padded_size >> level
            )
            for level in range(1, self._height + 1)
        }
        self._accumulators: Optional[Dict[int, HadamardAccumulator]] = None
        self._coefficients: Optional[np.ndarray] = None
        self._frequencies: Optional[np.ndarray] = None
        self._prefix: Optional[np.ndarray] = None
        self._level_user_counts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def padded_size(self) -> int:
        """Power-of-two size of the Haar tree actually used."""
        return self._padded_size

    @property
    def height(self) -> int:
        """Number of detail levels ``h = log2(padded_size)``."""
        return self._height

    @property
    def level_probabilities(self) -> np.ndarray:
        """Probability of a user sampling each detail level."""
        return self._level_probabilities.copy()

    @property
    def level_user_counts(self) -> Optional[np.ndarray]:
        """Users assigned to each level in the last collection."""
        return None if self._level_user_counts is None else self._level_user_counts.copy()

    def coefficients(self) -> np.ndarray:
        """Estimated Haar coefficients of the population frequency vector."""
        self._require_fitted()
        return self._coefficients.copy()

    def _normalize_level_probabilities(
        self, probabilities: Optional[Sequence[float]]
    ) -> np.ndarray:
        if probabilities is None:
            return np.full(self._height, 1.0 / self._height)
        array = np.asarray(probabilities, dtype=np.float64)
        if array.shape != (self._height,):
            raise ConfigurationError(
                f"level_probabilities must have {self._height} entries, got {array.shape}"
            )
        if np.any(array < 0) or array.sum() <= 0:
            raise ConfigurationError("level_probabilities must be non-negative and sum > 0")
        return array / array.sum()

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _reset_accumulators(self) -> None:
        self._accumulators = {
            level: self._oracles[level].accumulator()
            for level in range(1, self._height + 1)
        }
        self._level_user_counts = np.zeros(self._height, dtype=np.int64)

    def _collect(
        self,
        items: Optional[np.ndarray],
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        self._reset_accumulators()
        self._accumulate_batch(items, counts, rng, mode)
        self._mark_dirty()

    def _partial_collect(
        self,
        items: np.ndarray,
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        if self._accumulators is None:
            self._reset_accumulators()
        self._accumulate_batch(items, counts, rng, mode)

    def _merge_state(self, other: "HaarWaveletMechanism") -> None:
        if self._accumulators is None:
            self._reset_accumulators()
        for level in range(1, self._height + 1):
            self._accumulators[level].merge(other._accumulators[level])
        self._level_user_counts += other._level_user_counts

    def _merge_signature(self) -> tuple:
        return super()._merge_signature() + (
            self._padded_size,
            tuple(np.round(self._level_probabilities, 12)),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return self._pack_level_state(self._accumulators, self._level_user_counts)

    def load_state_dict(self, state: dict) -> "HaarWaveletMechanism":
        n_users, accumulators, counts = self._unpack_level_state(
            state,
            range(1, self._height + 1),
            lambda level: self._oracles[level].accumulator(),
        )
        if accumulators is not None:
            self._accumulators = accumulators
            self._level_user_counts = counts
            self._mark_dirty()
        else:
            self._accumulators = None
            self._coefficients = None
            self._frequencies = None
            self._prefix = None
            self._level_user_counts = None
            self._mark_clean()
        self._n_users = n_users
        return self

    def _accumulate_batch(
        self,
        items: Optional[np.ndarray],
        counts: np.ndarray,
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        if mode == "per_user":
            self._accumulate_per_user(items, rng)
        else:
            self._accumulate_aggregate(counts, rng)

    def _refresh_estimates(self) -> None:
        coefficients = np.zeros(self._padded_size, dtype=np.float64)
        # The scaling coefficient of a probability vector over the padded
        # domain is the known constant 1/sqrt(D'); the paper hard-codes it.
        coefficients[0] = 1.0 / np.sqrt(self._padded_size)
        for level in range(1, self._height + 1):
            start = self._padded_size >> level
            level_mean = self._accumulators[level].estimate()
            coefficients[start : 2 * start] = level_mean / (2.0 ** (level / 2.0))
        self._coefficients = coefficients
        reconstructed = haar_inverse(coefficients)
        self._frequencies = reconstructed[: self._domain_size]
        self._prefix = np.concatenate([[0.0], np.cumsum(self._frequencies)])

    def _user_blocks_and_signs(self, items: np.ndarray, level: int) -> tuple:
        """Block index and coefficient sign of every item at ``level``."""
        blocks = items >> level
        signs = np.where(((items >> (level - 1)) & 1) == 1, -1, 1)
        return blocks.astype(np.int64), signs.astype(np.int64)

    def _accumulate_per_user(self, items: np.ndarray, rng: np.random.Generator) -> None:
        """Run the real local protocol with each user sampling a level.

        Only levels that received users are visited (empty levels never
        consumed randomness anyway), so tiny streaming batches cost
        O(active levels) instead of O(h) mask scans.
        """
        n_users = items.shape[0]
        assignments = rng.choice(self._height, size=n_users, p=self._level_probabilities)
        batch_level_counts = np.bincount(assignments, minlength=self._height)
        self._level_user_counts += batch_level_counts
        for level_index in np.flatnonzero(batch_level_counts):
            level = int(level_index) + 1
            level_items = items[assignments == level_index]
            blocks, signs = self._user_blocks_and_signs(level_items, level)
            oracle = self._oracles[level]
            self._accumulators[level].add(oracle.encode_batch(blocks, rng, signs=signs))

    def _accumulate_aggregate(self, counts: np.ndarray, rng: np.random.Generator) -> None:
        """Aggregate mode: partition the counts across levels, then run the
        exact (vectorised) HRR protocol per level.

        HRR has no closed-form per-item aggregate to sample from, so the
        level populations are expanded to item vectors; the expansion is the
        only O(N) cost and is shared with the per-user path.
        """
        padded_counts = np.zeros(self._padded_size, dtype=np.int64)
        padded_counts[: self._domain_size] = counts
        remaining = padded_counts.copy()
        remaining_probability = 1.0
        for level in range(1, self._height + 1):
            probability = self._level_probabilities[level - 1]
            if level == self._height:
                level_counts = remaining.copy()
            else:
                share = 0.0 if remaining_probability <= 0 else min(
                    1.0, probability / remaining_probability
                )
                level_counts = rng.binomial(remaining, share)
                remaining -= level_counts
                remaining_probability -= probability
            batch_users = int(level_counts.sum())
            self._level_user_counts[level - 1] += batch_users
            if batch_users == 0:
                continue
            level_items = np.repeat(
                np.arange(self._padded_size, dtype=np.int64), level_counts
            )
            blocks, signs = self._user_blocks_and_signs(level_items, level)
            oracle = self._oracles[level]
            self._accumulators[level].add(oracle.encode_batch(blocks, rng, signs=signs))

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def _answer_range(self, start: int, end: int) -> float:
        return float(self._prefix[end + 1] - self._prefix[start])

    def answer_range_via_coefficients(self, start: int, end: int) -> float:
        """Answer a range directly in the coefficient basis (Section 4.6).

        Mathematically identical to :meth:`answer_range` (both are the same
        linear functional of the estimated coefficients); exposed so the
        tests can verify the equivalence and so users can see the textbook
        evaluation path.
        """
        self._require_fitted()
        start, end = self._check_range(start, end)
        indices, weights = haar_range_weights(start, end, self._padded_size)
        return float(np.dot(self._coefficients[indices], weights))

    def estimate_frequencies(self) -> np.ndarray:
        """Per-item estimates from the inverted coefficient vector."""
        self._require_fitted()
        return self._frequencies.copy()

    def estimate_cdf(self) -> np.ndarray:
        """The materialized prefix sums, reused instead of re-deriving the
        CDF from the reconstructed frequencies (bit-identical)."""
        self._require_fitted()
        return self._prefix[1:].copy()

    def answer_ranges(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised evaluation via prefix sums (O(1) per query)."""
        self._require_fitted()
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 2 or queries.shape[1] != 2:
            raise InvalidQueryError("queries must be an (n, 2) array")
        if queries.size and (
            queries.min() < 0
            or queries[:, 1].max() >= self._domain_size
            or np.any(queries[:, 0] > queries[:, 1])
        ):
            return super().answer_ranges(queries)
        key = ("ranges", queries.shape[0], queries.tobytes())
        cached = self._answer_cache.get(self._ingest_generation, key)
        if cached is not MISS:
            return cached
        value = self._prefix[queries[:, 1] + 1] - self._prefix[queries[:, 0]]
        self._answer_cache.put(self._ingest_generation, key, value)
        return value

    def per_query_variance_bound(self) -> float:
        """Equation (3): ``log2^2(D) V_F / 2`` independent of the range."""
        from repro.analysis.variance import haar_range_variance

        self._require_fitted()
        return haar_range_variance(self.epsilon, self.n_users, max(2, self._padded_size))
