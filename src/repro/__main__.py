"""``python -m repro`` — run the paper's experiments from the command line."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
