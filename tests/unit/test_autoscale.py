"""Unit tests for the load-driven shard autoscaler.

The policy is a pure function of an immutable load signal, so most of
these tests replay signals and assert decisions exactly; the tail drives a
real :class:`IngestionService` through grow and shrink events and checks
that autoscaled ``reduce()`` stays bit-identical to a static replay.
"""

import asyncio

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.service import AutoscalePolicy, IngestionService, LoadSignal, ShardAutoscaler
from repro.streaming import ShardedCollector

DOMAIN = 64
EPSILON = 1.0


def make_collector(n_shards=2, seed=7):
    return ShardedCollector(
        "flat_oue",
        epsilon=EPSILON,
        domain_size=DOMAIN,
        n_shards=n_shards,
        random_state=seed,
        router="least-loaded",
    )


def signal(depths, capacity=8, n_shards=None):
    return LoadSignal(
        n_shards=n_shards if n_shards is not None else len(depths),
        queue_capacity=capacity,
        queue_depths=tuple(depths),
    )


class TestLoadSignal:
    def test_fill_fractions(self):
        sig = signal([2, 6], capacity=8)
        assert sig.mean_fill == pytest.approx(0.5)
        assert sig.max_fill == pytest.approx(0.75)

    def test_empty_depths_read_as_idle(self):
        assert signal([], n_shards=1).mean_fill == 0.0
        assert signal([], n_shards=1).max_fill == 0.0

    def test_from_service_snapshots_queue_state(self):
        async def scenario():
            service = IngestionService(make_collector(n_shards=2), queue_size=4)
            async with service:
                await service.submit(np.arange(10, dtype=np.int64) % DOMAIN)
                sig = LoadSignal.from_service(service)
            return sig

        sig = asyncio.run(scenario())
        assert sig.n_shards == 2
        assert sig.queue_capacity == 4
        assert len(sig.queue_depths) == 2
        assert len(sig.router_loads) == 2


class TestAutoscalePolicy:
    def test_grow_when_saturated(self):
        policy = AutoscalePolicy(max_shards=4)
        assert policy.decide(signal([7, 7], capacity=8)) == 3

    def test_shrink_when_idle(self):
        policy = AutoscalePolicy(min_shards=1)
        assert policy.decide(signal([0, 0], capacity=8)) == 1

    def test_hysteresis_band_holds(self):
        policy = AutoscalePolicy()
        assert policy.decide(signal([3, 4], capacity=8)) is None

    def test_clamped_at_bounds(self):
        policy = AutoscalePolicy(min_shards=2, max_shards=3)
        # Already at max: saturated signal yields no decision, not a no-op.
        assert policy.decide(signal([8, 8, 8], capacity=8)) is None
        assert policy.decide(signal([0, 0], capacity=8)) is None

    def test_decision_is_deterministic(self):
        policy = AutoscalePolicy()
        sig = signal([8, 8], capacity=8)
        assert [policy.decide(sig) for _ in range(5)] == [3] * 5

    def test_step_sizes(self):
        policy = AutoscalePolicy(grow_step=3, shrink_step=2, max_shards=8)
        assert policy.decide(signal([8, 8], capacity=8)) == 5
        assert policy.decide(signal([0, 0, 0, 0], capacity=8)) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(min_shards=0)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(min_shards=4, max_shards=2)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(grow_at=0.5, shrink_at=0.5)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(grow_at=1.5)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(grow_step=0)


class TestShardAutoscaler:
    def test_requires_a_service(self):
        with pytest.raises(ConfigurationError):
            ShardAutoscaler(service=make_collector())
        with pytest.raises(ConfigurationError):
            ShardAutoscaler(
                service=IngestionService(make_collector()), check_interval=0
            )

    def test_note_submission_counts_toward_interval(self):
        autoscaler = ShardAutoscaler(
            service=IngestionService(make_collector()), check_interval=3
        )
        assert autoscaler.note_submission() is False
        assert autoscaler.note_submission() is False
        assert autoscaler.note_submission() is True

    def test_maybe_scale_before_interval_is_a_no_op(self):
        async def scenario():
            service = IngestionService(make_collector(n_shards=2))
            async with service:
                autoscaler = ShardAutoscaler(service=service, check_interval=16)
                return await autoscaler.maybe_scale()

        assert asyncio.run(scenario()) is None

    def test_grows_under_pressure_and_shrinks_when_idle(self, rng):
        """Drive a real service: saturate the queues with workers parked,
        let the autoscaler grow, then drain and let it shrink back."""

        async def scenario():
            collector = make_collector(n_shards=2)
            service = IngestionService(collector, queue_size=2, parallelism=0)
            policy = AutoscalePolicy(min_shards=2, max_shards=4, shrink_at=0.05)
            autoscaler = ShardAutoscaler(
                service=service, policy=policy, check_interval=1
            )
            async with service:
                # Queues fill faster than the single-threaded workers drain
                # on a busy loop; submit without yielding, then check.
                for _ in range(4):
                    service.try_submit(rng.integers(0, DOMAIN, size=200))
                    autoscaler.note_submission()
                grew_to = await autoscaler.maybe_scale()
                await service.join()  # queues now empty -> idle signal
                autoscaler.note_submission()
                shrank_to = await autoscaler.maybe_scale()
                return grew_to, shrank_to, autoscaler.decisions, service.stats()

        grew_to, shrank_to, decisions, stats = asyncio.run(scenario())
        assert grew_to == 3
        assert shrank_to == 2
        assert decisions == [(2, 3), (3, 2)]
        assert stats["totals"]["grow_events"] == 1
        assert stats["totals"]["shrink_events"] == 1

    def test_autoscaled_reduce_matches_static_replay(self, rng):
        """The acceptance contract: traffic that triggers autoscale events
        reduces bit-identically to a static collector with one shard per
        stream ever spawned, batches pinned to their logged streams."""
        batches = [rng.integers(0, DOMAIN, size=300) for _ in range(24)]

        async def scenario():
            collector = make_collector(n_shards=2, seed=11)
            service = IngestionService(collector, queue_size=2, parallelism=0)
            policy = AutoscalePolicy(min_shards=2, max_shards=4, shrink_at=0.05)
            autoscaler = ShardAutoscaler(
                service=service, policy=policy, check_interval=4
            )
            placements = []
            async with service:
                for index, batch in enumerate(batches):
                    shard = await service.submit(batch)
                    placements.append(collector.stream_ids[shard])
                    if autoscaler.note_submission():
                        if index == 11:
                            # Let the queues drain once mid-run so the idle
                            # branch (shrink) is exercised too.
                            await service.join()
                        await autoscaler.maybe_scale()
                await service.join()
            return collector, placements, autoscaler.decisions

        collector, placements, decisions = asyncio.run(scenario())
        assert decisions, "traffic should have triggered at least one event"

        static = make_collector(n_shards=collector.streams_spawned, seed=11)
        for batch, stream in zip(batches, placements):
            static.submit(batch, shard=stream)
        assert np.array_equal(
            collector.reduce().estimate_frequencies(),
            static.reduce().estimate_frequencies(),
        )
