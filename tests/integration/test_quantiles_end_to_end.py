"""End-to-end quantile estimation (Section 4.7 / Figure 9 behaviour)."""

import numpy as np
import pytest

from repro.analysis.metrics import quantile_errors
from repro.core.factory import mechanism_from_spec
from repro.core.quantiles import DECILES, estimate_quantiles
from repro.data.synthetic import cauchy_probabilities, expected_counts

DOMAIN = 2048
N_USERS = 1 << 17
EPSILON = 1.1


@pytest.fixture(scope="module", params=[0.1, 0.5], ids=["left-skewed", "centered"])
def dataset(request):
    probabilities = cauchy_probabilities(DOMAIN, center_fraction=request.param)
    return expected_counts(probabilities, N_USERS)


@pytest.mark.parametrize("spec", ["hhc_2", "hhc_4", "haar"])
def test_decile_quantile_error_is_small(spec, dataset):
    # The paper's headline observation (Section 5.5): the *quantile error*
    # stays small even where the value error spikes in sparse regions.
    mechanism = mechanism_from_spec(spec, epsilon=EPSILON, domain_size=DOMAIN)
    mechanism.fit_counts(dataset, random_state=42)
    returned = estimate_quantiles(mechanism, DECILES)
    errors = quantile_errors(dataset, DECILES, returned)
    assert errors["quantile_error"].max() < 0.08
    assert errors["quantile_error"].mean() < 0.03


@pytest.mark.parametrize("spec", ["hhc_4", "haar"])
def test_value_error_is_a_small_fraction_of_the_domain(spec, dataset):
    mechanism = mechanism_from_spec(spec, epsilon=EPSILON, domain_size=DOMAIN)
    mechanism.fit_counts(dataset, random_state=7)
    returned = estimate_quantiles(mechanism, DECILES)
    errors = quantile_errors(dataset, DECILES, returned)
    # "less than 1%" of the domain in the paper's words (Section 5.5).
    assert errors["value_error"].mean() < 0.05 * DOMAIN


def test_estimated_cdf_tracks_true_cdf(dataset):
    mechanism = mechanism_from_spec("haar", epsilon=EPSILON, domain_size=DOMAIN)
    mechanism.fit_counts(dataset, random_state=11)
    from repro.core.quantiles import estimate_cdf

    estimated = estimate_cdf(mechanism)
    truth = np.cumsum(dataset) / dataset.sum()
    # The Haar bound gives a per-prefix standard deviation of ~0.04 at this
    # scale, so allow a couple of standard deviations for the maximum over
    # all 2048 prefixes.
    assert np.max(np.abs(estimated - truth)) < 0.1
