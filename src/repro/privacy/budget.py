"""Privacy budget handling.

Under pure local differential privacy a single parameter ``epsilon`` governs
how much any single report may reveal about the user's true value: for every
pair of inputs ``z``, ``z'`` and every output ``O`` of the randomizer ``F``,

    Pr[F(z) = O] <= exp(epsilon) * Pr[F(z') = O].

The paper evaluates ``epsilon`` in ``[0.2, 1.4]`` with a default of
``epsilon = ln(3) ~= 1.1`` ("e^eps = 3").  This module provides a small value
object, :class:`PrivacyBudget`, which validates the parameter once and
exposes the derived quantities (``exp(eps)``) that the oracles need, plus a
``split``/``compose`` API used by the budget-splitting ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import InvalidPrivacyBudgetError

__all__ = ["PrivacyBudget", "exp_epsilon", "validate_epsilon"]


def validate_epsilon(epsilon: float) -> float:
    """Validate an ``epsilon`` value and return it as a ``float``.

    Parameters
    ----------
    epsilon:
        The privacy parameter.  Must be a strictly positive finite real
        number.  Values above ``50`` are rejected as almost certainly a bug
        (``exp(50)`` overflows the useful range of the estimators and no
        deployment uses such weak privacy).

    Raises
    ------
    InvalidPrivacyBudgetError
        If the value is not a positive finite number within ``(0, 50]``.
    """
    try:
        value = float(epsilon)
    except (TypeError, ValueError) as exc:
        raise InvalidPrivacyBudgetError(
            f"epsilon must be a real number, got {epsilon!r}"
        ) from exc
    if math.isnan(value) or math.isinf(value):
        raise InvalidPrivacyBudgetError(f"epsilon must be finite, got {value!r}")
    if value <= 0.0:
        raise InvalidPrivacyBudgetError(f"epsilon must be positive, got {value!r}")
    if value > 50.0:
        raise InvalidPrivacyBudgetError(
            f"epsilon={value!r} is implausibly large (no privacy); refusing"
        )
    return value


def exp_epsilon(epsilon: float) -> float:
    """Validate ``epsilon`` and return ``exp(epsilon)``.

    The likelihood-ratio bound of the LDP guarantee.  All probability
    arithmetic on ``epsilon`` is confined to :mod:`repro.privacy`
    (lint rule LDP-R002); modules that need ``e^eps`` — variance bounds,
    oracle perturbation probabilities — call this helper (or
    :attr:`PrivacyBudget.exp_epsilon`) instead of ``math.exp`` so that
    every epsilon crossing into arithmetic has been validated exactly once.
    """
    return math.exp(validate_epsilon(epsilon))


@dataclass(frozen=True)
class PrivacyBudget:
    """An immutable ``epsilon``-LDP privacy budget.

    Attributes
    ----------
    epsilon:
        The privacy parameter, validated at construction time.
    """

    epsilon: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "epsilon", validate_epsilon(self.epsilon))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def exp_epsilon(self) -> float:
        """``exp(epsilon)``, the likelihood-ratio bound of the guarantee."""
        return math.exp(self.epsilon)

    @property
    def rr_keep_probability(self) -> float:
        """Probability ``p = e^eps / (1 + e^eps)`` of binary randomized
        response reporting the true bit.  With the paper's default
        ``e^eps = 3`` this is ``3/4``."""
        e = self.exp_epsilon
        return e / (1.0 + e)

    # ------------------------------------------------------------------
    # Composition helpers (used by the budget-splitting ablation)
    # ------------------------------------------------------------------
    def split(self, parts: int) -> "PrivacyBudget":
        """Return the budget each of ``parts`` sequential mechanisms may use
        so that their (sequential) composition still satisfies ``epsilon``.

        The paper contrasts *sampling* a tree level (each user spends the
        whole budget on one level) with *splitting* the budget across all
        ``h`` levels; splitting inflates the error from ``O(h)`` to
        ``O(h^2)`` and is implemented only for the ablation benchmark.
        """
        if not isinstance(parts, int) or parts < 1:
            raise InvalidPrivacyBudgetError(
                f"number of parts must be a positive integer, got {parts!r}"
            )
        return PrivacyBudget(self.epsilon / parts)

    @staticmethod
    def compose(budgets: "list[PrivacyBudget]") -> "PrivacyBudget":
        """Sequential composition: the total budget is the sum of parts."""
        if not budgets:
            raise InvalidPrivacyBudgetError("cannot compose an empty list of budgets")
        return PrivacyBudget(sum(b.epsilon for b in budgets))

    @classmethod
    def from_exp_epsilon(cls, exp_epsilon: float) -> "PrivacyBudget":
        """Construct from ``e^eps`` (the paper often quotes ``e^eps = 3``)."""
        if exp_epsilon <= 1.0:
            raise InvalidPrivacyBudgetError(
                f"exp(epsilon) must exceed 1, got {exp_epsilon!r}"
            )
        return cls(math.log(exp_epsilon))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrivacyBudget(epsilon={self.epsilon:.4g})"
