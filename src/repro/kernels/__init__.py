"""``repro.kernels`` — registry-dispatched hot-loop kernels.

The three throughput-critical inner loops of the library live here behind a
backend registry: blocked packed-bit column sums (the SUE/OUE aggregate
path), the OLH hash-match decode, and B-adic run enumeration (batched range
answering and the 2-D rectangle path).  Each kernel has a pure-numpy
reference implementation (always registered) and an optional numba
``@njit`` one (the ``[compiled]`` extra), selected per process by the
``REPRO_KERNEL_BACKEND`` environment variable or programmatically with
:func:`set_backend` / :func:`use_backend`.  The two implementations of each
kernel are bit-identical on all inputs — the compiled backend changes wall
time, never results.

The module-level functions below are the dispatching entry points the hot
paths call; they resolve the active backend on every call, so a
``set_backend`` takes effect immediately.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.registry import (
    BACKEND_ENV_VAR,
    BACKENDS,
    KERNEL_NAMES,
    active_backend,
    available_backends,
    backend_info,
    get_kernel,
    missing_numpy_twins,
    numba_available,
    register_kernel,
    requested_backend,
    set_backend,
    use_backend,
    verify_registry,
)
from repro.kernels import numpy_backend  # noqa: F401  (registers the reference)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "KERNEL_NAMES",
    "active_backend",
    "available_backends",
    "backend_info",
    "badic_axis_runs",
    "get_kernel",
    "missing_numpy_twins",
    "numba_available",
    "olh_decode",
    "register_kernel",
    "requested_backend",
    "set_backend",
    "unary_column_sums",
    "use_backend",
    "verify_registry",
]


def unary_column_sums(
    packed: np.ndarray, n_bits: int, block_target_bytes: int
) -> np.ndarray:
    """Column sums of a ``np.packbits``-packed bit matrix (int64, exact)."""
    return get_kernel("unary_column_sums")(packed, n_bits, block_target_bytes)


def olh_decode(
    a: np.ndarray,
    b: np.ndarray,
    values: np.ndarray,
    domain_size: int,
    hash_range: int,
    prime: int,
    block_target_bytes: int,
) -> np.ndarray:
    """Per-item OLH support counts (int64, exact) for a report batch."""
    return get_kernel("olh_decode")(
        a, b, values, domain_size, hash_range, prime, block_target_bytes
    )


def badic_axis_runs(
    starts: np.ndarray, ends: np.ndarray, branching: int, height: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-level B-adic peel bounds ``(height, 4, n)`` plus survivor mask."""
    return get_kernel("badic_axis_runs")(starts, ends, branching, height)
