"""Canonical perturbation probabilities and LDP verification helpers.

Every frequency oracle in the paper is built from one of a small set of
randomizers, each fully characterised by a pair of probabilities ``(p, q)``:

* ``p`` — the probability of reporting "1" (or of keeping the true symbol)
  when the true bit/symbol matches;
* ``q`` — the probability of reporting "1" (or of emitting a given wrong
  symbol) when it does not match.

The ``epsilon``-LDP constraint is ``p / q <= e^eps`` together with the
symmetric constraint ``(1 - q) / (1 - p) <= e^eps`` for binary outputs.  This
module centralises those formulas so mechanisms never hand-roll them, and
offers :func:`verify_ldp` / :func:`ldp_guarantee_epsilon`, used both by the
unit tests and by the property-based tests to certify that every oracle's
advertised guarantee matches the probabilities it actually uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.privacy.budget import validate_epsilon

__all__ = [
    "PerturbationProbabilities",
    "binary_rr_probability",
    "grr_probabilities",
    "oue_probabilities",
    "sue_probabilities",
    "olh_probabilities",
    "ldp_guarantee_epsilon",
    "verify_ldp",
]


@dataclass(frozen=True)
class PerturbationProbabilities:
    """The ``(p, q)`` pair characterising a randomizer.

    Attributes
    ----------
    p:
        Probability of a "truthful" output (bit kept / true symbol reported).
    q:
        Probability of the same output being produced from a non-matching
        input (bit set from a zero / a specific wrong symbol reported).
    """

    p: float
    q: float

    def __post_init__(self) -> None:
        for name, value in (("p", self.p), ("q", self.q)):
            if not 0.0 < value < 1.0:
                raise ConfigurationError(
                    f"perturbation probability {name}={value!r} must be in (0, 1)"
                )
        if self.p <= self.q:
            raise ConfigurationError(
                f"p={self.p!r} must exceed q={self.q!r} for a useful randomizer"
            )

    @property
    def gap(self) -> float:
        """``p - q``, the denominator of every unbiased-correction step."""
        return self.p - self.q


def binary_rr_probability(epsilon: float) -> float:
    """Keep-probability of binary (Warner) randomized response.

    ``p = e^eps / (1 + e^eps)``; the bit is flipped with probability
    ``1 - p``.  For ``e^eps = 3`` (the paper's default) ``p = 0.75``.
    """
    eps = validate_epsilon(epsilon)
    e = math.exp(eps)
    return e / (1.0 + e)


def grr_probabilities(epsilon: float, domain_size: int) -> PerturbationProbabilities:
    """Generalized randomized response (k-RR, [Kairouz et al. 2016]).

    The user reports her true symbol with probability
    ``p = e^eps / (e^eps + k - 1)`` and each of the other ``k - 1`` symbols
    with probability ``q = 1 / (e^eps + k - 1)``.
    """
    eps = validate_epsilon(epsilon)
    if not isinstance(domain_size, int) or domain_size < 2:
        raise ConfigurationError(
            f"GRR needs a domain of at least two symbols, got {domain_size!r}"
        )
    e = math.exp(eps)
    denom = e + domain_size - 1
    return PerturbationProbabilities(p=e / denom, q=1.0 / denom)


def sue_probabilities(epsilon: float) -> PerturbationProbabilities:
    """Symmetric unary encoding (basic RAPPOR).

    Each bit of the one-hot vector is kept with probability
    ``p = e^{eps/2} / (1 + e^{eps/2})`` and flipped otherwise, so
    ``q = 1 - p``.  Included as a baseline; OUE (below) dominates it.
    """
    eps = validate_epsilon(epsilon)
    e_half = math.exp(eps / 2.0)
    p = e_half / (1.0 + e_half)
    return PerturbationProbabilities(p=p, q=1.0 - p)


def oue_probabilities(epsilon: float) -> PerturbationProbabilities:
    """Optimized unary encoding ([Wang et al. 2017], Section 3.2 of the paper).

    The "1" bit is reported truthfully with probability ``p = 1/2`` while a
    "0" bit is flipped to "1" with probability ``q = 1 / (1 + e^eps)``.  The
    asymmetric choice minimises the estimator variance
    ``4 e^eps / (N (e^eps - 1)^2)``.
    """
    eps = validate_epsilon(epsilon)
    return PerturbationProbabilities(p=0.5, q=1.0 / (1.0 + math.exp(eps)))


def olh_probabilities(epsilon: float, hash_range: int) -> PerturbationProbabilities:
    """Optimal local hashing: GRR applied to the hashed symbol in ``[g]``.

    ``p`` is the probability of reporting the true hash value.  ``q`` here is
    the *support probability* of a non-true item in the original domain,
    which is ``1/g`` because a universal hash collides uniformly.
    """
    eps = validate_epsilon(epsilon)
    if not isinstance(hash_range, int) or hash_range < 2:
        raise ConfigurationError(
            f"OLH hash range must be an integer >= 2, got {hash_range!r}"
        )
    e = math.exp(eps)
    p = e / (e + hash_range - 1)
    return PerturbationProbabilities(p=p, q=1.0 / hash_range)


def ldp_guarantee_epsilon(p: float, q: float, binary_output: bool = True) -> float:
    """Return the tightest ``epsilon`` guaranteed by a ``(p, q)`` randomizer.

    For a binary-output randomizer the likelihood ratio is maximised either
    by the "1" output (``p / q``) or the "0" output (``(1 - q) / (1 - p)``),
    so the guarantee is the log of the larger of the two.  For categorical
    randomizers only the first ratio applies.
    """
    if not (0.0 < q <= p < 1.0):
        raise ConfigurationError(f"need 0 < q <= p < 1, got p={p!r}, q={q!r}")
    ratio = p / q
    if binary_output:
        ratio = max(ratio, (1.0 - q) / (1.0 - p))
    return math.log(ratio)


def verify_ldp(
    p: float, q: float, epsilon: float, binary_output: bool = True, tol: float = 1e-9
) -> bool:
    """Check that a ``(p, q)`` randomizer satisfies ``epsilon``-LDP.

    A small tolerance absorbs floating point error in the probability
    formulas; the property tests use the default ``1e-9``.
    """
    eps = validate_epsilon(epsilon)
    return ldp_guarantee_epsilon(p, q, binary_output=binary_output) <= eps + tol
