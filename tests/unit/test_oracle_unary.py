"""Unit tests for the unary-encoding frequency oracles (SUE / OUE)."""

import numpy as np
import pytest

from repro.exceptions import InvalidDomainError, InvalidQueryError
from repro.frequency_oracles import unary as unary_module
from repro.frequency_oracles.base import OracleReports
from repro.frequency_oracles.unary import (
    OptimizedUnaryEncoding,
    SymmetricUnaryEncoding,
    packed_column_sums,
)


class TestConfiguration:
    def test_oue_probabilities(self):
        oracle = OptimizedUnaryEncoding(epsilon=np.log(3.0), domain_size=16)
        assert oracle.p == pytest.approx(0.5)
        assert oracle.q == pytest.approx(0.25)

    def test_sue_probabilities(self):
        oracle = SymmetricUnaryEncoding(epsilon=1.0, domain_size=16)
        assert oracle.p + oracle.q == pytest.approx(1.0)

    def test_theoretical_variance_matches_paper_formula(self):
        epsilon = 1.1
        oracle = OptimizedUnaryEncoding(epsilon=epsilon, domain_size=32)
        expected = 4.0 * np.exp(epsilon) / (1000 * (np.exp(epsilon) - 1.0) ** 2)
        assert oracle.theoretical_variance(1000) == pytest.approx(expected)

    def test_invalid_domain(self):
        with pytest.raises(InvalidDomainError):
            OptimizedUnaryEncoding(epsilon=1.0, domain_size=0)


class TestEncoding:
    def test_encode_shape_and_dtype(self, rng):
        oracle = OptimizedUnaryEncoding(epsilon=1.0, domain_size=20)
        report = oracle.encode(3, rng)
        assert report["bits"].shape == (20,)
        assert set(np.unique(report["bits"])) <= {0, 1}

    def test_encode_batch_packs_by_default(self, rng):
        oracle = OptimizedUnaryEncoding(epsilon=1.0, domain_size=10)
        reports = oracle.encode_batch(rng.integers(0, 10, size=50), rng)
        assert reports.payload["packed_bits"].shape == (50, 2)  # ceil(10 / 8)
        assert reports.payload["packed_bits"].dtype == np.uint8
        assert reports.payload["n_bits"] == 10
        assert reports.n_users == 50

    def test_encode_batch_dense_layout(self, rng):
        oracle = OptimizedUnaryEncoding(epsilon=1.0, domain_size=10)
        reports = oracle.encode_batch(rng.integers(0, 10, size=50), rng, packed=False)
        assert reports.payload["bits"].shape == (50, 10)
        assert reports.n_users == 50

    def test_encode_rejects_out_of_domain(self, rng):
        oracle = OptimizedUnaryEncoding(epsilon=1.0, domain_size=10)
        with pytest.raises(InvalidQueryError):
            oracle.encode(10, rng)
        with pytest.raises(InvalidQueryError):
            oracle.encode_batch(np.array([0, 11]), rng)

    def test_own_bit_distribution(self, rng):
        # The user's own bit must be reported "1" with probability ~p = 0.5.
        oracle = OptimizedUnaryEncoding(epsilon=1.0, domain_size=4)
        reports = oracle.encode_batch(np.zeros(4000, dtype=int), rng, packed=False)
        own_bit_rate = reports.payload["bits"][:, 0].mean()
        assert own_bit_rate == pytest.approx(oracle.p, abs=0.03)

    def test_other_bit_distribution(self, rng):
        oracle = OptimizedUnaryEncoding(epsilon=1.0, domain_size=4)
        reports = oracle.encode_batch(np.zeros(4000, dtype=int), rng, packed=False)
        other_bit_rate = reports.payload["bits"][:, 1].mean()
        assert other_bit_rate == pytest.approx(oracle.q, abs=0.03)


class TestPackedReports:
    """The packed and dense layouts are interchangeable, bit for bit."""

    def _paired_reports(self, oracle, n_users=500, seed=17):
        values = np.random.default_rng(3).integers(0, oracle.domain_size, size=n_users)
        packed = oracle.encode_batch(values, np.random.default_rng(seed), packed=True)
        dense = oracle.encode_batch(values, np.random.default_rng(seed), packed=False)
        return packed, dense

    def test_packed_and_dense_estimates_identical(self):
        oracle = OptimizedUnaryEncoding(epsilon=1.1, domain_size=37)
        packed, dense = self._paired_reports(oracle)
        from_packed = oracle.accumulator().add(packed).estimate()
        from_dense = oracle.accumulator().add(dense).estimate()
        np.testing.assert_array_equal(from_packed, from_dense)

    def test_mixed_packed_and_dense_batches(self):
        oracle = SymmetricUnaryEncoding(epsilon=1.0, domain_size=12)
        packed, dense = self._paired_reports(oracle, n_users=200)
        other = oracle.encode_batch(
            np.arange(200) % 12, np.random.default_rng(5), packed=False
        )
        mixed = oracle.accumulator().add(packed).add(other).estimate()
        all_dense = oracle.accumulator().add(dense).add(other).estimate()
        np.testing.assert_array_equal(mixed, all_dense)

    def test_packed_payload_is_at_least_4x_smaller(self, rng):
        domain = 1024
        oracle = OptimizedUnaryEncoding(epsilon=1.1, domain_size=domain)
        values = rng.integers(0, domain, size=64)
        packed = oracle.encode_batch(values, rng, packed=True)
        dense = oracle.encode_batch(values, rng, packed=False)
        assert dense.payload["bits"].nbytes >= 4 * packed.payload["packed_bits"].nbytes

    def test_block_size_invariance(self, monkeypatch):
        oracle = OptimizedUnaryEncoding(epsilon=1.0, domain_size=50)
        packed, dense = self._paired_reports(oracle, n_users=300)
        expected = oracle.accumulator().add(dense).estimate()
        for target_bytes in (1, 64, 1 << 20):
            monkeypatch.setattr(
                unary_module, "UNARY_SUM_BLOCK_TARGET_BYTES", target_bytes
            )
            got = oracle.accumulator().add(packed).estimate()
            np.testing.assert_array_equal(got, expected)

    def test_packed_snapshot_round_trip(self):
        from repro import persist

        oracle = OptimizedUnaryEncoding(epsilon=1.2, domain_size=20)
        packed, _ = self._paired_reports(oracle, n_users=150)
        accumulator = oracle.accumulator().add(packed)
        restored = persist.from_bytes(persist.to_bytes(accumulator))
        np.testing.assert_array_equal(restored.estimate(), accumulator.estimate())
        assert restored.n_users == accumulator.n_users

    def test_packed_wrong_width_rejected(self):
        oracle = OptimizedUnaryEncoding(epsilon=1.0, domain_size=32)
        bad = OracleReports(
            payload={"packed_bits": np.zeros((5, 3), dtype=np.uint8), "n_bits": 32},
            n_users=5,
        )
        with pytest.raises(InvalidQueryError):
            oracle.accumulator().add(bad)
        mismatched = OracleReports(
            payload={"packed_bits": np.zeros((5, 4), dtype=np.uint8), "n_bits": 24},
            n_users=5,
        )
        with pytest.raises(InvalidQueryError):
            oracle.accumulator().add(mismatched)

    def test_packed_column_sums_matches_unpacked(self, rng):
        bits = (rng.random((93, 41)) < 0.4).astype(np.uint8)
        packed = np.packbits(bits, axis=1)
        np.testing.assert_array_equal(
            packed_column_sums(packed, 41), bits.sum(axis=0)
        )


class TestAggregation:
    def test_unbiasedness_on_average(self, rng):
        domain = 8
        oracle = OptimizedUnaryEncoding(epsilon=1.5, domain_size=domain)
        true = np.array([0.5, 0.2, 0.1, 0.1, 0.05, 0.05, 0.0, 0.0])
        counts = (true * 20_000).astype(int)
        estimates = np.mean(
            [oracle.simulate_aggregate(counts, rng) for _ in range(20)], axis=0
        )
        np.testing.assert_allclose(estimates, true, atol=0.02)

    def test_per_user_and_aggregate_agree_statistically(self, rng):
        domain = 6
        oracle = OptimizedUnaryEncoding(epsilon=1.2, domain_size=domain)
        counts = np.array([4000, 2000, 1000, 500, 400, 100])
        items = np.repeat(np.arange(domain), counts)
        per_user = oracle.estimate_from_users(items, rng)
        aggregate = oracle.simulate_aggregate(counts, rng)
        # Both are unbiased estimates of the same frequencies with the same
        # variance; they should agree within a few standard deviations.
        tolerance = 6 * np.sqrt(oracle.theoretical_variance(int(counts.sum())))
        np.testing.assert_allclose(per_user, aggregate, atol=tolerance)

    def test_aggregate_validates_report_shape(self):
        from repro.frequency_oracles.base import OracleReports

        oracle = OptimizedUnaryEncoding(epsilon=1.0, domain_size=10)
        with pytest.raises(ValueError):
            oracle.aggregate(OracleReports(payload={"bits": np.zeros((5, 3))}, n_users=5))

    def test_empty_population(self, rng):
        oracle = OptimizedUnaryEncoding(epsilon=1.0, domain_size=5)
        estimates = oracle.simulate_aggregate(np.zeros(5, dtype=int), rng)
        np.testing.assert_array_equal(estimates, np.zeros(5))

    def test_estimates_sum_close_to_one(self, rng):
        oracle = OptimizedUnaryEncoding(epsilon=2.0, domain_size=64)
        counts = rng.multinomial(100_000, np.full(64, 1 / 64))
        estimates = oracle.simulate_aggregate(counts, rng)
        assert estimates.sum() == pytest.approx(1.0, abs=0.1)

    def test_empirical_variance_matches_theory(self, rng):
        # The canonical bound V_F = 4 e^eps / (N (e^eps - 1)^2) is derived for
        # small true frequencies, so measure it on a rare item (f ~ 5%).
        oracle = OptimizedUnaryEncoding(epsilon=1.1, domain_size=4)
        counts = np.array([5000, 3000, 1500, 500])
        n_users = int(counts.sum())
        samples = np.array([oracle.simulate_aggregate(counts, rng)[3] for _ in range(300)])
        observed = samples.var()
        expected = oracle.theoretical_variance(n_users)
        assert observed == pytest.approx(expected, rel=0.35)
