"""Integration tests for the HTTP ingestion front.

Each test boots a real :class:`HttpServerThread` (service + asyncio HTTP
server + optional autoscaler on a dedicated loop thread) on an ephemeral
port and talks to it over loopback TCP with :class:`ServiceClient` — or a
raw ``http.client`` connection when the test needs to send bytes the
client refuses to produce (malformed JSON, wrong paths).

Covered error paths, per the network-tier contract: malformed JSON → 400,
epsilon/domain disagreement with the served spec → 409, queue overload →
503 with ``Retry-After``, and submissions landing across an autoscale
event — after which ``reduce()`` must stay bit-identical to a static run.
"""

import re
import signal
import subprocess
import sys
import threading
import time
from http.client import HTTPConnection

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ServiceOverloadedError
from repro.service import AutoscalePolicy, HttpServerThread, ServiceClient
from repro.streaming import ShardedCollector

DOMAIN = 64
EPSILON = 1.0


def make_collector(n_shards=2, seed=7, spec="flat_oue", domain=DOMAIN):
    return ShardedCollector(
        spec,
        epsilon=EPSILON,
        domain_size=domain,
        n_shards=n_shards,
        random_state=seed,
        router="least-loaded",
    )


def stats_after_absorbing(server, n_batches, attempts=200):
    """Poll until the service has absorbed ``n_batches`` (acceptance is
    acknowledged before absorption completes, so a freshly-202'd batch may
    still be in flight toward its shard)."""
    for _ in range(attempts):
        stats = server.stats()
        if stats["totals"]["absorbed_batches"] >= n_batches:
            return stats
        time.sleep(0.01)
    raise AssertionError(
        f"service absorbed {stats['totals']['absorbed_batches']} of "
        f"{n_batches} accepted batches"
    )


def raw_request(server, method, path, body=None, headers=None):
    """One request outside ServiceClient's guardrails; returns
    ``(status, headers_dict, body_bytes)``."""
    connection = HTTPConnection(server.host, server.port, timeout=10)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestHappyPath:
    def test_healthz_reports_served_spec(self):
        with HttpServerThread(make_collector()) as server:
            with ServiceClient(*server.address) as client:
                health = client.healthz().json()
        assert health["status"] == "ok"
        assert health["shards"] == 2
        assert health["scaling"] is False
        assert health["spec"] == "flat_oue"
        assert health["epsilon"] == pytest.approx(EPSILON)
        assert health["domain_size"] == DOMAIN

    def test_accepted_batches_are_absorbed_and_reduce(self, rng):
        batches = [rng.integers(0, DOMAIN, size=500) for _ in range(6)]
        server = HttpServerThread(make_collector(seed=13))
        with server:
            with ServiceClient(*server.address) as client:
                for batch in batches:
                    response = client.post_batch(batch)
                    assert response.status == 202
                    body = response.json()
                    assert body["shard"] in (0, 1)
                    assert body["stream"] in (0, 1)
            stats = server.stats()
        assert stats["totals"]["absorbed_batches"] == 6
        assert stats["totals"]["absorbed_users"] == 3000
        estimate = server.reduce().estimate_frequencies()
        assert estimate.shape == (DOMAIN,)

    def test_points_endpoint_feeds_the_2d_grid(self, rng):
        side = 16
        collector = make_collector(spec="grid2d_2", domain=side, n_shards=2)
        points = rng.integers(0, side, size=(800, 2))
        server = HttpServerThread(collector)
        with server:
            with ServiceClient(*server.address) as client:
                response = client.post_points(points)
                assert response.status == 202
            stats = server.stats()
        assert stats["totals"]["absorbed_users"] == 800
        server.reduce()  # merged grid must materialise cleanly

    def test_matching_spec_claims_are_accepted(self, rng):
        with HttpServerThread(make_collector()) as server:
            with ServiceClient(*server.address) as client:
                response = client.post_batch(
                    rng.integers(0, DOMAIN, size=50),
                    epsilon=EPSILON,
                    domain_size=DOMAIN,
                )
                assert response.status == 202


class TestMetricsEndpoint:
    SAMPLE_RE = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
        r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
        r" (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$"
    )

    def test_metrics_is_valid_prometheus_text(self, rng):
        server = HttpServerThread(make_collector())
        with server:
            with ServiceClient(*server.address) as client:
                for _ in range(3):
                    client.post_batch(rng.integers(0, DOMAIN, size=100))
                text = client.metrics()
                status, headers, _ = raw_request(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        for line in text.strip().split("\n"):
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert self.SAMPLE_RE.match(line), f"malformed line: {line!r}"
        assert "repro_ingest_submitted_batches_total 3" in text
        assert "repro_ingest_submitted_users_total 300" in text
        # The scrape itself is instrumented alongside the ingest counters.
        assert 'repro_http_requests_total{method="POST",path="/v1/batches",status="202"} 3' in text
        assert 'repro_http_request_seconds_bucket{path="/v1/batches",le="+Inf"} 3' in text


class TestErrorPaths:
    def test_malformed_json_is_400(self):
        with HttpServerThread(make_collector()) as server:
            status, _, body = raw_request(
                server,
                "POST",
                "/v1/batches",
                body=b'{"items": [1, 2',
                headers={"Content-Type": "application/json"},
            )
        assert status == 400
        assert b"malformed JSON" in body

    def test_non_object_body_is_400(self):
        with HttpServerThread(make_collector()) as server:
            status, _, _ = raw_request(
                server, "POST", "/v1/batches", body=b"[1, 2, 3]"
            )
        assert status == 400

    def test_epsilon_mismatch_is_409(self, rng):
        with HttpServerThread(make_collector()) as server:
            with ServiceClient(*server.address) as client:
                response = client.post_batch(
                    rng.integers(0, DOMAIN, size=10), epsilon=EPSILON * 2
                )
        assert response.status == 409
        assert "epsilon" in response.json()["error"]

    def test_domain_mismatch_is_409(self, rng):
        with HttpServerThread(make_collector()) as server:
            with ServiceClient(*server.address) as client:
                response = client.post_batch(
                    rng.integers(0, DOMAIN, size=10), domain_size=DOMAIN * 2
                )
        assert response.status == 409
        assert "domain" in response.json()["error"]

    def test_out_of_domain_items_are_400(self):
        with HttpServerThread(make_collector()) as server:
            with ServiceClient(*server.address) as client:
                response = client.post_batch([0, 1, DOMAIN + 5])
        assert response.status == 400

    def test_unknown_path_404_wrong_method_405(self):
        with HttpServerThread(make_collector()) as server:
            status_404, _, _ = raw_request(server, "GET", "/v1/nope")
            status_405, _, _ = raw_request(server, "GET", "/v1/batches")
        assert status_404 == 404
        assert status_405 == 405

    def test_points_on_a_1d_mechanism_is_400(self, rng):
        with HttpServerThread(make_collector(spec="flat_oue")) as server:
            with ServiceClient(*server.address) as client:
                response = client.post_points(rng.integers(0, 8, size=(10, 2)))
        assert response.status == 400
        assert "point surface" in response.json()["error"]


class TestBackpressure:
    def test_overload_is_503_with_retry_after(self, rng):
        """Deterministic overload: absorption is parked on an event (the
        worker blocks inside the thread pool, so the event loop keeps
        answering), a 1-slot queue fills, and the next batch must bounce
        with 503 + Retry-After.  Releasing the event drains the queue and
        the same batch goes through on retry."""
        collector = make_collector(n_shards=1)
        release = threading.Event()
        original_submit = collector.submit

        def blocked_submit(items, shard=None, mode=None, key=None):
            release.wait(timeout=30)
            return original_submit(items, shard=shard, mode=mode, key=key)

        collector.submit = blocked_submit
        batch = rng.integers(0, DOMAIN, size=100)
        server = HttpServerThread(collector, queue_size=1, parallelism=1)
        try:
            with server:
                with ServiceClient(*server.address) as client:
                    statuses = []
                    rejected = None
                    for _ in range(4):
                        response = client.post_batch(batch)
                        statuses.append(response.status)
                        if response.status == 503:
                            rejected = response
                            break
                    assert rejected is not None, f"no 503 in {statuses}"
                    assert rejected.retry_after is not None
                    assert rejected.retry_after >= 1
                    assert "retry" in rejected.json()["error"].lower()

                    release.set()
                    retried = client.post_batch_retrying(batch)
                    assert retried.status == 202

                accepted = statuses.count(202) + 1
                stats = stats_after_absorbing(server, accepted)
        finally:
            release.set()  # never leave the worker parked on failure
        # The retrying client may catch one more 503 racing the drain, so
        # the rejection count is a floor, not an exact figure.
        rejections = stats["totals"]["rejected_batches"]
        assert rejections >= 1
        assert stats["totals"]["rejected_users"] == 100 * rejections
        assert stats["totals"]["absorbed_batches"] == accepted
        assert stats["per_shard"][0]["rejected"] == rejections

    def test_retrying_client_gives_up_eventually(self, rng):
        collector = make_collector(n_shards=1)
        release = threading.Event()
        original_submit = collector.submit

        def blocked_submit(items, shard=None, mode=None, key=None):
            release.wait(timeout=30)
            return original_submit(items, shard=shard, mode=mode, key=key)

        collector.submit = blocked_submit
        batch = rng.integers(0, DOMAIN, size=50)
        server = HttpServerThread(collector, queue_size=1, parallelism=1)
        try:
            with server:
                with ServiceClient(*server.address) as client:
                    # Fill the absorption slot and the queue.
                    while client.post_batch(batch).status == 202:
                        pass
                    with pytest.raises(ServiceOverloadedError):
                        client.post_batch_retrying(
                            batch, max_attempts=3, max_sleep=0.01
                        )
                    # Unpark absorption *before* stop() so the drain-on-exit
                    # doesn't sit out the event's full timeout.
                    release.set()
        finally:
            release.set()


class TestAutoscaleOverHttp:
    def test_submissions_across_scale_events_reduce_bit_identically(self, rng):
        """The acceptance contract over the wire: a run whose shard set
        grows and shrinks mid-traffic reduces bit-identically to a static
        collector with one shard per stream ever spawned, every batch
        pinned to the stream the 202 response reported."""
        batches = [rng.integers(0, DOMAIN, size=400) for _ in range(18)]
        collector = make_collector(n_shards=2, seed=29)
        server = HttpServerThread(collector, queue_size=8)
        placements = []
        with server:
            with ServiceClient(*server.address) as client:
                for index, batch in enumerate(batches):
                    if index == 6:
                        stats = server.scale_to(3)
                        assert stats["n_shards"] == 3
                    elif index == 12:
                        stats = server.scale_to(2)
                        assert stats["n_shards"] == 2
                    response = client.post_batch_retrying(batch)
                    assert response.status == 202
                    placements.append(response.json()["stream"])
            final = server.stats()

        assert final["totals"]["grow_events"] == 1
        assert final["totals"]["shrink_events"] == 1
        assert final["totals"]["streams_spawned"] == 3
        assert final["totals"]["absorbed_batches"] == len(batches)

        static = make_collector(n_shards=3, seed=29)
        for batch, stream in zip(batches, placements):
            static.submit(batch, shard=stream)
        assert np.array_equal(
            server.reduce().estimate_frequencies(),
            static.reduce().estimate_frequencies(),
        )

    def test_load_driven_autoscaler_grows_over_http(self, rng):
        """With absorption parked, accepted batches pile up in the queues;
        the submission-counted autoscaler sees the saturated signal on an
        accepted request and grows the fleet.  The grow itself quiesces
        (scale happens at a generation boundary), so a timer releases the
        parked workers shortly after — the drain is what lets the scale
        event complete."""
        collector = make_collector(n_shards=2, seed=5)
        release = threading.Event()
        original_submit = collector.submit

        def blocked_submit(items, shard=None, mode=None, key=None):
            release.wait(timeout=30)
            return original_submit(items, shard=shard, mode=mode, key=key)

        collector.submit = blocked_submit
        server = HttpServerThread(
            collector,
            queue_size=2,
            parallelism=1,
            policy=AutoscalePolicy(min_shards=2, max_shards=3),
            check_interval=1,
        )
        try:
            threading.Timer(0.5, release.set).start()
            with server:
                with ServiceClient(*server.address) as client:
                    # Batches park in the single absorption slot and stack
                    # up in the 2-deep queues until mean fill crosses the
                    # grow threshold at one of the per-request checks.
                    accepted = 0
                    for _ in range(8):
                        if client.post_batch(
                            rng.integers(0, DOMAIN, size=64)
                        ).status == 202:
                            accepted = accepted + 1
                    assert accepted >= 3
                stats = server.stats()
        finally:
            release.set()
        assert stats["totals"]["grow_events"] >= 1
        assert server.autoscaler is not None
        assert server.autoscaler.decisions[0] == (2, 3)


class TestFraming:
    def test_oversized_body_is_413(self):
        with HttpServerThread(make_collector()) as server:
            payload = b'{"items": [' + b"1," * 9 + b"1]}"
            status, _, _ = raw_request(
                server,
                "POST",
                "/v1/batches",
                body=payload,
                headers={"Content-Length": str(64 * 1024 * 1024)},
            )
        assert status == 413

    def test_bad_content_length_is_400(self):
        with HttpServerThread(make_collector()) as server:
            connection = HTTPConnection(server.host, server.port, timeout=10)
            try:
                connection.putrequest("POST", "/v1/batches", skip_host=False)
                connection.putheader("Content-Length", "not-a-number")
                connection.endheaders()
                response = connection.getresponse()
                assert response.status == 400
            finally:
                connection.close()

    def test_reduce_refused_while_serving(self, rng):
        server = HttpServerThread(make_collector())
        with server:
            with ServiceClient(*server.address) as client:
                client.post_batch(rng.integers(0, DOMAIN, size=100))
            with pytest.raises(ConfigurationError, match="stop"):
                server.reduce()
        server.reduce()  # fine once stopped and drained


class TestServeCommand:
    def test_serve_accepts_traffic_and_stops_on_sigint(self, rng):
        """`python -m repro serve` end to end: boot on an ephemeral port,
        parse the banner for the bound address, ingest a batch over the
        wire, then SIGINT for a clean drain-and-exit."""
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--domain", "64", "--shards", "2",
                "--mechanism", "flat_oue", "--epsilon", "1.0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no address in banner: {banner!r}"
            host, port = match.group(1), int(match.group(2))
            with ServiceClient(host, port) as client:
                assert client.healthz().json()["status"] == "ok"
                response = client.post_batch(rng.integers(0, 64, size=200))
                assert response.status == 202
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


class TestClientRobustness:
    def test_client_reconnects_after_server_side_close(self, rng):
        """Keep-alive connections die when the peer restarts between
        requests; the client transparently redials once."""
        collector = make_collector(seed=3)
        server = HttpServerThread(collector)
        with server:
            client = ServiceClient(*server.address)
            assert client.healthz().ok
            # Force the pooled socket stale by closing it server-side:
            # easiest deterministic trigger is closing our own connection.
            client._connection.close()
            assert client.healthz().ok
            client.close()
