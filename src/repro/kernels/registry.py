"""Kernel backend registry: ``numpy`` (always) and ``numba`` (optional).

The three hot loops of the library — blocked packed-bit column sums (unary
oracles), the OLH hash-match decode and B-adic run enumeration — each exist
in two implementations that are **bit-identical** on every input: a pure
numpy one (the always-correct fallback, no dependencies beyond the core
install) and a numba ``@njit`` one (the ``[compiled]`` extra).  This module
owns which one a call dispatches to:

* ``REPRO_KERNEL_BACKEND=numpy|numba|auto`` selects the backend for the
  whole process (read lazily, on the first kernel call);
* :func:`set_backend` selects it programmatically and wins over the
  environment; :func:`use_backend` is the scoped/context-manager form;
* ``auto`` (the default) picks ``numba`` when it imports cleanly and falls
  back to ``numpy`` otherwise — requesting ``numba`` through the
  *environment* also degrades gracefully to numpy when the import fails,
  whereas an explicit ``set_backend("numba")`` raises so programmatic
  callers are never silently downgraded.

Backends register their kernels with the :func:`register_kernel` decorator.
Registration is **pairwise by contract**: every kernel registered under a
compiled backend must have a numpy twin (enforced at import by
:func:`verify_registry` and statically by lint rule LDP-R007), so a
compiled-only kernel can never ship.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from repro.exceptions import ConfigurationError

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "KERNEL_NAMES",
    "active_backend",
    "available_backends",
    "backend_info",
    "get_kernel",
    "missing_numpy_twins",
    "numba_available",
    "register_kernel",
    "requested_backend",
    "set_backend",
    "use_backend",
    "verify_registry",
]

#: Environment variable selecting the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Known backend names, in fallback order (``numpy`` is the reference).
BACKENDS = ("numpy", "numba")

#: The kernels every backend may implement (numpy must implement all).
KERNEL_NAMES = ("unary_column_sums", "olh_decode", "badic_axis_runs")

_VALID_REQUESTS = ("auto",) + BACKENDS

_registry: Dict[str, Dict[str, Callable]] = {backend: {} for backend in BACKENDS}
_lock = threading.Lock()

#: Programmatic request (``set_backend``); ``None`` defers to the env var.
_requested: Optional[str] = None
#: Resolved backend, cached until the request changes.
_active: Optional[str] = None

#: Numba import state: ``None`` = not yet attempted.
_numba_loaded: Optional[bool] = None
_numba_error: Optional[str] = None


def register_kernel(backend: str, name: str) -> Callable[[Callable], Callable]:
    """Class a function as backend ``backend``'s implementation of ``name``."""
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown kernel backend {backend!r}; expected one of {BACKENDS}"
        )
    if name not in KERNEL_NAMES:
        raise ConfigurationError(
            f"unknown kernel {name!r}; expected one of {KERNEL_NAMES}"
        )

    def decorator(function: Callable) -> Callable:
        _registry[backend][name] = function
        return function

    return decorator


def _load_numba_backend() -> None:
    """Import the numba backend once; remember why it failed if it did."""
    global _numba_loaded, _numba_error
    if _numba_loaded is not None:
        return
    with _lock:
        if _numba_loaded is not None:
            return
        try:
            from repro.kernels import numba_backend  # noqa: F401

            verify_registry()
            _numba_loaded = True
        except ConfigurationError:
            _numba_loaded = False
            raise
        except Exception as error:  # ImportError, or numba failing to jit
            _numba_loaded = False
            _numba_error = f"{type(error).__name__}: {error}"


def numba_available() -> bool:
    """Whether the compiled backend imported (and registered) cleanly."""
    _load_numba_backend()
    return bool(_numba_loaded)


def available_backends() -> List[str]:
    """Backends usable in this process, reference backend first."""
    return ["numpy"] + (["numba"] if numba_available() else [])


def requested_backend() -> str:
    """The raw request: ``set_backend`` value, else the env var, else auto.

    Unrecognised environment values degrade to ``auto`` (an env typo must
    not take the library down); :func:`set_backend` validates strictly.
    """
    if _requested is not None:
        return _requested
    value = os.environ.get(BACKEND_ENV_VAR, "auto").strip().lower() or "auto"
    return value if value in _VALID_REQUESTS else "auto"


def active_backend() -> str:
    """Resolve (and cache) the backend kernel calls dispatch to."""
    global _active
    if _active is None:
        request = requested_backend()
        if request == "numpy":
            _active = "numpy"
        else:  # "auto" or "numba": both fall back gracefully
            _active = "numba" if numba_available() else "numpy"
    return _active


def set_backend(backend: Optional[str]) -> str:
    """Select the kernel backend for the process; returns the active one.

    ``None`` (or ``"auto"``) re-enables auto-detection / the environment
    variable.  Explicitly requesting ``"numba"`` when the compiled backend
    is unavailable raises :class:`~repro.exceptions.ConfigurationError`
    (programmatic callers asked for it by name and should hear about it);
    only the env-var / auto paths fall back silently.
    """
    global _requested, _active
    if backend is not None and backend not in _VALID_REQUESTS:
        raise ConfigurationError(
            f"unknown kernel backend {backend!r}; expected one of {_VALID_REQUESTS}"
        )
    if backend == "numba" and not numba_available():
        raise ConfigurationError(
            "kernel backend 'numba' is unavailable"
            + (f" ({_numba_error})" if _numba_error else "")
            + "; install the [compiled] extra or use set_backend('numpy')"
        )
    _requested = None if backend in (None, "auto") else backend
    _active = None
    return active_backend()


@contextmanager
def use_backend(backend: Optional[str]) -> Iterator[str]:
    """Scoped :func:`set_backend`; restores the previous request on exit."""
    global _requested, _active
    previous = _requested
    try:
        yield set_backend(backend)
    finally:
        _requested = previous
        _active = None


def get_kernel(name: str, backend: Optional[str] = None) -> Callable:
    """The callable implementing kernel ``name`` on ``backend``.

    ``backend=None`` dispatches to the active backend; a backend that does
    not implement the kernel falls through to the numpy reference (which
    implements all of them — enforced by :func:`verify_registry`).
    """
    if name not in KERNEL_NAMES:
        raise ConfigurationError(
            f"unknown kernel {name!r}; expected one of {KERNEL_NAMES}"
        )
    if backend is None:
        backend = active_backend()
    elif backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown kernel backend {backend!r}; expected one of {BACKENDS}"
        )
    elif backend == "numba":
        _load_numba_backend()
    implementation = _registry[backend].get(name)
    if implementation is None:
        implementation = _registry["numpy"].get(name)
    if implementation is None:
        raise ConfigurationError(f"kernel {name!r} has no registered implementation")
    return implementation


def missing_numpy_twins() -> List[str]:
    """Kernels registered under a compiled backend without a numpy twin."""
    reference = _registry["numpy"]
    missing = []
    for backend in BACKENDS:
        if backend == "numpy":
            continue
        for name in _registry[backend]:
            if name not in reference:
                missing.append(f"{backend}:{name}")
    return sorted(missing)


def verify_registry() -> None:
    """Raise unless every compiled kernel has its numpy twin registered."""
    missing = missing_numpy_twins()
    if missing:
        raise ConfigurationError(
            "compiled kernels without a numpy twin (pairwise registration "
            f"contract, see LDP-R007): {', '.join(missing)}"
        )


def backend_info() -> Dict[str, object]:
    """Identity block for bench/service metadata: what runs the kernels."""
    info: Dict[str, object] = {
        "requested": requested_backend(),
        "active": active_backend(),
        "available": available_backends(),
        "numba_available": numba_available(),
    }
    if _numba_error is not None:
        info["numba_error"] = _numba_error
    if _numba_loaded:
        try:
            import numba

            info["numba_version"] = numba.__version__
        except Exception:  # pragma: no cover - numba imported moments ago
            pass
    return info
