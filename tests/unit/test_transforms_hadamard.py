"""Unit tests for repro.transforms.hadamard."""

import numpy as np
import pytest

from repro.exceptions import InvalidDomainError
from repro.transforms.hadamard import (
    fast_walsh_hadamard_transform,
    hadamard_entries,
    hadamard_entry,
    hadamard_matrix,
    inverse_fast_walsh_hadamard_transform,
    is_power_of_two,
)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 8, 1024, 1 << 20])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 12, 1000])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)


class TestHadamardMatrix:
    def test_paper_example_d8(self):
        # Figure 1 of the paper: the D = 8 Hadamard matrix (unnormalised).
        matrix = hadamard_matrix(8)
        expected_row_1 = np.array([1, -1, 1, -1, 1, -1, 1, -1])
        expected_row_3 = np.array([1, -1, -1, 1, 1, -1, -1, 1])
        np.testing.assert_array_equal(matrix[1], expected_row_1)
        np.testing.assert_array_equal(matrix[3], expected_row_3)

    def test_orthogonality(self):
        matrix = hadamard_matrix(16)
        np.testing.assert_array_equal(matrix @ matrix, 16 * np.eye(16, dtype=np.int64))

    def test_normalized_is_orthonormal(self):
        matrix = hadamard_matrix(8, normalized=True)
        np.testing.assert_allclose(matrix @ matrix.T, np.eye(8), atol=1e-12)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(InvalidDomainError):
            hadamard_matrix(6)


class TestHadamardEntries:
    def test_matches_matrix(self):
        matrix = hadamard_matrix(16)
        rows, cols = np.meshgrid(np.arange(16), np.arange(16), indexing="ij")
        entries = hadamard_entries(rows.ravel(), cols.ravel()).reshape(16, 16)
        np.testing.assert_array_equal(entries, matrix)

    def test_scalar_entry(self):
        assert hadamard_entry(0, 5) == 1
        assert hadamard_entry(3, 1) == -1

    def test_negative_index_rejected(self):
        with pytest.raises(InvalidDomainError):
            hadamard_entry(-1, 2)


class TestFastTransform:
    def test_matches_matrix_multiplication(self, rng):
        size = 32
        vector = rng.normal(size=size)
        expected = hadamard_matrix(size) @ vector
        np.testing.assert_allclose(fast_walsh_hadamard_transform(vector), expected, atol=1e-9)

    def test_inverse_roundtrip(self, rng):
        vector = rng.normal(size=64)
        transformed = fast_walsh_hadamard_transform(vector)
        np.testing.assert_allclose(
            inverse_fast_walsh_hadamard_transform(transformed), vector, atol=1e-9
        )

    def test_one_hot_transform_is_matrix_column(self):
        size = 16
        for item in (0, 3, 15):
            one_hot = np.zeros(size)
            one_hot[item] = 1.0
            np.testing.assert_allclose(
                fast_walsh_hadamard_transform(one_hot), hadamard_matrix(size)[:, item]
            )

    def test_input_not_modified(self):
        vector = np.ones(8)
        fast_walsh_hadamard_transform(vector)
        np.testing.assert_array_equal(vector, np.ones(8))

    def test_rejects_bad_shapes(self):
        with pytest.raises(InvalidDomainError):
            fast_walsh_hadamard_transform(np.ones((4, 4)))
        with pytest.raises(InvalidDomainError):
            fast_walsh_hadamard_transform(np.ones(6))
