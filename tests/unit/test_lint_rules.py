"""Unit tests for :mod:`repro.devtools.lint` — one good/bad fixture pair per
rule family, plus suppression, baseline and CLI behavior.

Fixture files live in pytest temp dirs.  Paths without a ``repro``
component count as plain library code (no directory exemption applies),
which is exactly what these snippets want; the scoping tests build a fake
``repro/<subpackage>/`` layout explicitly.
"""

import json
import textwrap

from repro.devtools import lint as lintmod


def lint_source(tmp_path, source, name="mod.py", baseline=None):
    """Write ``source`` under ``tmp_path`` and lint the whole directory."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    findings, stats = lintmod.lint_paths([tmp_path], baseline=baseline)
    return findings, stats


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestRngHygieneR001:
    def test_legacy_global_state_calls_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            import numpy as np

            def sample():
                np.random.seed(0)
                return np.random.randint(10)
            """,
        )
        assert rules_of(findings) == ["LDP-R001"]
        assert len(findings) == 2

    def test_hardcoded_default_rng_seed_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            import numpy as np

            RNG = np.random.default_rng(42)
            """,
        )
        assert rules_of(findings) == ["LDP-R001"]
        assert "hard-coded RNG seed" in findings[0].message

    def test_generator_parameter_flow_is_clean(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            import numpy as np

            def sample(rng, random_state=None):
                rng = np.random.default_rng(random_state)
                seq = np.random.SeedSequence([1, 2])
                return rng.integers(10)
            """,
        )
        assert findings == []

    def test_experiments_and_data_dirs_are_exempt(self, tmp_path):
        bad = """
        import numpy as np
        RNG = np.random.default_rng(7)
        """
        findings, _ = lint_source(tmp_path, bad, name="repro/experiments/gen.py")
        assert findings == []
        findings, _ = lint_source(tmp_path, bad, name="repro/data/synth.py")
        assert findings == []
        findings, _ = lint_source(tmp_path, bad, name="repro/core/mech.py")
        assert rules_of(findings) == ["LDP-R001"]


class TestEpsilonFlowR002:
    def test_raw_exp_epsilon_flagged_outside_privacy(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            import math

            def variance(epsilon, n):
                e = math.exp(epsilon)
                return 4.0 * e / (n * (e - 1.0) ** 2)
            """,
        )
        assert rules_of(findings) == ["LDP-R002"]

    def test_exp_of_non_epsilon_is_clean(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            import math

            def gaussian(x, std):
                return math.exp(-0.5 * (x / std) ** 2)
            """,
        )
        assert findings == []

    def test_privacy_package_owns_exp_epsilon(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            import math

            def exp_epsilon(epsilon):
                return math.exp(epsilon)
            """,
            name="repro/privacy/budget.py",
        )
        assert findings == []

    def test_constructor_storing_raw_epsilon_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            class Mechanism:
                def __init__(self, epsilon, domain_size):
                    self._epsilon = float(epsilon)
                    self._domain_size = domain_size
            """,
        )
        assert rules_of(findings) == ["LDP-R002"]
        assert "validate_epsilon" in findings[0].message

    def test_constructor_validating_or_forwarding_is_clean(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            class Validating:
                def __init__(self, epsilon):
                    self._budget = PrivacyBudget(epsilon)

            class Forwarding:
                def __init__(self, epsilon, domain_size):
                    super().__init__(epsilon, domain_size)
                    self._tag = "forwarded"
            """,
        )
        assert findings == []


class TestWritePathPurityR003:
    def test_materialize_in_write_path_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            class Mechanism:
                def partial_fit(self, items):
                    self._collect(items)
                    self.materialize()
            """,
        )
        assert rules_of(findings) == ["LDP-R003"]
        assert "materialize" in findings[0].message

    def test_estimate_attribute_read_in_write_path_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            class Mechanism:
                def state_dict(self):
                    return {}

                def load_state_dict(self, state):
                    total = self._frequencies.sum()
                    return total
            """,
        )
        assert rules_of(findings) == ["LDP-R003"]

    def test_estimate_attribute_reset_is_clean(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            class Mechanism:
                def state_dict(self):
                    return {"statistics": self._statistics}

                def load_state_dict(self, state):
                    self._statistics = state["statistics"]
                    self._frequencies = None
                    self._prefix = None
                    self._mark_dirty()
                    return self

                def merge_from(self, other):
                    self._statistics += other._statistics
                    return self
            """,
        )
        assert findings == []

    def test_read_surfaces_may_read_estimates(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            class Mechanism:
                def answer_range(self, start, end):
                    self._require_fitted()
                    return self._prefix[end + 1] - self._prefix[start]
            """,
        )
        assert findings == []


class TestAsyncioDisciplineR004:
    def test_blocking_sleep_and_result_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            import time

            async def worker(future):
                time.sleep(0.1)
                return future.result()
            """,
        )
        assert rules_of(findings) == ["LDP-R004"]
        assert len(findings) == 2

    def test_discarded_gather_with_return_exceptions_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            import asyncio

            async def stop(tasks):
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
            """,
        )
        assert rules_of(findings) == ["LDP-R004"]
        assert "return_exceptions" in findings[0].message

    def test_consumed_gather_is_clean(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            import asyncio

            async def stop(tasks):
                results = await asyncio.gather(*tasks, return_exceptions=True)
                return [r for r in results if isinstance(r, BaseException)]
            """,
        )
        assert findings == []

    def test_discarded_create_task_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            import asyncio

            async def kick(job):
                asyncio.create_task(job())
            """,
        )
        assert rules_of(findings) == ["LDP-R004"]
        assert "create_task" in findings[0].message

    def test_retained_task_and_async_sleep_clean(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            import asyncio

            async def run(jobs):
                tasks = [asyncio.create_task(job()) for job in jobs]
                handle = asyncio.create_task(jobs[0]())
                await asyncio.sleep(0.1)
                await asyncio.gather(*tasks)
                return await handle
            """,
        )
        assert findings == []

    def test_sync_helpers_shipped_to_executors_are_exempt(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            import asyncio

            async def aggregate(loop, pool, path):
                def blocking_read():
                    with open(path) as handle:
                        return handle.read()

                return await loop.run_in_executor(pool, blocking_read)
            """,
        )
        assert findings == []

    def test_sync_open_inside_async_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            async def snapshot(path):
                with open(path, "wb") as handle:
                    handle.write(b"state")
            """,
        )
        assert rules_of(findings) == ["LDP-R004"]


class TestPersistCoverageR005:
    def test_state_dict_without_load_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            class HalfSnapshot:
                def state_dict(self):
                    return {}
            """,
        )
        assert rules_of(findings) == ["LDP-R005"]
        assert "load_state_dict" in findings[0].message

    def test_load_without_state_dict_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            class OtherHalf:
                def load_state_dict(self, state):
                    return self
            """,
        )
        assert rules_of(findings) == ["LDP-R005"]

    def test_paired_hooks_clean(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            class FullSnapshot:
                def state_dict(self):
                    return {}

                def load_state_dict(self, state):
                    return self
            """,
        )
        assert findings == []

    def _write_tree(self, tmp_path, snapshots_source):
        mech = tmp_path / "repro" / "core" / "mech.py"
        mech.parent.mkdir(parents=True)
        mech.write_text(
            textwrap.dedent(
                """
                class ShinyMechanism(RangeQueryMechanism):
                    def state_dict(self):
                        return {}

                    def load_state_dict(self, state):
                        return self
                """
            ),
            encoding="utf-8",
        )
        snap = tmp_path / "repro" / "persist" / "snapshots.py"
        snap.parent.mkdir(parents=True)
        snap.write_text(textwrap.dedent(snapshots_source), encoding="utf-8")
        return lintmod.lint_paths([tmp_path])

    def test_unregistered_mechanism_flagged(self, tmp_path):
        findings, _ = self._write_tree(
            tmp_path,
            """
            def mechanism_config(mechanism):
                if isinstance(mechanism, SomeOtherMechanism):
                    return {"kind": "other"}
            """,
        )
        assert rules_of(findings) == ["LDP-R005"]
        assert "ShinyMechanism" in findings[0].message
        assert "config kind" in findings[0].message

    def test_registered_mechanism_clean(self, tmp_path):
        findings, _ = self._write_tree(
            tmp_path,
            """
            def mechanism_config(mechanism):
                if isinstance(mechanism, ShinyMechanism):
                    return {"kind": "shiny"}
            """,
        )
        assert findings == []

    def test_abstract_mechanisms_need_no_registration(self, tmp_path):
        mech = tmp_path / "repro" / "core" / "mech.py"
        mech.parent.mkdir(parents=True)
        mech.write_text(
            textwrap.dedent(
                """
                import abc

                class TemplateMechanism(RangeQueryMechanism, abc.ABC):
                    def state_dict(self):
                        return {}

                    def load_state_dict(self, state):
                        return self
                """
            ),
            encoding="utf-8",
        )
        snap = tmp_path / "repro" / "persist" / "snapshots.py"
        snap.parent.mkdir(parents=True)
        snap.write_text("REGISTRY = {}\n", encoding="utf-8")
        findings, _ = lintmod.lint_paths([tmp_path])
        assert findings == []


class TestExceptionDisciplineR006:
    def test_bare_stdlib_exceptions_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            def answer(start, end):
                if start > end:
                    raise ValueError("bad range")
                if end < 0:
                    raise RuntimeError("not fitted")
                raise Exception("boom")
            """,
        )
        assert rules_of(findings) == ["LDP-R006"]
        assert len(findings) == 3

    def test_repro_exception_types_clean(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            from repro.exceptions import InvalidQueryError, NotFittedError

            def answer(start, end):
                if start > end:
                    raise InvalidQueryError("bad range")
                if end < 0:
                    raise NotFittedError("not fitted")
                raise TypeError("programming error, allowed to propagate")
            """,
        )
        assert findings == []

    def test_reraise_is_clean(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            def forward(fn):
                try:
                    return fn()
                except KeyError:
                    raise
            """,
        )
        assert findings == []


class TestKernelPairingR007:
    def test_compiled_only_registration_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            from repro.kernels import register_kernel

            @register_kernel("numba", "column_sums")
            def fast_column_sums(packed):
                return packed
            """,
        )
        assert rules_of(findings) == ["LDP-R007"]
        assert "column_sums" in findings[0].message

    def test_paired_registration_is_clean_across_files(self, tmp_path):
        (tmp_path / "numpy_backend.py").write_text(
            "from repro.kernels import register_kernel\n\n"
            '@register_kernel("numpy", "column_sums")\n'
            "def column_sums(packed):\n"
            "    return packed\n",
            encoding="utf-8",
        )
        findings, _ = lint_source(
            tmp_path,
            """
            from repro.kernels import register_kernel

            @register_kernel("numba", "column_sums")
            def fast_column_sums(packed):
                return packed
            """,
            name="numba_backend.py",
        )
        assert findings == []

    def test_plain_call_form_and_dotted_name_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            from repro.kernels import registry

            def decode(values):
                return values

            registry.register_kernel("numba", "decode")(decode)
            """,
        )
        assert rules_of(findings) == ["LDP-R007"]

    def test_non_literal_arguments_are_ignored(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            from repro.kernels import register_kernel

            BACKEND = "numba"

            @register_kernel(BACKEND, "decode")
            def decode(values):
                return values
            """,
        )
        assert findings == []

    def test_numpy_only_registration_is_clean(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            """
            from repro.kernels import register_kernel

            @register_kernel("numpy", "decode")
            def decode(values):
                return values
            """,
        )
        assert findings == []


class TestSuppressionAndBaseline:
    BAD = """
    import numpy as np

    def sample():
        np.random.seed(0)
    """

    def test_targeted_noqa_suppresses(self, tmp_path):
        findings, stats = lint_source(
            tmp_path,
            """
            import numpy as np

            def sample():
                np.random.seed(0)  # repro: noqa[LDP-R001]
            """,
        )
        assert findings == []
        assert stats["suppressed"] == 1

    def test_blanket_noqa_suppresses(self, tmp_path):
        findings, stats = lint_source(
            tmp_path,
            """
            import numpy as np

            def sample():
                np.random.seed(0)  # repro: noqa
            """,
        )
        assert findings == []
        assert stats["suppressed"] == 1

    def test_mismatched_noqa_rule_does_not_suppress(self, tmp_path):
        findings, stats = lint_source(
            tmp_path,
            """
            import numpy as np

            def sample():
                np.random.seed(0)  # repro: noqa[LDP-R006]
            """,
        )
        assert rules_of(findings) == ["LDP-R001"]
        assert stats["suppressed"] == 0

    def test_baseline_forgives_exactly_once(self, tmp_path):
        findings, _ = lint_source(tmp_path, self.BAD)
        assert len(findings) == 1
        baseline = [findings[0].fingerprint]
        forgiven, stats = lintmod.lint_paths([tmp_path], baseline=baseline)
        assert forgiven == []
        assert stats["baselined"] == 1
        # The same fingerprint does not forgive a second occurrence.
        (tmp_path / "second.py").write_text(
            textwrap.dedent(self.BAD), encoding="utf-8"
        )
        remaining, stats = lintmod.lint_paths([tmp_path], baseline=baseline)
        assert len(remaining) == 1
        assert stats["baselined"] == 1

    def test_baseline_file_round_trip(self, tmp_path):
        source_dir = tmp_path / "code"
        findings, _ = lint_source(source_dir, self.BAD)
        baseline_path = tmp_path / "baseline.json"
        lintmod.write_baseline(baseline_path, findings)
        fingerprints = lintmod.load_baseline(baseline_path)
        assert fingerprints == [findings[0].fingerprint]
        clean, stats = lintmod.lint_paths([source_dir], baseline=fingerprints)
        assert clean == []
        assert stats["baselined"] == 1


class TestCli:
    def test_exit_codes_and_text_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(0)\n", encoding="utf-8")
        assert lintmod.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "LDP-R001" in out and "bad.py:2:" in out
        (tmp_path / "bad.py").write_text("X = 1\n", encoding="utf-8")
        assert lintmod.main([str(tmp_path)]) == 0

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(0)\n", encoding="utf-8")
        assert lintmod.main(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        assert payload["files_checked"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["LDP-R001"]

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lintmod.main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("X = 1\n", encoding="utf-8")
        code = lintmod.main([str(tmp_path), "--baseline", str(tmp_path / "nope.json")])
        assert code == 2

    def test_write_baseline_then_lint_against_it(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(0)\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert lintmod.main([str(bad), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert lintmod.main([str(bad), "--baseline", str(baseline)]) == 0

    def test_list_rules_prints_all_six_families(self, capsys):
        assert lintmod.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("LDP-R001", "LDP-R002", "LDP-R003", "LDP-R004", "LDP-R005", "LDP-R006"):
            assert rule in out

    def test_unparseable_file_reported(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
        assert lintmod.main([str(tmp_path)]) == 1
        assert lintmod.PARSE_RULE in capsys.readouterr().out


def test_every_rule_has_a_description():
    assert set(lintmod.RULES) == {
        "LDP-R001",
        "LDP-R002",
        "LDP-R003",
        "LDP-R004",
        "LDP-R005",
        "LDP-R006",
        "LDP-R007",
    }
    assert all(lintmod.RULES.values())
