"""End-to-end 2-D pipeline: sharded collection, recovery, service, session.

This is the acceptance contract of bringing the 2-D grid onto the
accumulator substrate: a :class:`~repro.streaming.ShardedCollector` run over
2-D points with a ``checkpoint``/``restore`` mid-stream reproduces the
uninterrupted run's rectangle answers bit-for-bit, and sharded collection
tracks the one-shot ``fit_points`` accuracy for any shard count.
"""

import asyncio

import numpy as np
import pytest

from repro.core.multidim import HierarchicalGrid2D
from repro.core.session import Grid2DSession
from repro.data.synthetic import clustered_grid_points
from repro.data.workloads import random_rectangles
from repro.exceptions import ConfigurationError
from repro.service import IngestionService, run_ingestion
from repro.streaming import ShardedCollector

SIDE = 16
EPSILON = 1.5
N_USERS = 30_000
N_BATCHES = 8


@pytest.fixture(scope="module")
def points():
    return clustered_grid_points(SIDE, N_USERS, random_state=51)


@pytest.fixture(scope="module")
def rectangles():
    return random_rectangles(SIDE, 48, random_state=52)


@pytest.fixture(scope="module")
def truth(points, rectangles):
    inside = (
        (points[:, 0][:, None] >= rectangles[:, 0])
        & (points[:, 0][:, None] <= rectangles[:, 1])
        & (points[:, 1][:, None] >= rectangles[:, 2])
        & (points[:, 1][:, None] <= rectangles[:, 3])
    )
    return inside.mean(axis=0)


def _collector(n_shards: int, seed: int = 53) -> ShardedCollector:
    return ShardedCollector(
        "grid2d_2",
        epsilon=EPSILON,
        domain_size=SIDE,
        n_shards=n_shards,
        random_state=seed,
    )


class TestShardedCollection:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_sharded_run_matches_one_shot_accuracy(
        self, points, rectangles, truth, n_shards
    ):
        collector = _collector(n_shards)
        for batch in np.array_split(points, N_BATCHES):
            collector.submit_points(batch)
        reduced = collector.reduce()
        assert isinstance(reduced, HierarchicalGrid2D)
        assert reduced.n_users == N_USERS

        one_shot = HierarchicalGrid2D(EPSILON, SIDE).fit_points(
            points, np.random.default_rng(54)
        )
        mse_sharded = float(
            np.mean((reduced.answer_rectangles(rectangles) - truth) ** 2)
        )
        mse_one_shot = float(
            np.mean((one_shot.answer_rectangles(rectangles) - truth) ** 2)
        )
        # Shard count is invisible to accuracy: both estimators sit in the
        # same noise regime around the truth.
        assert mse_sharded < 20 * max(mse_one_shot, 1e-6)
        assert reduced.answer_rectangle((0, SIDE - 1), (0, SIDE - 1)) == pytest.approx(
            1.0, abs=0.2
        )

    def test_submit_points_validates_before_routing(self, points):
        collector = _collector(2)
        with pytest.raises(Exception):
            collector.submit_points(np.array([[0.5, 0.5]]))
        assert collector.n_batches == 0

    def test_submit_points_requires_2d_mechanism(self, points):
        collector = ShardedCollector(
            "hhc_4", epsilon=EPSILON, domain_size=64, n_shards=2, random_state=55
        )
        with pytest.raises(ConfigurationError):
            collector.submit_points(points)


class TestCheckpointRecovery:
    def test_restore_mid_stream_is_bit_exact(self, points, rectangles, tmp_path):
        """The acceptance criterion: crash + restore changes nothing."""
        batches = np.array_split(points, N_BATCHES)
        half = N_BATCHES // 2

        uninterrupted = _collector(3)
        for batch in batches:
            uninterrupted.submit_points(batch)
        expected = uninterrupted.reduce()

        crashed = _collector(3)
        for batch in batches[:half]:
            crashed.submit_points(batch)
        path = crashed.checkpoint(tmp_path / "grid2d.snap")
        del crashed

        resumed = ShardedCollector.restore(path)
        for batch in batches[half:]:
            resumed.submit_points(batch)
        actual = resumed.reduce()

        assert np.array_equal(
            expected.answer_rectangles(rectangles),
            actual.answer_rectangles(rectangles),
        )
        assert np.array_equal(expected.estimate_heatmap(), actual.estimate_heatmap())


class TestIngestionService:
    def test_async_point_submission(self, points, rectangles, truth):
        async def run():
            collector = _collector(2, seed=56)
            async with IngestionService(collector, queue_size=4) as service:
                for batch in np.array_split(points, N_BATCHES):
                    await service.submit_points(batch)
                await service.join()
            return collector.reduce()

        reduced = asyncio.run(run())
        assert reduced.n_users == N_USERS
        mse = float(np.mean((reduced.answer_rectangles(rectangles) - truth) ** 2))
        assert mse < 0.05

    def test_run_ingestion_over_flattened_batches(self, points):
        collector = _collector(2, seed=57)
        template = HierarchicalGrid2D(EPSILON, SIDE)
        batches = [
            template.flatten_points(batch)
            for batch in np.array_split(points, N_BATCHES)
        ]
        report = run_ingestion(collector, batches, n_producers=2)
        assert report.n_users == N_USERS
        assert collector.reduce().n_users == N_USERS


class TestGrid2DSession:
    def test_collect_save_load(self, points, tmp_path):
        session = Grid2DSession(EPSILON, SIDE)
        session.collect_points(points, random_state=58)
        assert session.n_users == N_USERS
        full = session.rectangle_query((0, SIDE - 1), (0, SIDE - 1))
        assert full == pytest.approx(1.0, abs=0.2)

        path = session.save(tmp_path / "grid2d-session.snap")
        loaded = Grid2DSession.load(path)
        assert isinstance(loaded, Grid2DSession)
        assert np.array_equal(loaded.heatmap(), session.heatmap())
        assert loaded.rectangle_query((0, SIDE - 1), (0, SIDE - 1)) == full

    def test_collect_points_async_merges_into_session(self, points):
        session = Grid2DSession(EPSILON, SIDE)
        session.collect_points_async(
            np.array_split(points, N_BATCHES),
            n_shards=2,
            n_producers=2,
            random_state=59,
        )
        assert session.n_users == N_USERS
        assert session.last_ingestion_report.n_users == N_USERS
        assert session.rectangle_query((0, SIDE - 1), (0, SIDE - 1)) == pytest.approx(
            1.0, abs=0.25
        )

    def test_rejects_non_grid_mechanism(self):
        with pytest.raises(ConfigurationError):
            Grid2DSession(EPSILON, 64, mechanism="hhc_4")

    def test_merge_from_shard_session(self, points):
        stream = np.random.default_rng(60)
        first = Grid2DSession(EPSILON, SIDE).collect_points(points[:15_000], stream)
        second = Grid2DSession(EPSILON, SIDE).collect_points(points[15_000:], stream)
        first.merge_from(second)
        assert first.n_users == N_USERS
