"""Blocking HTTP client for the ingestion service.

Tests, benchmarks and operators talk to the network tier through this thin
wrapper over :class:`http.client.HTTPConnection` (stdlib, synchronous —
the *producer* side of the fleet is plain sequential code, which is also
what the end-to-end latency benchmark wants to measure).  It knows the
service's three conventions and nothing else:

* JSON in, JSON out, except ``/metrics`` which returns Prometheus text;
* ``503`` carries a ``Retry-After`` header — surfaced on the response and
  honoured by :meth:`ServiceClient.post_batch_retrying`;
* payload fields mirror ``POST /v1/batches``: ``items``, optional
  ``mode`` / ``key`` / ``epsilon`` / ``domain_size``.
"""

from __future__ import annotations

import io
import json
import time
from dataclasses import dataclass
from http.client import HTTPConnection, HTTPException
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError, ServiceOverloadedError

__all__ = ["ServiceClient", "ServiceResponse"]

_NPY = "application/x-npy"


@dataclass(frozen=True)
class ServiceResponse:
    """One HTTP exchange, decoded as far as the payload allows."""

    status: int
    body: bytes
    retry_after: Optional[float] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self) -> Dict[str, Any]:
        return json.loads(self.body.decode("utf-8"))

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")


class ServiceClient:
    """Synchronous client bound to one ``host:port`` service endpoint.

    Keeps a single keep-alive connection; not thread-safe (create one
    client per producer thread, mirroring one fleet member each).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._host = str(host)
        self._port = int(port)
        self._timeout = float(timeout)
        self._connection: Optional[HTTPConnection] = None

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ServiceResponse:
        headers = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self._connection is None:
            self._connection = HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        try:
            self._connection.request(method, path, body=body, headers=headers)
            raw = self._connection.getresponse()
            data = raw.read()
        except (ConnectionError, OSError, HTTPException):
            # One reconnect: the server may have closed an idle keep-alive,
            # or an earlier failed exchange left the connection mid-request
            # (http.client then raises CannotSendRequest forever after).
            self.close()
            self._connection = HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._connection.request(method, path, body=body, headers=headers)
            raw = self._connection.getresponse()
            data = raw.read()
        retry_after: Optional[float] = None
        header = raw.getheader("Retry-After")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                retry_after = None
        return ServiceResponse(status=raw.status, body=data, retry_after=retry_after)

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def post_batch(
        self,
        items: Union[Sequence[int], np.ndarray],
        mode: Optional[str] = None,
        key: Union[None, int, str] = None,
        epsilon: Optional[float] = None,
        domain_size: Optional[int] = None,
    ) -> ServiceResponse:
        """``POST /v1/batches``; never raises on HTTP-level rejection —
        inspect ``response.status`` (202 accepted, 503 backpressure...)."""
        payload: Dict[str, Any] = {"items": np.asarray(items).tolist()}
        if mode is not None:
            payload["mode"] = mode
        if key is not None:
            payload["key"] = key
        if epsilon is not None:
            payload["epsilon"] = float(epsilon)
        if domain_size is not None:
            payload["domain_size"] = int(domain_size)
        return self._request("POST", "/v1/batches", payload)

    def post_points(
        self,
        points: Union[Sequence[Sequence[int]], np.ndarray],
        mode: Optional[str] = None,
        key: Union[None, int, str] = None,
        binary: bool = False,
    ) -> ServiceResponse:
        """``POST /v1/points`` — ``(n, d)`` coordinate rows for grid
        mechanisms (``d = 2`` for ``grid2d``, the mechanism's ``dims``
        otherwise).  ``binary=True`` ships the array as an
        ``application/x-npy`` body instead of JSON — the wire fast path;
        ``mode``/``key`` cannot ride along (no envelope)."""
        if binary:
            if mode is not None or key is not None:
                raise ConfigurationError(
                    "binary point submission carries no JSON envelope; "
                    "mode/key are JSON-only fields"
                )
            return self._request(
                "POST",
                "/v1/points",
                body=self._npy_bytes(np.asarray(points, dtype=np.int64)),
                headers={"Content-Type": _NPY},
            )
        payload: Dict[str, Any] = {"points": np.asarray(points).tolist()}
        if mode is not None:
            payload["mode"] = mode
        if key is not None:
            payload["key"] = key
        return self._request("POST", "/v1/points", payload)

    @staticmethod
    def _npy_bytes(array: np.ndarray) -> bytes:
        buffer = io.BytesIO()
        np.save(buffer, array, allow_pickle=False)
        return buffer.getvalue()

    def post_batch_retrying(
        self,
        items: Union[Sequence[int], np.ndarray],
        mode: Optional[str] = None,
        key: Union[None, int, str] = None,
        max_attempts: int = 50,
        max_sleep: float = 0.05,
    ) -> ServiceResponse:
        """``post_batch`` that honours 503 backpressure by waiting and
        retrying (capping the server's ``Retry-After`` hint at
        ``max_sleep`` so tests against millisecond queues stay fast).
        Raises :class:`~repro.exceptions.ServiceOverloadedError` once
        ``max_attempts`` rejections pile up."""
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be a positive integer, got {max_attempts!r}"
            )
        response = self.post_batch(items, mode=mode, key=key)
        attempts = 1
        while response.status == 503 and attempts < int(max_attempts):
            hint = response.retry_after if response.retry_after is not None else max_sleep
            time.sleep(min(float(hint), float(max_sleep)))
            response = self.post_batch(items, mode=mode, key=key)
            attempts += 1
        if response.status == 503:
            raise ServiceOverloadedError(
                f"batch still rejected after {attempts} attempts"
            )
        return response

    # ------------------------------------------------------------------
    # Query endpoints
    # ------------------------------------------------------------------
    def _post_query_retrying(
        self,
        path: str,
        payload: Dict[str, Any],
        binary: bool,
        max_attempts: int,
        max_sleep: float,
    ) -> ServiceResponse:
        """One query POST with the same keep-alive + one-reconnect +
        ``Retry-After`` discipline as :meth:`post_batch_retrying`."""
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be a positive integer, got {max_attempts!r}"
            )
        headers = {"Accept": _NPY} if binary else None
        response = self._request("POST", path, payload, headers=headers)
        attempts = 1
        while response.status == 503 and attempts < int(max_attempts):
            hint = response.retry_after if response.retry_after is not None else max_sleep
            time.sleep(min(float(hint), float(max_sleep)))
            response = self._request("POST", path, payload, headers=headers)
            attempts += 1
        if response.status == 503:
            raise ServiceOverloadedError(
                f"query still rejected after {attempts} attempts"
            )
        if not response.ok:
            try:
                message = response.json().get("error", response.text)
            except (ValueError, UnicodeDecodeError):
                message = f"{len(response.body)} undecodable bytes"
            raise ConfigurationError(
                f"{path} returned HTTP {response.status}: {message}"
            )
        return response

    def query_boxes(
        self,
        boxes: Union[Sequence[Sequence[int]], np.ndarray],
        binary: bool = False,
        max_attempts: int = 50,
        max_sleep: float = 0.05,
    ) -> np.ndarray:
        """``POST /v1/query`` with ``(n, 2d)`` per-axis bound rows; returns
        the estimated fractions as a float array.  ``binary=True``
        negotiates an ``application/x-npy`` response body."""
        payload = {"boxes": np.asarray(boxes).tolist()}
        response = self._post_query_retrying(
            "/v1/query", payload, binary, max_attempts, max_sleep
        )
        if binary:
            return np.load(io.BytesIO(response.body), allow_pickle=False)
        return np.asarray(response.json()["answers"], dtype=np.float64)

    def query_ranges(
        self,
        ranges: Union[Sequence[Sequence[int]], np.ndarray],
        binary: bool = False,
        max_attempts: int = 50,
        max_sleep: float = 0.05,
    ) -> np.ndarray:
        """``POST /v1/query`` with ``(n, 2)`` flat-domain range rows."""
        payload = {"ranges": np.asarray(ranges).tolist()}
        response = self._post_query_retrying(
            "/v1/query", payload, binary, max_attempts, max_sleep
        )
        if binary:
            return np.load(io.BytesIO(response.body), allow_pickle=False)
        return np.asarray(response.json()["answers"], dtype=np.float64)

    def query_quantiles(
        self,
        phis: Sequence[float],
        binary: bool = False,
        max_attempts: int = 50,
        max_sleep: float = 0.05,
    ) -> List[int]:
        """``POST /v1/quantiles``; returns one domain item per target."""
        payload = {"phis": [float(phi) for phi in phis]}
        response = self._post_query_retrying(
            "/v1/quantiles", payload, binary, max_attempts, max_sleep
        )
        if binary:
            values = np.load(io.BytesIO(response.body), allow_pickle=False)
            return [int(value) for value in values]
        return [int(value) for value in response.json()["quantiles"]]

    def healthz(self) -> ServiceResponse:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The Prometheus exposition payload of ``GET /metrics``."""
        response = self._request("GET", "/metrics")
        if not response.ok:
            raise ServiceOverloadedError(
                f"/metrics returned HTTP {response.status}"
            )
        return response.text
