"""Unit tests for repro.privacy.mechanisms (perturbation probabilities)."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.privacy.mechanisms import (
    PerturbationProbabilities,
    binary_rr_probability,
    grr_probabilities,
    ldp_guarantee_epsilon,
    olh_probabilities,
    oue_probabilities,
    sue_probabilities,
    verify_ldp,
)


class TestPerturbationProbabilities:
    def test_gap(self):
        pair = PerturbationProbabilities(p=0.75, q=0.25)
        assert pair.gap == pytest.approx(0.5)

    @pytest.mark.parametrize("p,q", [(0.5, 0.5), (0.4, 0.6), (1.0, 0.1), (0.5, 0.0)])
    def test_invalid_pairs_rejected(self, p, q):
        with pytest.raises(ConfigurationError):
            PerturbationProbabilities(p=p, q=q)


class TestBinaryRandomizedResponse:
    def test_paper_default(self):
        # e^eps = 3 -> keep probability 3/4 (quoted explicitly in Section 5).
        assert binary_rr_probability(math.log(3.0)) == pytest.approx(0.75)

    def test_monotone_in_epsilon(self):
        assert binary_rr_probability(2.0) > binary_rr_probability(0.5)

    def test_satisfies_ldp(self):
        eps = 0.8
        p = binary_rr_probability(eps)
        assert verify_ldp(p, 1.0 - p, eps, binary_output=True)


class TestGrrProbabilities:
    def test_sum_to_one_over_domain(self):
        eps, k = 1.0, 10
        pair = grr_probabilities(eps, k)
        assert pair.p + (k - 1) * pair.q == pytest.approx(1.0)

    def test_ratio_is_exp_epsilon(self):
        eps = 1.3
        pair = grr_probabilities(eps, 16)
        assert pair.p / pair.q == pytest.approx(math.exp(eps))

    def test_satisfies_ldp_as_categorical(self):
        eps = 1.3
        pair = grr_probabilities(eps, 16)
        assert verify_ldp(pair.p, pair.q, eps, binary_output=False)

    def test_rejects_tiny_domain(self):
        with pytest.raises(ConfigurationError):
            grr_probabilities(1.0, 1)


class TestUnaryProbabilities:
    def test_oue_keeps_one_bit_half_the_time(self):
        pair = oue_probabilities(1.1)
        assert pair.p == pytest.approx(0.5)
        assert pair.q == pytest.approx(1.0 / (1.0 + math.exp(1.1)))

    def test_oue_satisfies_ldp(self):
        eps = 1.1
        pair = oue_probabilities(eps)
        assert verify_ldp(pair.p, pair.q, eps, binary_output=True)

    def test_sue_symmetric(self):
        pair = sue_probabilities(1.0)
        assert pair.p + pair.q == pytest.approx(1.0)

    def test_sue_satisfies_ldp(self):
        # SUE spends eps/2 per bit, but two bits differ between any two
        # inputs, so the pair must satisfy the *full* eps bound per bit pair.
        eps = 1.0
        pair = sue_probabilities(eps)
        per_bit = ldp_guarantee_epsilon(pair.p, pair.q, binary_output=True)
        assert 2 * per_bit == pytest.approx(eps)


class TestOlhProbabilities:
    def test_support_probability_is_inverse_hash_range(self):
        pair = olh_probabilities(1.0, hash_range=4)
        assert pair.q == pytest.approx(0.25)

    def test_keep_probability_formula(self):
        eps, g = 1.0, 4
        pair = olh_probabilities(eps, g)
        assert pair.p == pytest.approx(math.exp(eps) / (math.exp(eps) + g - 1))

    def test_rejects_invalid_hash_range(self):
        with pytest.raises(ConfigurationError):
            olh_probabilities(1.0, hash_range=1)


class TestLdpVerification:
    def test_guarantee_epsilon_matches_construction(self):
        eps = 0.9
        p = binary_rr_probability(eps)
        assert ldp_guarantee_epsilon(p, 1.0 - p) == pytest.approx(eps)

    def test_verify_rejects_budget_overrun(self):
        p = binary_rr_probability(2.0)
        assert not verify_ldp(p, 1.0 - p, epsilon=1.0)

    def test_invalid_probabilities_raise(self):
        with pytest.raises(ConfigurationError):
            ldp_guarantee_epsilon(0.2, 0.8)
