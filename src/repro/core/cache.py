"""Generation-keyed LRU cache for materialized query answers.

Lazy materialization (PR 5) gave every mechanism a monotone
``ingest_generation`` counter: writes only touch sufficient statistics and
bump the counter; estimates rebuild on the next read.  That counter is
exactly the invalidation signal a read cache needs — an answer computed at
generation ``g`` is valid for as long as the mechanism stays at ``g``, and
the moment a write lands every cached entry becomes unreachable simply
because its key no longer matches.  No explicit invalidation hook, no
write-path coupling: the cache is only ever touched from read surfaces,
*after* :meth:`~repro.core.base.RangeQueryMechanism._require_fitted` has
settled the generation.

The LRU bound is what keeps the "invalidate by unreachability" trick
honest: stale generations age out of the ``maxsize`` window instead of
accumulating forever.  Answers are stored and returned defensively — array
values are copied on both ends — so a caller mutating a result can never
corrupt what later hits observe, and cached answers stay bit-identical to
recomputed ones (a copy preserves every bit).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["AnswerCache", "DEFAULT_ANSWER_CACHE_SIZE", "MISS"]

#: Default entry bound of a mechanism's answer cache.  Sized for the
#: workload shapes the bench suite serves (hundreds of distinct repeated
#: queries between writes) while keeping worst-case memory trivial.
DEFAULT_ANSWER_CACHE_SIZE = 256


class _Miss:
    """Sentinel distinguishing "not cached" from a cached falsy answer."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<answer-cache miss>"


#: Returned by :meth:`AnswerCache.get` when the key is absent.
MISS = _Miss()


class AnswerCache:
    """Bounded LRU of ``(generation, query key) -> answer`` entries.

    Parameters
    ----------
    maxsize:
        Entry bound; ``0`` disables the cache entirely (every ``get`` is a
        bypass, ``put`` is a no-op) so callers never need their own
        enabled/disabled branching.
    """

    __slots__ = ("_entries", "_maxsize", "_hits", "_misses", "_evictions")

    def __init__(self, maxsize: int = DEFAULT_ANSWER_CACHE_SIZE) -> None:
        self._entries: "OrderedDict[Tuple[int, Hashable], Any]" = OrderedDict()
        self._maxsize = self._check_maxsize(maxsize)
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def _check_maxsize(maxsize: int) -> int:
        if not isinstance(maxsize, (int, np.integer)) or maxsize < 0:
            raise ConfigurationError(
                f"cache maxsize must be a non-negative integer, got {maxsize!r}"
            )
        return int(maxsize)

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def get(self, generation: int, key: Hashable) -> Any:
        """The cached answer for ``key`` at ``generation``, or :data:`MISS`.

        A hit refreshes the entry's LRU position.  Array answers come back
        as a fresh copy so the caller owns its result outright.
        """
        if self._maxsize == 0:
            return MISS
        full_key = (int(generation), key)
        try:
            value = self._entries[full_key]
        except KeyError:
            self._misses += 1
            return MISS
        self._entries.move_to_end(full_key)
        self._hits += 1
        if isinstance(value, np.ndarray):
            return value.copy()
        return value

    def put(self, generation: int, key: Hashable, value: Any) -> None:
        """Store an answer, evicting the least-recently-used entry past the
        bound.  Array values are copied in so later caller mutations of the
        returned (uncached) result cannot reach the stored answer."""
        if self._maxsize == 0:
            return
        if isinstance(value, np.ndarray):
            value = value.copy()
        full_key = (int(generation), key)
        self._entries[full_key] = value
        self._entries.move_to_end(full_key)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1

    # ------------------------------------------------------------------
    # Management
    # ------------------------------------------------------------------
    def resize(self, maxsize: int) -> None:
        """Change the entry bound, evicting LRU entries that no longer fit.

        Resizing to ``0`` drops everything and disables the cache."""
        self._maxsize = self._check_maxsize(maxsize)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved — they are monotone)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def stats(self) -> dict:
        """Monotone hit/miss/eviction counters plus the live size/bound."""
        return {
            "hits": int(self._hits),
            "misses": int(self._misses),
            "evictions": int(self._evictions),
            "size": len(self._entries),
            "maxsize": int(self._maxsize),
        }
