"""Unit tests for prefix/CDF/quantile estimation."""

import numpy as np
import pytest

from repro.core.flat import FlatMechanism
from repro.core.hierarchical import HierarchicalHistogramMechanism
from repro.core.quantiles import (
    DECILES,
    estimate_cdf,
    estimate_median,
    estimate_quantiles,
    monotone_cdf,
)
from repro.exceptions import InvalidQueryError


@pytest.fixture
def fitted_mechanism(medium_counts):
    mechanism = HierarchicalHistogramMechanism(1.1, medium_counts.shape[0], branching=4)
    return mechanism.fit_counts(medium_counts, random_state=7)


class TestMonotoneCdf:
    def test_clamps_to_unit_interval(self):
        cdf = monotone_cdf(np.array([-0.1, 0.2, 0.15, 1.3]))
        assert cdf[0] == 0.0
        assert cdf[-1] == 1.0

    def test_monotone(self):
        cdf = monotone_cdf(np.array([0.0, 0.3, 0.2, 0.5, 0.45, 1.0]))
        assert np.all(np.diff(cdf) >= 0)

    def test_rejects_empty(self):
        with pytest.raises(InvalidQueryError):
            monotone_cdf(np.array([]))


class TestEstimateCdf:
    def test_shape_and_monotonicity(self, fitted_mechanism):
        cdf = estimate_cdf(fitted_mechanism)
        assert cdf.shape == (fitted_mechanism.domain_size,)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0, abs=0.05)

    def test_raw_option(self, fitted_mechanism):
        raw = estimate_cdf(fitted_mechanism, monotone=False)
        assert raw.shape == (fitted_mechanism.domain_size,)

    def test_close_to_true_cdf(self, fitted_mechanism, medium_counts):
        cdf = estimate_cdf(fitted_mechanism)
        truth = np.cumsum(medium_counts) / medium_counts.sum()
        assert np.max(np.abs(cdf - truth)) < 0.1


class TestQuantiles:
    def test_deciles_constant(self):
        assert DECILES == (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

    def test_quantiles_are_sorted_items(self, fitted_mechanism):
        quantiles = estimate_quantiles(fitted_mechanism, DECILES)
        assert len(quantiles) == 9
        assert quantiles == sorted(quantiles)
        assert all(0 <= q < fitted_mechanism.domain_size for q in quantiles)

    def test_quantiles_close_to_truth(self, fitted_mechanism, medium_counts):
        cdf = np.cumsum(medium_counts) / medium_counts.sum()
        true_deciles = np.searchsorted(cdf, DECILES, side="left")
        estimated = estimate_quantiles(fitted_mechanism, DECILES)
        assert np.max(np.abs(np.asarray(estimated) - true_deciles)) < 30

    def test_median_helper(self, fitted_mechanism):
        median = estimate_median(fitted_mechanism)
        assert median == estimate_quantiles(fitted_mechanism, (0.5,))[0]

    def test_invalid_targets(self, fitted_mechanism):
        with pytest.raises(InvalidQueryError):
            estimate_quantiles(fitted_mechanism, (1.5,))

    def test_binary_search_quantile_matches_cdf_quantile(self, medium_counts):
        # The base-class binary search over prefix queries and the batched
        # CDF-based search must agree for monotone mechanisms like FlatOUE
        # run at a generous budget.
        domain = medium_counts.shape[0]
        mechanism = FlatMechanism(3.0, domain).fit_counts(medium_counts, random_state=3)
        batched = estimate_quantiles(mechanism, (0.5,))[0]
        single = mechanism.quantile(0.5)
        assert abs(batched - single) <= 3

    def test_quantile_agrees_with_batched_path_under_noise(self, medium_counts):
        # Regression: `quantile` used to binary-search the raw noisy prefix
        # estimates, which are non-monotone at tight budgets, so its answers
        # could disagree with `estimate_quantiles` for the same target.
        # Both now share the monotone-CDF reconstruction and agree exactly.
        domain = medium_counts.shape[0]
        mechanism = FlatMechanism(0.2, domain).fit_counts(medium_counts, random_state=11)
        raw_cdf = mechanism.estimate_cdf()
        assert np.any(np.diff(raw_cdf) < 0)  # the budget really is noisy
        for target in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert mechanism.quantile(target) == estimate_quantiles(mechanism, (target,))[0]
        assert mechanism.quantiles(DECILES) == estimate_quantiles(mechanism, DECILES)
