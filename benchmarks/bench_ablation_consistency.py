"""Ablation B — effect of constrained inference (Section 4.5).

For every branching factor, the hierarchical histogram is evaluated with and
without the consistency post-processing.  Lemma 4.6 promises a variance
reduction of at least B/(B+1) per node, and the paper observes 2-4x
improvements on long ranges; this ablation verifies consistency never hurts
and reports the measured improvement factors.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import ablation_consistency
from repro.experiments.reporting import format_table


@pytest.mark.benchmark(group="ablation")
def test_consistency_improvement_by_branching_factor(run_once, bench_config):
    domain = 1 << 10
    branchings = (2, 4, 8, 16)
    results = run_once(
        ablation_consistency, bench_config, domain, branching_factors=branchings
    )

    rows = []
    for branching in branchings:
        raw = results[branching]["raw"].mse_mean
        consistent = results[branching]["consistent"].mse_mean
        rows.append([branching, raw * 1000, consistent * 1000, raw / consistent])
    print(f"\n=== Ablation B | D = 2^10, eps = 1.1 | consistency on/off ===")
    print(format_table(["B", "raw mse x1000", "consistent mse x1000", "improvement x"], rows))

    for branching in branchings:
        raw = results[branching]["raw"].mse_mean
        consistent = results[branching]["consistent"].mse_mean
        # Consistency never increases the error (allowing a little noise).
        assert consistent <= raw * 1.1
    # And for at least one branching factor the improvement is substantial,
    # matching the "two to four times more accurate" observation.
    improvements = [
        results[b]["raw"].mse_mean / results[b]["consistent"].mse_mean for b in branchings
    ]
    assert max(improvements) > 1.5
