"""Property-based tests for constrained inference (Section 4.5)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hierarchy.consistency import enforce_consistency, least_squares_consistency

configurations = st.tuples(
    st.integers(min_value=2, max_value=4),  # branching
    st.integers(min_value=1, max_value=3),  # height
    st.integers(min_value=0, max_value=2**31 - 1),  # seed
)


def _random_levels(branching, height, seed):
    rng = np.random.default_rng(seed)
    leaves = rng.dirichlet(np.ones(branching**height))
    levels = []
    for depth in range(1, height + 1):
        block = branching ** (height - depth)
        exact = leaves.reshape(-1, block).sum(axis=1)
        levels.append(exact + rng.normal(0, 0.05, size=exact.shape))
    return levels


@given(config=configurations)
@settings(max_examples=100, deadline=None)
def test_consistency_invariant_holds(config):
    branching, height, seed = config
    adjusted = enforce_consistency(_random_levels(branching, height, seed), branching)
    for depth in range(len(adjusted) - 1):
        parents = adjusted[depth]
        child_sums = adjusted[depth + 1].reshape(-1, branching).sum(axis=1)
        np.testing.assert_allclose(parents, child_sums, atol=1e-8)


@given(config=configurations)
@settings(max_examples=100, deadline=None)
def test_root_value_is_enforced_everywhere(config):
    branching, height, seed = config
    adjusted = enforce_consistency(
        _random_levels(branching, height, seed), branching, root_value=1.0
    )
    for level in adjusted:
        np.testing.assert_allclose(level.sum(), 1.0, atol=1e-8)


@given(config=configurations)
@settings(max_examples=60, deadline=None)
def test_two_stage_matches_exact_least_squares(config):
    branching, height, seed = config
    levels = _random_levels(branching, height, seed)
    fast = enforce_consistency(levels, branching, root_value=None)
    exact = least_squares_consistency(levels, branching)
    for fast_level, exact_level in zip(fast, exact):
        np.testing.assert_allclose(fast_level, exact_level, atol=1e-6)


@given(config=configurations)
@settings(max_examples=60, deadline=None)
def test_idempotence(config):
    # Applying the post-processing to an already-consistent tree is a no-op.
    branching, height, seed = config
    once = enforce_consistency(_random_levels(branching, height, seed), branching)
    twice = enforce_consistency(once, branching)
    for first, second in zip(once, twice):
        np.testing.assert_allclose(first, second, atol=1e-8)


@given(config=configurations)
@settings(max_examples=60, deadline=None)
def test_total_mass_preserved_without_root_constraint(config):
    # Without a root value the least-squares fit preserves the average of
    # the per-level totals seen in the noisy input only in expectation, but
    # the leaf total must equal the adjusted top level total exactly.
    branching, height, seed = config
    adjusted = enforce_consistency(_random_levels(branching, height, seed), branching)
    np.testing.assert_allclose(adjusted[0].sum(), adjusted[-1].sum(), atol=1e-8)
