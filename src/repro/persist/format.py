"""Binary container format of the snapshot subsystem.

Every snapshot produced by :mod:`repro.persist` is one self-describing byte
string with a fixed layout::

    bytes 0..9    magic  b"REPROSNAP\\x00"
    bytes 10..11  format version (little-endian uint16)
    bytes 12..15  header length in bytes (little-endian uint32)
    ...           JSON header (UTF-8)
    ...           ``numpy.savez`` archive holding every array of the state

The JSON header carries the *schema*: what kind of object was snapshotted
(accumulator / mechanism / collector), the configuration needed to rebuild
it, and the merge signature used for compatibility checks.  The npz payload
carries the sufficient statistics bit-for-bit (``float64``/``int64`` arrays
round-trip exactly), which is what makes ``load(save(x))`` reproduce ``x``'s
estimates to the last bit.

Why a hybrid instead of pickle: the header stays greppable and
forward-checkable (a newer reader can refuse cleanly, an older reader fails
with a precise version error instead of unpickling garbage), and nothing in
the file can execute code on load (``allow_pickle=False`` throughout).
"""

from __future__ import annotations

import io
import json
import os
import struct
from pathlib import Path
from typing import Any, Dict, Mapping, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "flatten_arrays",
    "nest_arrays",
    "pack_snapshot",
    "unpack_snapshot",
    "write_atomic",
]

#: File magic identifying a repro snapshot container.
MAGIC = b"REPROSNAP\x00"

#: Version of the container layout *and* of the state schemas inside it.
#: Bump on any incompatible change; readers refuse snapshots written by a
#: newer version instead of misinterpreting them.
FORMAT_VERSION = 1

_HEAD = struct.Struct("<HI")  # (format_version, header_length)


def pack_snapshot(header: Mapping[str, Any], arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialise a JSON header plus named arrays into one container."""
    header_bytes = json.dumps(dict(header), sort_keys=True).encode("utf-8")
    buffer = io.BytesIO()
    # ``savez`` with zero arrays still writes a valid (empty) archive, so
    # snapshots of unfitted state need no special casing.
    np.savez(buffer, **{key: np.asarray(value) for key, value in arrays.items()})
    return (
        MAGIC
        + _HEAD.pack(FORMAT_VERSION, len(header_bytes))
        + header_bytes
        + buffer.getvalue()
    )


def unpack_snapshot(data: bytes) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Parse a container back into its header and arrays.

    Raises :class:`~repro.exceptions.ConfigurationError` on a wrong magic,
    a truncated container, or a format version newer than this reader.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise ConfigurationError(
            f"snapshot data must be bytes, got {type(data).__name__}"
        )
    data = bytes(data)
    if len(data) < len(MAGIC) + _HEAD.size or not data.startswith(MAGIC):
        raise ConfigurationError(
            "not a repro snapshot: bad magic (file truncated or foreign format)"
        )
    version, header_length = _HEAD.unpack_from(data, len(MAGIC))
    if version > FORMAT_VERSION:
        raise ConfigurationError(
            f"snapshot format version {version} is newer than this reader "
            f"(supports <= {FORMAT_VERSION}); upgrade repro to load it"
        )
    start = len(MAGIC) + _HEAD.size
    stop = start + header_length
    if stop > len(data):
        raise ConfigurationError("snapshot truncated inside its header")
    try:
        header = json.loads(data[start:stop].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ConfigurationError(f"snapshot header is not valid JSON: {error}")
    if not isinstance(header, dict):
        raise ConfigurationError("snapshot header must be a JSON object")
    try:
        with np.load(io.BytesIO(data[stop:]), allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except Exception as error:  # zipfile/numpy raise several unrelated types
        raise ConfigurationError(f"snapshot array payload is corrupt: {error}")
    header["format_version"] = int(version)
    return header, arrays


def write_atomic(path: Union[str, Path], data: bytes) -> Path:
    """Write ``data`` to ``path`` via a fsynced temp file + rename.

    A crash mid-write leaves either the old snapshot or the new one —
    never a truncated container: the data is fsynced before the rename (so
    the journal cannot order the rename ahead of the blocks) and the
    parent directory is fsynced after it (so the rename itself is
    durable).  The temp name embeds the pid, so concurrent writers to the
    same path cannot clobber each other's half-written temp file.  Shared
    by every durable snapshot surface.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)
    try:
        directory_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return path
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)
    return path


def flatten_arrays(
    nested: Mapping[str, Any], prefix: str = ""
) -> Dict[str, np.ndarray]:
    """Flatten a nested ``{str: array-or-dict}`` state into npz-safe keys.

    Path segments are joined with ``"/"``; segments therefore must not
    contain the separator themselves.
    """
    flat: Dict[str, np.ndarray] = {}
    for key, value in nested.items():
        key = str(key)
        if "/" in key:
            raise ConfigurationError(f"state keys must not contain '/': {key!r}")
        path = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(flatten_arrays(value, prefix=f"{path}/"))
        else:
            flat[path] = np.asarray(value)
    return flat


def nest_arrays(flat: Mapping[str, np.ndarray]) -> Dict[str, Any]:
    """Invert :func:`flatten_arrays`."""
    nested: Dict[str, Any] = {}
    for path, value in flat.items():
        parts = path.split("/")
        node = nested
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return nested
