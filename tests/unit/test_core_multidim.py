"""Unit tests for the two-dimensional extension."""

import numpy as np
import pytest

from repro.core.multidim import HierarchicalGrid2D
from repro.exceptions import (
    ConfigurationError,
    InvalidDomainError,
    InvalidQueryError,
    NotFittedError,
)


@pytest.fixture
def grid_points(rng):
    """A clustered 2-D population on a 16 x 16 grid."""
    n = 40_000
    x = np.clip(rng.normal(5, 2, size=n).astype(int), 0, 15)
    y = np.clip(rng.normal(10, 2, size=n).astype(int), 0, 15)
    return np.stack([x, y], axis=1)


class TestConfiguration:
    def test_geometry(self):
        grid = HierarchicalGrid2D(1.0, 16, branching=2)
        assert grid.height == 4
        assert grid.domain_size == 16
        assert grid.flat_domain_size == 256
        assert len(grid.level_pairs) == 16

    def test_invalid_domain(self):
        with pytest.raises(InvalidDomainError):
            HierarchicalGrid2D(1.0, 1)

    def test_not_fitted(self):
        grid = HierarchicalGrid2D(1.0, 16)
        with pytest.raises(NotFittedError):
            grid.answer_rectangle((0, 3), (0, 3))
        with pytest.raises(NotFittedError):
            grid.estimate_heatmap()


class TestCollection:
    def test_fit_points_validation(self, rng):
        grid = HierarchicalGrid2D(1.0, 16)
        with pytest.raises(InvalidQueryError):
            grid.fit_points(np.array([[0, 16]]), rng)
        with pytest.raises(InvalidQueryError):
            grid.fit_points(np.zeros((3, 3)), rng)

    def test_float_coordinates_rejected(self, rng):
        """Silent truncation of [[0.9, 0.2]] -> [[0, 0]] must not happen."""
        grid = HierarchicalGrid2D(1.0, 16)
        with pytest.raises(InvalidQueryError, match="integer dtype"):
            grid.fit_points(np.array([[0.9, 0.2]]), rng)

    def test_nan_coordinates_rejected(self, rng):
        grid = HierarchicalGrid2D(1.0, 16)
        with pytest.raises(InvalidQueryError):
            grid.fit_points(np.array([[1.0, np.nan]]), rng)

    def test_negative_coordinates_rejected(self, rng):
        grid = HierarchicalGrid2D(1.0, 16)
        with pytest.raises(InvalidQueryError):
            grid.fit_points(np.array([[-1, 2]]), rng)

    def test_fit_sets_population(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        assert grid.is_fitted
        assert grid.n_users == grid_points.shape[0]

    def test_flatten_points_row_major(self):
        grid = HierarchicalGrid2D(1.0, 16)
        flat = grid.flatten_points(np.array([[0, 0], [1, 2], [15, 15]]))
        assert flat.tolist() == [0, 18, 255]

    def test_pair_user_counts_sum_to_population(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        assert grid.pair_user_counts.sum() == grid_points.shape[0]

    def test_per_user_mode(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.5, 16).fit_points(
            grid_points[:4000], rng, mode="per_user"
        )
        assert grid.n_users == 4000
        assert grid.answer_rectangle((0, 15), (0, 15)) == pytest.approx(1.0, abs=0.4)


class TestStreamingSurface:
    def test_partial_fit_points_accumulates(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.5, 16)
        grid.partial_fit_points(grid_points[:20_000], rng)
        assert grid.n_users == 20_000
        grid.partial_fit_points(grid_points[20_000:], rng)
        assert grid.n_users == grid_points.shape[0]
        assert grid.answer_rectangle((0, 15), (0, 15)) == pytest.approx(1.0, abs=0.2)

    def test_merge_equals_sequential_partial_fit(self, grid_points):
        """Merging shards fed from one stream == one mechanism, bit-for-bit."""
        shared = np.random.default_rng(3)
        sequential = HierarchicalGrid2D(1.5, 16)
        sequential.partial_fit_points(grid_points[:20_000], shared)
        sequential.partial_fit_points(grid_points[20_000:], shared)

        shared = np.random.default_rng(3)
        first = HierarchicalGrid2D(1.5, 16).fit_points(grid_points[:20_000], shared)
        second = HierarchicalGrid2D(1.5, 16).fit_points(grid_points[20_000:], shared)
        merged = HierarchicalGrid2D(1.5, 16)
        merged.merge_from(first)
        merged.merge_from(second)

        assert merged.n_users == sequential.n_users
        assert np.array_equal(
            merged.estimate_heatmap(), sequential.estimate_heatmap()
        )
        rect = ((2, 9), (6, 13))
        assert merged.answer_rectangle(*rect) == sequential.answer_rectangle(*rect)

    def test_merge_rejects_different_configuration(self, grid_points, rng):
        fitted = HierarchicalGrid2D(1.5, 16).fit_points(grid_points[:1000], rng)
        with pytest.raises(ConfigurationError):
            HierarchicalGrid2D(1.5, 16, branching=4).merge_from(fitted)
        with pytest.raises(ConfigurationError):
            HierarchicalGrid2D(0.5, 16).merge_from(fitted)

    def test_state_dict_round_trip_bit_exact(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.5, 16).fit_points(grid_points, rng)
        restored = HierarchicalGrid2D(1.5, 16).load_state_dict(grid.state_dict())
        assert restored.n_users == grid.n_users
        assert np.array_equal(restored.estimate_heatmap(), grid.estimate_heatmap())
        assert restored.answer_rectangle((1, 9), (3, 12)) == grid.answer_rectangle(
            (1, 9), (3, 12)
        )

    def test_unfitted_state_dict_round_trip(self):
        grid = HierarchicalGrid2D(1.5, 16)
        restored = HierarchicalGrid2D(1.5, 16).load_state_dict(grid.state_dict())
        assert not restored.is_fitted


class TestAnswers:
    def test_full_grid_close_to_one(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.5, 16).fit_points(grid_points, rng)
        assert grid.answer_rectangle((0, 15), (0, 15)) == pytest.approx(1.0, abs=0.15)

    def test_rectangle_close_to_truth(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.5, 16).fit_points(grid_points, rng)
        truth = np.mean(
            (grid_points[:, 0] >= 2)
            & (grid_points[:, 0] <= 9)
            & (grid_points[:, 1] >= 6)
            & (grid_points[:, 1] <= 13)
        )
        assert grid.answer_rectangle((2, 9), (6, 13)) == pytest.approx(truth, abs=0.15)

    def test_heatmap_shape(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        assert grid.estimate_heatmap().shape == (16, 16)

    def test_single_cell_rectangles_match_heatmap(self, grid_points, rng):
        """Leaf-resolution consistency: 1x1 rectangles ARE the heatmap."""
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        heatmap = grid.estimate_heatmap()
        for x, y in [(0, 0), (5, 10), (15, 15), (7, 3)]:
            assert grid.answer_rectangle((x, x), (y, y)) == pytest.approx(
                heatmap[x, y], abs=1e-12
            )

    def test_row_blocks_sum_to_full_rectangle(self, grid_points, rng):
        """Disjoint covers of the same rectangle agree at leaf resolution."""
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        heatmap = grid.estimate_heatmap()
        block = heatmap[2:10, 6:14].sum()
        cells = sum(
            grid.answer_rectangle((x, x), (y, y))
            for x in range(2, 10)
            for y in range(6, 14)
        )
        assert cells == pytest.approx(block, abs=1e-9)

    def test_answer_rectangles_vectorised(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        queries = np.array([[0, 15, 0, 15], [2, 9, 6, 13], [5, 5, 10, 10]])
        batched = grid.answer_rectangles(queries)
        singles = [
            grid.answer_rectangle((x0, x1), (y0, y1)) for x0, x1, y0, y1 in queries
        ]
        assert np.allclose(batched, singles)
        with pytest.raises(InvalidQueryError):
            grid.answer_rectangles(np.array([[0, 1, 2]]))

    @pytest.mark.parametrize("side,branching", [(16, 2), (11, 3), (27, 4)])
    def test_batched_rectangles_match_per_query_path(self, rng, side, branching):
        """The per-level-pair gathers agree with the run-product loop on a
        dense random workload, including padded (non-power) domains."""
        points = np.random.default_rng(1).integers(0, side, size=(20_000, 2))
        grid = HierarchicalGrid2D(1.5, side, branching=branching).fit_points(
            points, rng
        )
        starts = np.random.default_rng(2).integers(0, side, size=(300, 2))
        spans = np.random.default_rng(3).integers(0, side, size=(300, 2))
        x0, y0 = starts[:, 0], starts[:, 1]
        x1 = np.minimum(side - 1, x0 + spans[:, 0])
        y1 = np.minimum(side - 1, y0 + spans[:, 1])
        queries = np.stack([x0, x1, y0, y1], axis=1)
        batched = grid.answer_rectangles(queries)
        singles = np.array(
            [grid.answer_rectangle((a, b), (c, d)) for a, b, c, d in queries]
        )
        np.testing.assert_allclose(batched, singles, atol=1e-12)

    def test_answer_rectangles_empty_and_invalid(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        assert grid.answer_rectangles(np.empty((0, 4), dtype=np.int64)).shape == (0,)
        with pytest.raises(InvalidQueryError):
            grid.answer_rectangles(np.array([[0, 16, 0, 15]]))  # x_end out of range
        with pytest.raises(InvalidQueryError):
            grid.answer_rectangles(np.array([[5, 2, 0, 15]]))  # reversed x range

    def test_flattened_range_equals_rectangles(self, grid_points, rng):
        """A row-major item range is answered as its rectangle cover."""
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        # One full row: items [16, 31] == rectangle x=1, y in [0, 15].
        assert grid.answer_range(16, 31) == pytest.approx(
            grid.answer_rectangle((1, 1), (0, 15)), abs=1e-12
        )
        # A range spanning rows decomposes into its three-rectangle cover
        # (partial first row, middle rows, partial last row).
        assert grid.answer_range(5, 250) == pytest.approx(
            grid.answer_rectangle((0, 0), (5, 15))
            + grid.answer_rectangle((1, 14), (0, 15))
            + grid.answer_rectangle((15, 15), (0, 10)),
            abs=1e-12,
        )

    def test_quantiles_walk_the_flattened_domain(self, rng):
        """Regression: inherited quantiles must not clip to the side length.

        With every user at (8, 8) the flattened median is 8*16 + 8 = 136;
        clamping by ``domain_size`` (the side, 16) used to return 15.
        """
        points = np.full((5000, 2), 8, dtype=np.int64)
        grid = HierarchicalGrid2D(3.0, 16).fit_points(points, rng)
        median = grid.quantile(0.5)
        assert abs(median - 136) <= 16  # within one row of the true cell

    def test_estimate_frequencies_is_flat_heatmap(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        assert np.array_equal(
            grid.estimate_frequencies(), grid.estimate_heatmap().reshape(-1)
        )

    def test_variance_bound_positive(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        assert grid.theoretical_variance_bound(4) > 0
        with pytest.raises(InvalidQueryError):
            grid.theoretical_variance_bound(0)

    def test_variance_bound_depends_on_query_size(self, grid_points, rng):
        """The bound must grow with the per-axis run count, not be constant."""
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        bounds = [grid.theoretical_variance_bound(r) for r in (1, 4, 16)]
        assert bounds[0] < bounds[1] < bounds[2]
