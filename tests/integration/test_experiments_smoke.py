"""Smoke tests of the per-figure experiment drivers at a tiny scale.

These confirm that every table/figure generator runs end to end and returns
the structure the benchmark scripts consume; the benchmarks themselves run
the same code at a larger, more meaningful scale.
"""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    ablation_consistency,
    ablation_sampling_vs_splitting,
    default_range_workload,
    figure4_branching_factor,
    figure8_distribution_shift,
    figure9_quantiles,
    table5_epsilon_ranges,
    table6_epsilon_prefix,
    table7_centralized_comparison,
)
from repro.experiments.reporting import render_results


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        n_users=20_000,
        repetitions=1,
        epsilons=(0.4, 1.1),
        max_queries_per_workload=800,
        seed=3,
    )


class TestWorkloadPolicy:
    def test_exhaustive_for_small_domains(self):
        workload = default_range_workload(32, max_queries=10_000)
        assert len(workload) == 32 * 33 // 2

    def test_sampled_for_large_domains(self):
        workload = default_range_workload(4096, max_queries=500)
        assert len(workload) == 500


class TestFigureDrivers:
    def test_figure4(self, tiny_config):
        results = figure4_branching_factor(
            tiny_config, domain_size=64, query_lengths=(1, 32), branching_factors=(2, 8)
        )
        assert set(results) == {1, 32}
        specs = {cell.mechanism for cell in results[32]}
        assert "flat_oue" in specs and "haar" in specs
        assert any(spec.startswith("hhc_8") for spec in specs)

    def test_table5_and_rendering(self, tiny_config):
        results = table5_epsilon_ranges(tiny_config, domain_size=64)
        assert len(results) == len(tiny_config.epsilons) * 4
        text = render_results(results)
        assert "hhc_4" in text and "haar" in text

    def test_table6(self, tiny_config):
        results = table6_epsilon_prefix(tiny_config, domain_size=64)
        assert {cell.workload for cell in results} == {"prefixes"}

    def test_table7(self, tiny_config):
        results = table7_centralized_comparison(
            tiny_config, domain_sizes=(64, 128), epsilon=1.0, max_queries=400
        )
        for row in results.values():
            assert set(row) >= {"wavelet", "hhc_16", "hhc_2", "wavelet/hhc_16", "hhc_2/hhc_16"}
            assert row["wavelet/hhc_16"] > 0

    def test_figure8(self, tiny_config):
        results = figure8_distribution_shift(
            tiny_config, domain_size=64, centers=(0.2, 0.8), methods=("hhc_4", "haar")
        )
        assert set(results) == {0.2, 0.8}
        assert all(len(cells) == 2 for cells in results.values())

    def test_figure9(self, tiny_config):
        results = figure9_quantiles(
            tiny_config, domain_size=128, centers=(0.5,), methods=("hhc_2", "haar")
        )
        per_method = results[0.5]
        for errors in per_method.values():
            assert errors["value_error"].shape == (9,)
            assert np.all(errors["quantile_error"] >= 0)

    def test_ablation_sampling_vs_splitting(self, tiny_config):
        results = ablation_sampling_vs_splitting(tiny_config, domain_size=64)
        assert set(results) == {"sampling", "splitting"}

    def test_ablation_consistency(self, tiny_config):
        results = ablation_consistency(tiny_config, domain_size=64, branching_factors=(4,))
        assert set(results[4]) == {"raw", "consistent"}
