"""Generic experiment runner.

The paper's experiments all have the same shape: fix a dataset, fit one or
more mechanisms several times (5 repetitions), answer a query workload after
every fit and report the mean (and standard deviation) of the mean squared
error.  :func:`evaluate_mechanism` runs that inner loop for one mechanism;
:func:`run_epsilon_grid` sweeps the ``mechanism x epsilon`` grid that Tables
5 and 6 are made of.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import mean_squared_error
from repro.core.factory import mechanism_from_spec
from repro.data.workloads import RangeWorkload
from repro.exceptions import ConfigurationError
from repro.privacy.randomness import RandomState, spawn_generators

__all__ = ["CellResult", "evaluate_mechanism", "run_epsilon_grid"]


@dataclass(frozen=True)
class CellResult:
    """One cell of a results table: a mechanism at one parameter setting."""

    mechanism: str
    epsilon: float
    domain_size: int
    n_users: int
    workload: str
    mse_mean: float
    mse_std: float
    repetitions: int

    @property
    def scaled_mse(self) -> float:
        """MSE multiplied by 1000, the presentation unit of Tables 5 and 6."""
        return self.mse_mean * 1000.0

    def as_dict(self) -> Dict[str, object]:
        """Plain dictionary form (used by the reporting helpers)."""
        return {
            "mechanism": self.mechanism,
            "epsilon": self.epsilon,
            "domain_size": self.domain_size,
            "n_users": self.n_users,
            "workload": self.workload,
            "mse_mean": self.mse_mean,
            "mse_std": self.mse_std,
            "repetitions": self.repetitions,
        }


def evaluate_mechanism(
    spec: str,
    counts: np.ndarray,
    workload: RangeWorkload,
    epsilon: float,
    repetitions: int = 3,
    random_state: RandomState = None,
    mode: str = "aggregate",
    mechanism_kwargs: Optional[dict] = None,
) -> CellResult:
    """Fit one mechanism ``repetitions`` times and summarise its workload MSE.

    Parameters
    ----------
    spec:
        Mechanism specification string (see
        :func:`repro.core.factory.mechanism_from_spec`).
    counts:
        Exact per-item counts of the population (the fixed dataset).
    workload:
        The queries to evaluate after every fit.
    epsilon, repetitions, random_state, mode:
        Experiment knobs; every repetition gets an independent random stream
        derived from ``random_state``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions!r}")
    true_answers = workload.true_answers(counts)
    errors: List[float] = []
    generators = spawn_generators(random_state, repetitions)
    kwargs = dict(mechanism_kwargs or {})
    for rng in generators:
        mechanism = mechanism_from_spec(
            spec, epsilon=epsilon, domain_size=int(counts.shape[0]), **kwargs
        )
        mechanism.fit_counts(counts, random_state=rng, mode=mode)
        estimates = mechanism.answer_workload(workload)
        errors.append(mean_squared_error(true_answers, estimates))
    errors_array = np.asarray(errors)
    return CellResult(
        mechanism=spec,
        epsilon=float(epsilon),
        domain_size=int(counts.shape[0]),
        n_users=int(counts.sum()),
        workload=workload.name,
        mse_mean=float(errors_array.mean()),
        mse_std=float(errors_array.std()),
        repetitions=repetitions,
    )


def run_epsilon_grid(
    specs: Sequence[str],
    counts: np.ndarray,
    workload: RangeWorkload,
    epsilons: Sequence[float],
    repetitions: int = 3,
    random_state: RandomState = None,
    mode: str = "aggregate",
) -> List[CellResult]:
    """Evaluate every mechanism at every epsilon (the Table 5/6 grid).

    Results come back in row-major order (epsilon outer, mechanism inner),
    matching the layout of the paper's tables.

    ``specs`` and ``epsilons`` may be arbitrary iterables (including
    generators): both are materialised exactly once at entry, so a generator
    is never exhausted by the seed-count pass before the sweep loops run.
    """
    specs = list(specs)
    epsilons = list(epsilons)
    results: List[CellResult] = []
    seeds = spawn_generators(random_state, len(epsilons) * len(specs))
    index = 0
    for epsilon in epsilons:
        for spec in specs:
            results.append(
                evaluate_mechanism(
                    spec,
                    counts,
                    workload,
                    epsilon=epsilon,
                    repetitions=repetitions,
                    random_state=seeds[index],
                    mode=mode,
                )
            )
            index += 1
    return results
