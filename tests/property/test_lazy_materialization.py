"""Lazy-vs-eager materialization bit-identity, for every mechanism family.

The contract of the lazy write path: because ``_refresh_estimates`` is a
pure, randomness-free function of the accumulated sufficient statistics,
*when* it runs cannot matter.  These properties replay one scripted
collection history — interleaving ``partial_fit`` batches, shard
``merge_from`` folds and a snapshot/restore round-trip of a still-dirty
mechanism — twice with the same seeds: once materializing after every
mutation (the old eager behaviour) and once only at the final read.  Every
query surface must agree bit-for-bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.factory import mechanism_from_spec
from repro.persist import snapshots

DOMAIN = 64

SPECS = ["flat_oue", "hh_4", "hhc_4", "haar", "grid2d_2"]

specs = st.sampled_from(SPECS)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
modes = st.sampled_from(["aggregate", "per_user"])


def _make(spec):
    return mechanism_from_spec(spec, epsilon=1.1, domain_size=DOMAIN)


def _read_surfaces(mechanism):
    """Concatenate every read surface into one comparable vector."""
    queries = np.sort(
        np.random.default_rng(99).integers(
            0, mechanism.domain_size, size=(32, 2)
        ),
        axis=1,
    )
    parts = [
        mechanism.estimate_frequencies(),
        mechanism.estimate_cdf(),
        mechanism.answer_ranges(queries),
        np.asarray(mechanism.quantiles((0.1, 0.5, 0.9)), dtype=np.float64),
    ]
    heatmap = getattr(mechanism, "estimate_heatmap", None)
    if heatmap is not None:
        parts.append(heatmap().reshape(-1))
    return np.concatenate(parts)


def _run_history(spec, seed, mode, eager):
    """One scripted ingest history; ``eager`` materializes after every step."""

    def settle(mechanism):
        if eager:
            mechanism.materialize()
        return mechanism

    # grid2d walks the flattened D^2 domain through the same item API.
    target = _make(spec)
    item_domain = (
        target.flat_domain_size
        if hasattr(target, "flat_domain_size")
        else target.domain_size
    )
    rng_items = np.random.default_rng(seed)
    batches = [rng_items.integers(0, item_domain, size=400) for _ in range(4)]

    stream = np.random.default_rng(seed + 1)
    settle(target.partial_fit(batches[0], stream, mode=mode))

    shard = _make(spec)
    settle(shard.partial_fit(batches[1], stream, mode=mode))
    settle(target.merge_from(shard))

    # Snapshot the (possibly dirty) mechanism and continue on the restored
    # copy: statistics-only round-trips must not disturb the history.
    restored = snapshots.from_bytes(snapshots.to_bytes(target))
    settle(restored)
    settle(restored.partial_fit(batches[2], stream, mode=mode))

    second = _make(spec)
    settle(second.partial_fit(batches[3], stream, mode=mode))
    settle(restored.merge_from(second))
    return restored


class TestLazyEagerBitIdentity:
    @given(spec=specs, seed=seeds, mode=modes)
    @settings(max_examples=20, deadline=None)
    def test_interleaved_history_is_bit_identical(self, spec, seed, mode):
        lazy = _run_history(spec, seed, mode, eager=False)
        eager = _run_history(spec, seed, mode, eager=True)
        assert lazy.n_users == eager.n_users
        np.testing.assert_array_equal(_read_surfaces(lazy), _read_surfaces(eager))

    @given(spec=specs, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_dirty_save_load_round_trip_is_bit_exact(self, spec, seed):
        mechanism = _make(spec)
        item_domain = getattr(mechanism, "flat_domain_size", mechanism.domain_size)
        stream = np.random.default_rng(seed)
        batches = [
            np.random.default_rng(seed + i).integers(0, item_domain, size=500)
            for i in range(2)
        ]
        mechanism.partial_fit(batches[0], stream)
        mechanism.partial_fit(batches[1], stream)
        assert not mechanism.is_materialized
        assert mechanism.materialization_count == 0

        # Saving a dirty mechanism must not force a materialization ...
        data = snapshots.to_bytes(mechanism)
        assert not mechanism.is_materialized
        assert mechanism.materialization_count == 0

        # ... and the restored copy answers bit-identically.
        restored = snapshots.from_bytes(data)
        assert not restored.is_materialized
        np.testing.assert_array_equal(
            _read_surfaces(restored), _read_surfaces(mechanism)
        )
        assert restored.materialization_count == 1


class TestMaterializationBookkeeping:
    @pytest.mark.parametrize("spec", SPECS)
    def test_reads_materialize_once_per_generation(self, spec):
        mechanism = _make(spec)
        item_domain = getattr(mechanism, "flat_domain_size", mechanism.domain_size)
        items = np.random.default_rng(0).integers(0, item_domain, size=1000)
        assert mechanism.is_materialized  # nothing collected, nothing stale

        mechanism.partial_fit(items, random_state=1)
        assert not mechanism.is_materialized
        assert mechanism.ingest_generation == 1

        mechanism.estimate_frequencies()
        mechanism.estimate_cdf()
        mechanism.answer_range(0, mechanism.domain_size - 1)
        assert mechanism.is_materialized
        assert mechanism.materialization_count == 1

        mechanism.partial_fit(items, random_state=2)
        assert not mechanism.is_materialized
        assert mechanism.ingest_generation == 2
        mechanism.materialize()
        assert mechanism.materialization_count == 2
        # materialize is idempotent
        mechanism.materialize()
        assert mechanism.materialization_count == 2

    @pytest.mark.parametrize("spec", SPECS)
    def test_merge_marks_dirty(self, spec):
        first = _make(spec)
        second = _make(spec)
        item_domain = getattr(first, "flat_domain_size", first.domain_size)
        items = np.random.default_rng(3).integers(0, item_domain, size=800)
        first.partial_fit(items[:400], random_state=4)
        second.partial_fit(items[400:], random_state=5)
        first.estimate_frequencies()
        assert first.is_materialized
        first.merge_from(second)
        assert not first.is_materialized
        first.estimate_frequencies()
        assert first.is_materialized
