"""Async ingestion service — throughput vs producer count and router policy.

Not a paper figure: this benchmark characterises the serving tier added on
top of the PR-1 streaming engine.  It answers three operational questions
at benchmark scale:

* **throughput vs producers** — how ingestion rate behaves as concurrent
  producers are added in front of a fixed shard pool (the event loop
  serialises aggregation, so the point of more producers is saturating the
  shards under backpressure, not CPU parallelism — the table shows whether
  the service sustains its single-producer rate as concurrency grows);
* **router policy cost** — round-robin vs hash-by-user vs least-loaded
  placement, same population, same shards;
* **accuracy invariance** — every configuration's reduced estimates stay
  within noise of a one-shot fit (the service feeds the same mergeable
  accumulators, so concurrency must be invisible to accuracy).

A final section times :func:`repro.service.collect_across_processes`,
whose workers exchange shard state as :mod:`repro.persist` snapshot bytes —
the cross-process transport path.

Run with ``pytest benchmarks/bench_ingestion_service.py --benchmark-only -s``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.factory import mechanism_from_spec
from repro.data.synthetic import cauchy_probabilities, sample_items
from repro.data.workloads import random_range_queries
from repro.experiments.reporting import format_table
from repro.service import collect_across_processes, run_ingestion
from repro.streaming import ShardedCollector

SPEC = "hhc_4"
EPSILON = 1.1
N_SHARDS = 4
PRODUCER_COUNTS = (1, 2, 4, 8)
ROUTERS = ("round-robin", "hash", "least-loaded")


def _population(bench_config, domain):
    seed = bench_config.seed
    items = sample_items(
        cauchy_probabilities(domain), bench_config.n_users, random_state=seed
    )
    workload = random_range_queries(
        domain,
        min(bench_config.max_queries_per_workload, 4000),
        random_state=seed,
        name="ingestion-bench",
    )
    truth = workload.true_answers(np.bincount(items, minlength=domain))
    return items, workload, truth


@pytest.mark.benchmark(group="ingestion")
def test_throughput_vs_producers_and_router(run_once, bench_config):
    """Multi-producer async ingestion sustains throughput and accuracy."""
    domain = 1 << 10
    items, workload, truth = _population(bench_config, domain)
    batches = np.array_split(items, 64)

    def sweep():
        rows = []
        for router in ROUTERS:
            for n_producers in PRODUCER_COUNTS:
                collector = ShardedCollector(
                    SPEC,
                    epsilon=EPSILON,
                    domain_size=domain,
                    n_shards=N_SHARDS,
                    random_state=bench_config.seed + n_producers,
                    router=router,
                )
                report = run_ingestion(
                    collector, batches, n_producers=n_producers, queue_size=4
                )
                estimates = collector.reduce().answer_workload(workload)
                mse = float(np.mean((estimates - truth) ** 2))
                rows.append(
                    [router, n_producers, report.users_per_second / 1e6, mse * 1000.0]
                )
        return rows

    rows = run_once(sweep)

    start = time.perf_counter()
    one_shot = mechanism_from_spec(SPEC, epsilon=EPSILON, domain_size=domain)
    one_shot.fit_items(items, random_state=bench_config.seed)
    one_shot_seconds = time.perf_counter() - start
    baseline = float(np.mean((one_shot.answer_workload(workload) - truth) ** 2))
    rows.append(["one-shot", 0, items.size / one_shot_seconds / 1e6, baseline * 1000.0])

    print(
        f"\n=== Ingestion | {SPEC} | D = {domain} | N = {bench_config.n_users} | "
        f"{len(batches)} batches across {N_SHARDS} shards ==="
    )
    print(format_table(["router", "producers", "Musers/s", "mse x1000"], rows))

    service_rows = rows[:-1]
    # Accuracy invariance: every router x producer configuration within
    # noise of the one-shot baseline.
    for row in service_rows:
        assert row[3] < 3.0 * rows[-1][3] + 1e-6, row
    # Concurrency sustains throughput: for each router, the best
    # multi-producer rate is not materially below the single-producer rate
    # (producers only add coordination; backpressure must not collapse it).
    for router in ROUTERS:
        rates = {row[1]: row[2] for row in service_rows if row[0] == router}
        assert max(rates[p] for p in PRODUCER_COUNTS[1:]) > 0.5 * rates[1], router


@pytest.mark.benchmark(group="ingestion")
def test_cross_process_collection(run_once, bench_config):
    """Worker processes exchanging persist snapshots match one-shot accuracy."""
    domain = 1 << 8
    items, workload, truth = _population(bench_config, domain)
    batches = np.array_split(items, 16)

    def collect():
        rows = []
        for n_workers in (0, 2, 4):
            start = time.perf_counter()
            mechanism = collect_across_processes(
                SPEC,
                batches,
                epsilon=EPSILON,
                domain_size=domain,
                n_workers=n_workers,
                random_state=bench_config.seed,
            )
            seconds = time.perf_counter() - start
            mse = float(
                np.mean((mechanism.answer_workload(workload) - truth) ** 2)
            )
            label = "in-process" if n_workers == 0 else f"{n_workers} procs"
            rows.append([label, n_workers, seconds, mse * 1000.0])
        return rows

    rows = run_once(collect)
    print(f"\n=== Cross-process | {SPEC} | D = {domain} | N = {bench_config.n_users} ===")
    print(format_table(["executor", "workers", "seconds", "mse x1000"], rows))

    errors = [row[3] for row in rows]
    assert max(errors) < 3.0 * min(errors) + 1e-6
