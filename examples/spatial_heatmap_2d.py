"""Two-dimensional range queries: a private spatial density map.

Scenario (the multidimensional extension of Section 6): a mobility provider
wants coarse pick-up density over a city grid — how many trips start inside
any rectangle — without tracking individual riders.  Each trip start is
snapped to a 32 x 32 grid and reported once under local differential
privacy; the aggregator can then answer arbitrary rectangle queries and
render a smoothed heatmap.

Run with:  python examples/spatial_heatmap_2d.py
"""

from __future__ import annotations

import numpy as np

from repro import HierarchicalGrid2D

GRID = 32
N_TRIPS = 400_000
EPSILON = 1.2


def synthetic_trip_origins(random_state: int = 5) -> np.ndarray:
    """Two hotspots (downtown and an airport) plus uniform background."""
    rng = np.random.default_rng(random_state)
    downtown = rng.normal(loc=(10, 12), scale=2.5, size=(int(N_TRIPS * 0.55), 2))
    airport = rng.normal(loc=(25, 6), scale=1.5, size=(int(N_TRIPS * 0.30), 2))
    background = rng.uniform(0, GRID, size=(N_TRIPS - downtown.shape[0] - airport.shape[0], 2))
    points = np.concatenate([downtown, airport, background])
    return np.clip(points.astype(int), 0, GRID - 1)


def main() -> None:
    points = synthetic_trip_origins()

    grid = HierarchicalGrid2D(epsilon=EPSILON, domain_size=GRID, branching=2, oracle="oue")
    grid.fit_points(points, random_state=9)
    print(f"collected {grid.n_users:,} trip reports over a {GRID}x{GRID} grid "
          f"(epsilon = {grid.epsilon})")

    # ------------------------------------------------------------------
    # Rectangle queries: fraction of trips starting inside named zones.
    # ------------------------------------------------------------------
    zones = {
        "downtown core": ((6, 14), (8, 16)),
        "airport area": ((22, 28), (3, 9)),
        "north edge": ((0, 31), (28, 31)),
        "whole city": ((0, 31), (0, 31)),
    }
    print("\nzone densities (fraction of all trips)")
    for name, (x_range, y_range) in zones.items():
        estimate = grid.answer_rectangle(x_range, y_range)
        truth = np.mean(
            (points[:, 0] >= x_range[0]) & (points[:, 0] <= x_range[1])
            & (points[:, 1] >= y_range[0]) & (points[:, 1] <= y_range[1])
        )
        print(f"  {name:14s} estimate={estimate:.4f}  truth={truth:.4f}")

    # ------------------------------------------------------------------
    # A coarse ASCII heatmap from 8x8-cell block queries.
    # ------------------------------------------------------------------
    block = 8
    shades = " .:-=+*#%@"
    print("\nestimated density heatmap (8x8 blocks, darker = denser)")
    densities = np.zeros((GRID // block, GRID // block))
    for by in range(GRID // block - 1, -1, -1):
        row = ""
        for bx in range(GRID // block):
            value = grid.answer_rectangle(
                (bx * block, (bx + 1) * block - 1), (by * block, (by + 1) * block - 1)
            )
            densities[by, bx] = value
            shade = shades[int(np.clip(value / 0.35, 0, 0.999) * len(shades))]
            row += shade * 2
        print("  " + row)
    print(f"\npeak block density estimate: {densities.max():.3f}")

    # ------------------------------------------------------------------
    # The same workload, collected as a stream across ingestion shards
    # (trips arrive in batches; shard count is invisible to accuracy).
    # ------------------------------------------------------------------
    from repro.streaming import ShardedCollector

    collector = ShardedCollector(
        "grid2d_2", epsilon=EPSILON, domain_size=GRID, n_shards=4, random_state=9
    )
    for batch in np.array_split(points, 24):
        collector.submit_points(batch)
    streamed = collector.reduce()
    x_range, y_range = zones["downtown core"]
    print(
        f"\nstreamed collection ({collector.n_shards} shards, "
        f"{collector.n_batches} batches): downtown core estimate="
        f"{streamed.answer_rectangle(x_range, y_range):.4f}"
    )


if __name__ == "__main__":
    main()
