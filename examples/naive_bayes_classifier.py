"""Building a prediction model on top of LDP range queries (Section 6).

The paper's concluding remarks sketch how range queries become a modelling
primitive: "consider building a Naive Bayes classifier for a public class
based on private numerical attributes ... use our methods to allow range
queries to be evaluated on each attribute for each class".

Scenario: a bank wants a simple risk model predicting whether a loan is
repaid (public outcome) from two *private* numerical attributes — income
and existing-debt ratio — reported by applicants under local differential
privacy.  One LDP collection per (attribute, class) pair is run; the
classifier then scores new applicants using only range queries against the
private estimates (binned likelihoods), never the raw data.

Run with:  python examples/naive_bayes_classifier.py
"""

from __future__ import annotations

import numpy as np

from repro import HaarWaveletMechanism

DOMAIN = 256          # both attributes discretised into 256 bins
N_APPLICANTS = 200_000
EPSILON = 1.0         # budget per attribute collection
N_BINS = 16           # likelihood bins used by the classifier (range queries)


def synthetic_applications(random_state: int = 17):
    """Income / debt-ratio attributes with class-dependent distributions."""
    rng = np.random.default_rng(random_state)
    repaid = rng.random(N_APPLICANTS) < 0.7
    income = np.where(
        repaid,
        rng.normal(150, 35, N_APPLICANTS),
        rng.normal(95, 30, N_APPLICANTS),
    )
    debt = np.where(
        repaid,
        rng.normal(70, 25, N_APPLICANTS),
        rng.normal(140, 40, N_APPLICANTS),
    )
    income = np.clip(income, 0, DOMAIN - 1).astype(int)
    debt = np.clip(debt, 0, DOMAIN - 1).astype(int)
    return income, debt, repaid


def collect_private_histogram(items: np.ndarray, seed: int) -> HaarWaveletMechanism:
    """One LDP collection: every user in `items` reports once."""
    mechanism = HaarWaveletMechanism(EPSILON, DOMAIN)
    mechanism.fit_items(items, random_state=seed)
    return mechanism


def binned_likelihoods(mechanism: HaarWaveletMechanism) -> np.ndarray:
    """Per-bin probabilities from N_BINS range queries (floored at a tiny
    constant so the log-likelihoods stay finite)."""
    width = DOMAIN // N_BINS
    edges = [(b * width, (b + 1) * width - 1) for b in range(N_BINS)]
    estimates = np.array([mechanism.answer_range(a, b) for a, b in edges])
    clipped = np.clip(estimates, 1e-4, None)
    return clipped / clipped.sum()


def main() -> None:
    income, debt, repaid = synthetic_applications()

    # ------------------------------------------------------------------
    # Training: four independent LDP collections (2 attributes x 2 classes).
    # Each applicant participates once per attribute, so the total budget
    # per person is 2 * EPSILON under sequential composition.
    # ------------------------------------------------------------------
    collections = {
        ("income", True): collect_private_histogram(income[repaid], seed=1),
        ("income", False): collect_private_histogram(income[~repaid], seed=2),
        ("debt", True): collect_private_histogram(debt[repaid], seed=3),
        ("debt", False): collect_private_histogram(debt[~repaid], seed=4),
    }
    likelihoods = {key: binned_likelihoods(m) for key, m in collections.items()}
    prior_repaid = repaid.mean()  # the class labels are public in this scenario

    # ------------------------------------------------------------------
    # Scoring new applicants with the private model.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(99)
    test_income, test_debt, test_repaid = synthetic_applications(random_state=123)
    subset = rng.choice(N_APPLICANTS, size=20_000, replace=False)
    width = DOMAIN // N_BINS

    def log_posterior(income_bin, debt_bin, label):
        prior = prior_repaid if label else 1.0 - prior_repaid
        return (
            np.log(prior)
            + np.log(likelihoods[("income", label)][income_bin])
            + np.log(likelihoods[("debt", label)][debt_bin])
        )

    income_bins = np.minimum(test_income[subset] // width, N_BINS - 1)
    debt_bins = np.minimum(test_debt[subset] // width, N_BINS - 1)
    scores_true = np.array([log_posterior(i, d, True) for i, d in zip(income_bins, debt_bins)])
    scores_false = np.array([log_posterior(i, d, False) for i, d in zip(income_bins, debt_bins)])
    predictions = scores_true > scores_false

    accuracy = np.mean(predictions == test_repaid[subset])
    baseline = max(prior_repaid, 1 - prior_repaid)
    print(f"private Naive Bayes accuracy: {accuracy:.3f}")
    print(f"majority-class baseline:      {baseline:.3f}")
    print(f"(model trained purely from epsilon={EPSILON} LDP range queries, "
          f"{N_BINS} bins per attribute)")


if __name__ == "__main__":
    main()
