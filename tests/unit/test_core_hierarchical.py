"""Unit tests for the hierarchical histogram mechanism."""

import numpy as np
import pytest

from repro.core.hierarchical import HierarchicalHistogramMechanism
from repro.exceptions import ConfigurationError, InvalidQueryError, NotFittedError


class TestConfiguration:
    def test_default_name_encodes_variant(self):
        assert HierarchicalHistogramMechanism(1.0, 64).name == "TreeOUECI_B4"
        assert (
            HierarchicalHistogramMechanism(1.0, 64, branching=8, oracle="hrr", consistency=False).name
            == "TreeHRR_B8"
        )

    def test_tree_geometry(self):
        mechanism = HierarchicalHistogramMechanism(1.0, 256, branching=4)
        assert mechanism.tree.height == 4
        assert mechanism.branching == 4

    def test_level_probabilities_default_uniform(self):
        mechanism = HierarchicalHistogramMechanism(1.0, 256, branching=2)
        np.testing.assert_allclose(mechanism.level_probabilities, np.full(8, 1 / 8))

    def test_custom_level_probabilities_normalised(self):
        mechanism = HierarchicalHistogramMechanism(
            1.0, 16, branching=4, level_probabilities=[1.0, 3.0]
        )
        np.testing.assert_allclose(mechanism.level_probabilities, [0.25, 0.75])

    def test_invalid_level_probabilities(self):
        with pytest.raises(ConfigurationError):
            HierarchicalHistogramMechanism(1.0, 16, branching=4, level_probabilities=[1.0])
        with pytest.raises(ConfigurationError):
            HierarchicalHistogramMechanism(
                1.0, 16, branching=4, level_probabilities=[-1.0, 2.0]
            )

    def test_invalid_budget_strategy(self):
        with pytest.raises(ConfigurationError):
            HierarchicalHistogramMechanism(1.0, 16, budget_strategy="other")

    def test_splitting_strategy_divides_epsilon(self):
        mechanism = HierarchicalHistogramMechanism(
            1.2, 64, branching=4, budget_strategy="splitting"
        )
        # Every per-level oracle runs with eps / h = 1.2 / 3.
        assert mechanism._oracles[1].epsilon == pytest.approx(0.4)


class TestCollection:
    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            HierarchicalHistogramMechanism(1.0, 64).answer_range(0, 3)

    def test_level_estimates_shapes(self, small_counts):
        mechanism = HierarchicalHistogramMechanism(1.0, 64, branching=4)
        mechanism.fit_counts(small_counts, random_state=0)
        levels = mechanism.level_estimates()
        assert [level.shape[0] for level in levels] == [4, 16, 64]

    def test_level_user_counts_partition_population(self, small_counts):
        mechanism = HierarchicalHistogramMechanism(1.0, 64, branching=4)
        mechanism.fit_counts(small_counts, random_state=0)
        assert mechanism.level_user_counts.sum() == small_counts.sum()

    def test_consistency_makes_levels_additive(self, small_counts):
        mechanism = HierarchicalHistogramMechanism(1.0, 64, branching=4, consistency=True)
        mechanism.fit_counts(small_counts, random_state=0)
        levels = mechanism.level_estimates()
        for depth in range(len(levels) - 1):
            parents = levels[depth]
            child_sums = levels[depth + 1].reshape(-1, 4).sum(axis=1)
            np.testing.assert_allclose(parents, child_sums, atol=1e-10)
        assert levels[0].sum() == pytest.approx(1.0)

    def test_raw_estimates_available(self, small_counts):
        mechanism = HierarchicalHistogramMechanism(1.0, 64, branching=4, consistency=True)
        mechanism.fit_counts(small_counts, random_state=0)
        raw = mechanism.level_estimates(raw=True)
        adjusted = mechanism.level_estimates()
        assert any(
            not np.allclose(r, a) for r, a in zip(raw, adjusted)
        ), "consistency should change at least one level"

    def test_per_user_mode_runs(self, rng):
        items = rng.integers(0, 64, size=5000)
        mechanism = HierarchicalHistogramMechanism(1.5, 64, branching=4)
        mechanism.fit_items(items, random_state=rng, mode="per_user")
        assert mechanism.is_fitted

    def test_splitting_strategy_runs_both_modes(self, rng, small_counts):
        mechanism = HierarchicalHistogramMechanism(
            1.0, 64, branching=4, budget_strategy="splitting"
        )
        mechanism.fit_counts(small_counts, random_state=rng)
        assert mechanism.is_fitted
        items = rng.integers(0, 64, size=1000)
        mechanism2 = HierarchicalHistogramMechanism(
            1.0, 64, branching=4, budget_strategy="splitting"
        )
        mechanism2.fit_items(items, random_state=rng, mode="per_user")
        assert mechanism2.is_fitted


class TestAnswers:
    def test_consistent_answers_are_additive(self, medium_counts):
        # With consistency, answering [a, c] must equal [a, b] + [b+1, c]
        # regardless of how the B-adic decompositions differ.
        domain = medium_counts.shape[0]
        mechanism = HierarchicalHistogramMechanism(1.1, domain, branching=4, consistency=True)
        mechanism.fit_counts(medium_counts, random_state=1)
        whole = mechanism.answer_range(10, 200)
        split = mechanism.answer_range(10, 99) + mechanism.answer_range(100, 200)
        assert whole == pytest.approx(split, abs=1e-9)

    def test_answers_close_to_truth(self, medium_counts):
        domain = medium_counts.shape[0]
        total = medium_counts.sum()
        mechanism = HierarchicalHistogramMechanism(1.1, domain, branching=4)
        mechanism.fit_counts(medium_counts, random_state=2)
        for start, end in [(0, 255), (10, 100), (128, 200)]:
            truth = medium_counts[start : end + 1].sum() / total
            assert mechanism.answer_range(start, end) == pytest.approx(truth, abs=0.05)

    @pytest.mark.parametrize("domain", [256, 100])  # exact and padded trees
    def test_estimate_cdf_reuses_leaf_prefix_bit_exactly(self, domain):
        """The CDF slices the materialized leaf prefix sums — identical to
        cumsum(frequencies) even when the tree pads the domain."""
        counts = np.random.default_rng(0).integers(0, 50, size=domain)
        mechanism = HierarchicalHistogramMechanism(
            1.1, domain, branching=4, consistency=True
        ).fit_counts(counts, random_state=1)
        np.testing.assert_array_equal(
            mechanism.estimate_cdf(), np.cumsum(mechanism.estimate_frequencies())
        )
        assert mechanism.estimate_cdf().shape == (domain,)

    def test_full_domain_is_one_with_consistency(self, medium_counts):
        domain = medium_counts.shape[0]
        mechanism = HierarchicalHistogramMechanism(1.0, domain, branching=4, consistency=True)
        mechanism.fit_counts(medium_counts, random_state=0)
        assert mechanism.answer_range(0, domain - 1) == pytest.approx(1.0, abs=1e-9)

    def test_vectorised_answers_match_scalar_with_consistency(self, medium_counts):
        domain = medium_counts.shape[0]
        mechanism = HierarchicalHistogramMechanism(1.0, domain, branching=4, consistency=True)
        mechanism.fit_counts(medium_counts, random_state=5)
        queries = np.array([[0, 255], [3, 3], [17, 200], [100, 130]])
        np.testing.assert_allclose(
            mechanism.answer_ranges(queries),
            [mechanism.answer_range(a, b) for a, b in queries],
            atol=1e-10,
        )

    def test_vectorised_answers_match_scalar_without_consistency(self, medium_counts):
        domain = medium_counts.shape[0]
        mechanism = HierarchicalHistogramMechanism(1.0, domain, branching=4, consistency=False)
        mechanism.fit_counts(medium_counts, random_state=5)
        queries = np.array([[0, 255], [3, 3], [17, 200]])
        np.testing.assert_allclose(
            mechanism.answer_ranges(queries),
            [mechanism.answer_range(a, b) for a, b in queries],
            atol=1e-10,
        )

    @pytest.mark.parametrize("branching,domain", [(2, 256), (3, 100), (4, 256), (7, 200)])
    def test_batched_badic_matches_per_query_decomposition(self, rng, branching, domain):
        # The batched evaluation must reproduce the per-query B-adic
        # decomposition exactly, for every branching factor, padded and
        # non-padded domains, and every query shape (single items, aligned
        # blocks, the full domain, ...).
        counts = rng.multinomial(50_000, np.full(domain, 1.0 / domain))
        mechanism = HierarchicalHistogramMechanism(
            1.0, domain, branching=branching, consistency=False
        )
        mechanism.fit_counts(counts, random_state=7)
        endpoints = rng.integers(0, domain, size=(400, 2))
        queries = np.sort(endpoints, axis=1)
        special = np.array(
            [[0, domain - 1], [0, 0], [domain - 1, domain - 1], [0, domain // 2]]
        )
        queries = np.concatenate([queries, special])
        np.testing.assert_allclose(
            mechanism.answer_ranges(queries),
            [mechanism._answer_range(int(a), int(b)) for a, b in queries],
            atol=1e-10,
        )

    def test_estimate_frequencies_length(self, small_counts):
        mechanism = HierarchicalHistogramMechanism(1.0, 64, branching=4)
        mechanism.fit_counts(small_counts, random_state=0)
        assert mechanism.estimate_frequencies().shape == (64,)

    def test_non_power_domain(self, rng):
        counts = rng.multinomial(20_000, np.full(100, 0.01))
        mechanism = HierarchicalHistogramMechanism(1.5, 100, branching=4)
        mechanism.fit_counts(counts, random_state=0)
        truth = counts[:50].sum() / counts.sum()
        assert mechanism.answer_range(0, 49) == pytest.approx(truth, abs=0.08)

    def test_invalid_query(self, small_counts):
        mechanism = HierarchicalHistogramMechanism(1.0, 64)
        mechanism.fit_counts(small_counts, random_state=0)
        with pytest.raises(InvalidQueryError):
            mechanism.answer_range(0, 64)

    def test_variance_bound_accessor(self, small_counts):
        mechanism = HierarchicalHistogramMechanism(1.0, 64, branching=4)
        mechanism.fit_counts(small_counts, random_state=0)
        assert mechanism.per_query_variance_bound(16) > 0

    def test_oracle_choice_changes_primitives(self, small_counts):
        hrr = HierarchicalHistogramMechanism(1.0, 64, branching=4, oracle="hrr")
        hrr.fit_counts(small_counts, random_state=0)
        olh = HierarchicalHistogramMechanism(1.0, 64, branching=4, oracle="olh")
        olh.fit_counts(small_counts, random_state=0)
        assert hrr.is_fitted and olh.is_fitted
