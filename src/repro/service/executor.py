"""Cross-process shard execution via the persistence layer.

The asyncio tier keeps everything in one process; this module runs shards
in *worker processes* and proves the end-to-end transport story of
:mod:`repro.persist`: the parent ships each worker an **unfitted mechanism
snapshot** (configuration only), the worker accumulates its share of the
population and ships back a **fitted snapshot**, and the parent merges the
restored shards.  Nothing crosses the process boundary except snapshot
bytes and the raw item batches — no pickled mechanism objects — so the
same bytes could equally travel over a socket or an object store between
real machines.

Determinism: each worker derives its random stream from a
:class:`numpy.random.SeedSequence` child of the caller's seed, so a run is
reproducible for a fixed seed, worker count and batch partition (the same
spawning scheme :class:`~repro.streaming.ShardedCollector` uses in-process).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.base import RangeQueryMechanism
from repro.exceptions import ConfigurationError
from repro.persist import snapshots as persist
from repro.privacy.randomness import RandomState

__all__ = ["collect_across_processes"]


def _collect_shard(
    template_bytes: bytes,
    batches: List[np.ndarray],
    seed: dict,
    mode: str,
) -> bytes:
    """Worker entry point: accumulate one shard, return its snapshot.

    Module-level so it pickles under both fork and spawn start methods.
    ``seed`` reconstructs the exact :class:`numpy.random.SeedSequence`
    child the parent derived for this shard.
    """
    mechanism = persist.from_bytes(template_bytes)
    sequence = np.random.SeedSequence(
        entropy=seed["entropy"], spawn_key=tuple(seed["spawn_key"])
    )
    rng = np.random.default_rng(sequence)
    for batch in batches:
        mechanism.partial_fit(batch, random_state=rng, mode=mode)
    return persist.to_bytes(mechanism)


def collect_across_processes(
    mechanism: Union[str, RangeQueryMechanism],
    batches: Sequence[np.ndarray],
    epsilon: Optional[float] = None,
    domain_size: Optional[int] = None,
    n_workers: int = 2,
    random_state: RandomState = None,
    mode: str = "aggregate",
    **mechanism_kwargs,
) -> RangeQueryMechanism:
    """Collect ``batches`` across worker processes and merge the shards.

    Parameters
    ----------
    mechanism:
        Spec string (with ``epsilon``/``domain_size``/``mechanism_kwargs``)
        or a prebuilt instance used as a configuration template.
    batches:
        The population as a list of per-batch item arrays; batch ``i`` goes
        to worker ``i mod n_workers``, preserving order within a worker.
    n_workers:
        Number of worker processes.  ``0`` runs every shard sequentially in
        the current process through the identical snapshot transport —
        useful where process pools are unavailable, and as the equivalence
        baseline in tests.
    random_state:
        Base seed; each worker gets an independent child stream.
    mode:
        Simulation mode forwarded to every ``partial_fit``.

    Returns
    -------
    RangeQueryMechanism
        A freshly merged, queryable mechanism equivalent in distribution to
        a one-shot fit of the concatenated batches.
    """
    if not isinstance(n_workers, (int, np.integer)) or n_workers < 0:
        raise ConfigurationError(
            f"n_workers must be a non-negative integer, got {n_workers!r}"
        )
    template = persist.clone_unfitted(
        persist.resolve_mechanism(
            mechanism,
            epsilon=epsilon,
            domain_size=domain_size,
            mechanism_kwargs=mechanism_kwargs,
        )
    )
    batches = [np.asarray(batch) for batch in batches]
    if not batches:
        raise ConfigurationError("collect_across_processes needs at least one batch")

    n_shards = max(1, min(int(n_workers) or 1, len(batches)))
    template_bytes = persist.to_bytes(template)
    if isinstance(random_state, np.random.SeedSequence):
        sequence = random_state
    elif isinstance(random_state, np.random.Generator):
        sequence = np.random.SeedSequence(
            random_state.integers(0, 2**63 - 1, size=4).tolist()
        )
    elif random_state is None:
        sequence = np.random.SeedSequence()
    else:
        sequence = np.random.SeedSequence(int(random_state))
    seeds = [
        {"entropy": child.entropy, "spawn_key": list(child.spawn_key)}
        for child in sequence.spawn(n_shards)
    ]
    jobs = [
        (template_bytes, batches[shard::n_shards], seeds[shard], str(mode))
        for shard in range(n_shards)
    ]

    if int(n_workers) == 0:
        results = [_collect_shard(*job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=n_shards) as pool:
            results = list(
                pool.map(_collect_shard, *(list(column) for column in zip(*jobs)))
            )

    reduced = persist.clone_unfitted(template)
    # Statistic-only merges; the reduced mechanism materializes its
    # estimates lazily on the first query.
    for shard_mechanism in (persist.from_bytes(result) for result in results):
        reduced.merge_from(shard_mechanism)
    return reduced
