"""Abstract interface shared by every range-query mechanism.

A mechanism's lifecycle has two phases:

1. **Collection** — the private inputs of ``N`` users are turned into noisy
   aggregate state.  Two one-shot entry points exist: :meth:`fit_items` (an
   array of individual user items, supporting both ``per_user`` and
   ``aggregate`` simulation) and :meth:`fit_counts` (exact per-item counts,
   ``aggregate`` simulation only).  Mechanisms backed by mergeable oracle
   accumulators additionally support *incremental* collection
   (:meth:`partial_fit`, callable any number of times) and *shard
   combination* (:meth:`merge_from`, folding another instance's accumulated
   state into this one) — the substrate of
   :class:`repro.streaming.ShardedCollector`.
2. **Query answering** — once fitted, :meth:`answer_range`,
   :meth:`answer_prefix`, :meth:`estimate_frequencies`, :meth:`estimate_cdf`
   and :meth:`quantile` are available.  All answers are *fractions of the
   population*, matching the problem definition in Section 4.1 of the paper.

The two phases are decoupled by **lazy estimate materialization**: the
collection entry points only accumulate sufficient statistics and bump a
dirty generation counter; the post-processed estimates (consistency least
squares, inverse transforms, prefix sums) are rebuilt at most once per
generation, on the first read after a mutation (every query surface calls
:meth:`_require_fitted`, which calls :meth:`materialize`).  A streaming run
of ``k`` small batches therefore pays the reconstruction cost once instead
of ``k`` times, and the answers are bit-identical to refreshing after every
batch because the estimates are a deterministic function of the accumulated
statistics (no randomness is consumed by a refresh).

Subclasses implement :meth:`_collect` (store aggregate state) and
:meth:`_answer_range` (answer a single validated range query); the base
class provides validation, workload evaluation and the quantile search.
Accumulator-backed subclasses additionally implement
:meth:`_refresh_estimates` and call :meth:`_mark_dirty` from every path
that mutates their sufficient statistics without refreshing.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.core.cache import MISS, AnswerCache
from repro.data.workloads import RangeWorkload
from repro.exceptions import (
    ConfigurationError,
    InvalidDomainError,
    InvalidQueryError,
    NotFittedError,
)
from repro.privacy.budget import PrivacyBudget
from repro.privacy.randomness import RandomState, as_generator

__all__ = ["RangeQueryMechanism", "SIMULATION_MODES"]

#: Supported simulation modes for the collection phase.
SIMULATION_MODES = ("per_user", "aggregate")


class RangeQueryMechanism(abc.ABC):
    """Base class of all LDP range-query mechanisms.

    Parameters
    ----------
    epsilon:
        Privacy budget each user's report must satisfy.
    domain_size:
        Number of items ``D`` of the (one-dimensional, discrete) domain.
    name:
        Optional human-readable identifier used in experiment reports.
    """

    def __init__(self, epsilon: float, domain_size: int, name: Optional[str] = None) -> None:
        self._budget = PrivacyBudget(epsilon)
        if not isinstance(domain_size, (int, np.integer)) or domain_size < 1:
            raise InvalidDomainError(
                f"domain size must be a positive integer, got {domain_size!r}"
            )
        self._domain_size = int(domain_size)
        self._n_users: Optional[int] = None
        self._name = name
        # Lazy materialization bookkeeping: every mutation of the sufficient
        # statistics bumps the ingest generation; the estimates are rebuilt
        # (at most once per generation) when a read surface needs them.
        self._ingest_generation = 0
        self._materialized_generation = 0
        self._n_materializations = 0
        # Answer cache, keyed by (ingest_generation, canonical query key):
        # read surfaces consult it after _require_fitted() settles the
        # generation; write paths never touch it — a statistics mutation
        # invalidates every entry for free by bumping the generation.
        self._answer_cache = AnswerCache()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Per-report privacy budget."""
        return self._budget.epsilon

    @property
    def domain_size(self) -> int:
        """Number of items ``D``."""
        return self._domain_size

    @property
    def name(self) -> str:
        """Identifier used in reports (defaults to the class name)."""
        return self._name or type(self).__name__

    @property
    def n_users(self) -> Optional[int]:
        """Population size seen during collection (``None`` before fitting)."""
        return self._n_users

    @property
    def is_fitted(self) -> bool:
        """Whether the collection phase has run."""
        return self._n_users is not None

    # ------------------------------------------------------------------
    # Lazy materialization
    # ------------------------------------------------------------------
    @property
    def is_materialized(self) -> bool:
        """Whether the queryable estimates reflect the current statistics.

        ``True`` for a freshly constructed mechanism (there is nothing to
        materialize) and after every read; ``False`` between a statistics
        mutation (``partial_fit``, ``merge_from``, ``fit_*``,
        ``load_state_dict``) and the next read or :meth:`materialize` call.
        """
        return self._materialized_generation == self._ingest_generation

    @property
    def ingest_generation(self) -> int:
        """Number of statistics mutations absorbed so far (monotone)."""
        return self._ingest_generation

    @property
    def materialization_count(self) -> int:
        """Number of estimate rebuilds actually performed so far.

        Under lazy materialization this stays far below
        :attr:`ingest_generation` on streaming workloads; the difference is
        the number of reconstructions the laziness saved (the ``deferred``
        counter exported by :meth:`repro.service.IngestionService.stats`).
        """
        return self._n_materializations

    def materialize(self) -> "RangeQueryMechanism":
        """Rebuild the queryable estimates if they are stale.

        Idempotent and cheap when already materialized (one integer
        comparison).  Called automatically by every read surface via
        :meth:`_require_fitted`; exposed publicly so callers can move the
        reconstruction cost off a latency-critical read path (e.g. after a
        shard reduce, before serving queries).
        """
        if self.is_fitted and not self.is_materialized:
            self._refresh_estimates()
            self._materialized_generation = self._ingest_generation
            self._n_materializations += 1
        return self

    def _mark_dirty(self) -> None:
        """Record a statistics mutation: estimates are stale until the next
        :meth:`materialize`.  Accumulator-backed subclasses call this from
        ``_collect`` and ``load_state_dict``; the base class calls it for
        ``partial_fit`` and ``merge_from`` (which only ever succeed on
        mechanisms with accumulator support)."""
        self._ingest_generation += 1

    def _mark_clean(self) -> None:
        """Reset the dirty tracking (state was cleared, nothing to rebuild)."""
        self._materialized_generation = self._ingest_generation

    # ------------------------------------------------------------------
    # Answer cache
    # ------------------------------------------------------------------
    def set_answer_cache_size(self, maxsize: int) -> "RangeQueryMechanism":
        """Bound the generation-keyed answer cache (``0`` disables it).

        The cache memoizes range/box/quantile answers under a
        ``(ingest_generation, query)`` key, so repeated queries between
        writes skip the run-decomposition + gather entirely; any write
        invalidates every entry by bumping the generation.  Cached answers
        are bit-identical to recomputed ones (the estimates are a pure
        function of the statistics at a fixed generation).
        """
        self._answer_cache.resize(maxsize)
        return self

    def answer_cache_stats(self) -> dict:
        """Hit/miss/eviction counters and size/bound of the answer cache."""
        return self._answer_cache.stats()

    # ------------------------------------------------------------------
    # Collection phase
    # ------------------------------------------------------------------
    def fit_items(
        self,
        items: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "RangeQueryMechanism":
        """Collect the population given each user's private item.

        Parameters
        ----------
        items:
            Integer array with one entry per user, each in ``[0, D)``.
        random_state:
            Seed or generator driving both the protocol randomness and any
            simulation sampling.
        mode:
            ``"per_user"`` runs the actual local protocol for every user;
            ``"aggregate"`` samples the aggregator's view directly (much
            faster, statistically equivalent — see the oracle docstrings).
        """
        items = self._validate_items(items)
        self._check_mode(mode)
        rng = as_generator(random_state)
        self._collect(
            items=items, counts=self._counts_for(items, mode), rng=rng, mode=mode
        )
        self._n_users = int(items.shape[0])
        return self

    def partial_fit(
        self,
        items: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "RangeQueryMechanism":
        """Collect one additional batch of users, keeping earlier batches.

        Each call accumulates the batch's sufficient statistics on top of
        whatever has been collected so far (by previous :meth:`partial_fit`
        calls, a one-shot :meth:`fit_items` / :meth:`fit_counts`, or
        :meth:`merge_from`) and marks the estimates dirty; the post-processed
        estimates are rebuilt lazily on the next read (see
        :meth:`materialize`), so a stream of small batches pays pure
        accumulation cost per batch.  The final state follows the same
        distribution as a one-shot fit of the concatenated population.
        Every user must still appear in exactly one batch for the privacy
        accounting to hold.

        Pass a shared :class:`numpy.random.Generator` (or distinct seeds)
        across batches: repeating the same integer seed replays the same
        randomness for every batch, so the noise adds coherently instead of
        cancelling.

        Raises :class:`~repro.exceptions.ConfigurationError` for mechanisms
        without accumulator support.
        """
        items = self._validate_items(items)
        self._check_mode(mode)
        rng = as_generator(random_state)
        self._partial_collect(
            items=items, counts=self._counts_for(items, mode), rng=rng, mode=mode
        )
        self._mark_dirty()
        self._n_users = (self._n_users or 0) + int(items.shape[0])
        return self

    def _counts_for(self, items: np.ndarray, mode: str) -> Optional[np.ndarray]:
        """Per-item counts of a batch, or ``None`` when the mode ignores them.

        Only the ``aggregate`` simulation consumes per-item counts; the
        ``per_user`` protocol paths work from the item array directly, so
        skipping the ``O(D)`` bincount keeps tiny streaming batches at
        ``O(batch)`` validation cost.
        """
        if mode != "aggregate":
            return None
        return np.bincount(items, minlength=self._domain_size)

    def merge_from(self, other: "RangeQueryMechanism") -> "RangeQueryMechanism":
        """Fold another (identically configured) instance's state into this one.

        The other mechanism must be fitted; this one may be fresh or already
        hold accumulated state.  After the merge, this mechanism answers
        queries as if it had collected both populations itself — the shard
        reduction step of distributed collection.

        Only the sufficient statistics are touched: the queryable estimates
        are rebuilt lazily on the next read, so folding ``K`` shards costs
        ``K`` statistic merges plus one reconstruction, no matter how the
        merges interleave with other ingestion.  (Earlier versions exposed a
        ``refresh=`` flag for exactly this batching — and with it a
        stale-answer footgun when a caller forgot the final refreshing
        merge; lazy materialization made the flag redundant and it has been
        removed.)

        Raises :class:`~repro.exceptions.ConfigurationError` when the
        configurations differ or the mechanism has no accumulator support,
        and :class:`~repro.exceptions.NotFittedError` when ``other`` has not
        collected anything.
        """
        if type(other) is not type(self):
            raise ConfigurationError(
                f"cannot merge a {type(other).__name__} into a {type(self).__name__}"
            )
        if self._merge_signature() != other._merge_signature():
            raise ConfigurationError(
                "cannot merge differently configured mechanisms: "
                f"{self._merge_signature()} != {other._merge_signature()}"
            )
        if not other.is_fitted:
            raise NotFittedError("merge_from requires a fitted source mechanism")
        self._merge_state(other)
        self._mark_dirty()
        self._n_users = (self._n_users or 0) + int(other._n_users)
        return self

    def fit_counts(
        self,
        counts: np.ndarray,
        random_state: RandomState = None,
        mode: str = "aggregate",
    ) -> "RangeQueryMechanism":
        """Collect the population given exact per-item counts.

        ``mode="per_user"`` is also accepted: the counts are expanded into an
        explicit item vector first (costs ``O(N)`` memory).
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 1 or counts.shape[0] != self._domain_size:
            raise InvalidDomainError(
                f"expected {self._domain_size} per-item counts, got shape {counts.shape}"
            )
        if np.any(counts < 0):
            raise InvalidQueryError("per-item counts must be non-negative")
        self._check_mode(mode)
        rng = as_generator(random_state)
        items = None
        if mode == "per_user":
            items = np.repeat(np.arange(self._domain_size, dtype=np.int64), counts)
        self._collect(items=items, counts=counts, rng=rng, mode=mode)
        self._n_users = int(counts.sum())
        return self

    @abc.abstractmethod
    def _collect(
        self,
        items: Optional[np.ndarray],
        counts: Optional[np.ndarray],
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        """Store the mechanism's aggregate state for the given population.

        ``items`` is guaranteed to be present when ``mode == "per_user"``;
        ``counts`` is guaranteed to be present when ``mode == "aggregate"``
        (and always from :meth:`fit_counts`) — the per-user protocol paths
        never consume counts, so the item-fit entry points skip building
        them.  One-shot semantics: any previously accumulated state is
        discarded.  Accumulator-backed implementations only touch
        sufficient statistics and call :meth:`_mark_dirty`; implementations
        that build their estimates eagerly (no :meth:`_refresh_estimates`)
        simply never mark dirty.
        """

    def _partial_collect(
        self,
        items: np.ndarray,
        counts: Optional[np.ndarray],
        rng: np.random.Generator,
        mode: str,
    ) -> None:
        """Accumulate one batch on top of the existing state (streaming hook).

        Mechanisms backed by oracle accumulators override this; the default
        refuses so that one-shot-only mechanisms keep a precise error.
        """
        raise ConfigurationError(
            f"{self.name} does not support incremental collection"
        )

    def _merge_state(self, other: "RangeQueryMechanism") -> None:
        """Fold ``other``'s accumulated statistics into this mechanism's.

        Called by :meth:`merge_from` after the configuration check; ``self``
        may be unfitted (treat as empty).  Must only update the sufficient
        statistics — :meth:`merge_from` marks the estimates dirty and
        :meth:`materialize` rebuilds them on the next read.  Default refuses.
        """
        raise ConfigurationError(f"{self.name} does not support state merging")

    def _refresh_estimates(self) -> None:
        """Rebuild the queryable estimates from the accumulated statistics.

        Implemented by every mechanism that implements :meth:`_merge_state`.
        Must be a pure function of the sufficient statistics (no randomness,
        no statistic mutation) — that determinism is what makes lazy and
        eager materialization bit-identical.  Only ever called through
        :meth:`materialize`, which handles the generation bookkeeping.
        """
        raise ConfigurationError(f"{self.name} does not support state merging")

    def _merge_signature(self) -> tuple:
        """Configuration fingerprint deciding :meth:`merge_from` compatibility.

        Subclasses extend the tuple with every parameter that changes the
        interpretation of their sufficient statistics (oracle configuration,
        tree geometry, ...).
        """
        return (type(self).__name__, float(self.epsilon), int(self._domain_size))

    # ------------------------------------------------------------------
    # Persistence (see repro.persist)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Nested ``{str: array-or-dict}`` snapshot of the collected state.

        ``n_users`` is encoded as ``-1`` when the mechanism is unfitted so
        that empty shards can be checkpointed too.  Implemented by every
        accumulator-backed mechanism; the default refuses.
        """
        raise ConfigurationError(f"{self.name} does not support state snapshots")

    def load_state_dict(self, state: dict) -> "RangeQueryMechanism":
        """Replace the collected state with a :meth:`state_dict`.

        The mechanism must be configured identically to the one that
        produced the state (``load`` callers verify the merge signature
        first; shape checks here catch the rest).  Only the sufficient
        statistics are restored — the queryable estimates are rebuilt
        lazily on the first read and equal the snapshotted mechanism's
        bit-for-bit (a snapshot taken dirty and one taken materialized hold
        the same statistics, so round-trips are bit-exact either way).
        """
        raise ConfigurationError(f"{self.name} does not support state snapshots")

    def _pack_n_users(self) -> np.ndarray:
        return np.asarray(-1 if self._n_users is None else int(self._n_users), dtype=np.int64)

    def _unpack_n_users(self, state: dict) -> Optional[int]:
        if "n_users" not in state:
            raise ConfigurationError("mechanism state is missing 'n_users'")
        n_users = int(np.asarray(state["n_users"]))
        if n_users < -1:
            raise ConfigurationError(f"invalid snapshotted n_users {n_users}")
        return None if n_users == -1 else n_users

    def _pack_level_state(self, accumulators, level_user_counts) -> dict:
        """Shared ``state_dict`` body of per-level mechanisms (HH, Haar)."""
        state = {"n_users": self._pack_n_users()}
        if accumulators is not None:
            state["level_user_counts"] = level_user_counts.copy()
            state["accumulators"] = {
                str(level): accumulator.state_dict()
                for level, accumulator in accumulators.items()
            }
        return state

    def _unpack_level_state(self, state: dict, levels, accumulator_for) -> tuple:
        """Shared ``load_state_dict`` validation of per-level mechanisms.

        Returns ``(n_users, accumulators, level_user_counts)`` with the last
        two ``None`` for an unfitted snapshot; ``accumulator_for(level)``
        builds a fresh accumulator for one level.
        """
        n_users = self._unpack_n_users(state)
        if "accumulators" not in state:
            return n_users, None, None
        stored = state["accumulators"]
        levels = list(levels)
        expected = {str(level) for level in levels}
        if set(stored) != expected:
            raise ConfigurationError(
                f"snapshot holds levels {sorted(stored)}, this mechanism has "
                f"{sorted(expected)}"
            )
        if "level_user_counts" not in state:
            raise ConfigurationError(
                "snapshot with accumulators is missing level_user_counts"
            )
        counts = np.asarray(state["level_user_counts"], dtype=np.int64)
        if counts.shape != (len(levels),):
            raise ConfigurationError(
                "snapshot level_user_counts do not match the level count"
            )
        accumulators = {}
        for level in levels:
            accumulator = accumulator_for(level)
            accumulator.load_state_dict(stored[str(level)])
            accumulators[level] = accumulator
        return n_users, accumulators, counts.copy()

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer_range(self, start: int, end: int) -> float:
        """Estimated fraction of users whose item lies in ``[start, end]``."""
        self._require_fitted()
        start, end = self._check_range(start, end)
        key = ("range", start, end)
        cached = self._answer_cache.get(self._ingest_generation, key)
        if cached is not MISS:
            return cached
        value = float(self._answer_range(start, end))
        self._answer_cache.put(self._ingest_generation, key, value)
        return value

    def answer_ranges(self, queries: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`answer_range` over an ``(n, 2)`` query array."""
        self._require_fitted()
        queries = np.asarray(queries, dtype=np.int64)
        if queries.ndim != 2 or queries.shape[1] != 2:
            raise InvalidQueryError("queries must be an (n, 2) array")
        key = ("ranges", queries.shape[0], queries.tobytes())
        cached = self._answer_cache.get(self._ingest_generation, key)
        if cached is not MISS:
            return cached
        value = np.array(
            [self._answer_range(*self._check_range(int(a), int(b))) for a, b in queries]
        )
        self._answer_cache.put(self._ingest_generation, key, value)
        return value

    def answer_workload(self, workload: RangeWorkload) -> np.ndarray:
        """Answer every query of a :class:`~repro.data.workloads.RangeWorkload`."""
        if workload.domain_size != self._domain_size:
            raise InvalidQueryError(
                "workload domain does not match the mechanism domain"
            )
        return self.answer_ranges(workload.queries)

    def answer_prefix(self, end: int) -> float:
        """Estimated fraction of users with item ``<= end`` (prefix query)."""
        return self.answer_range(0, end)

    def estimate_frequencies(self) -> np.ndarray:
        """Estimated per-item fractions (point queries for every item).

        The default implementation issues one range query per item;
        subclasses override it with their natural reconstruction.
        """
        self._require_fitted()
        return np.array([self._answer_range(i, i) for i in range(self._domain_size)])

    def estimate_cdf(self) -> np.ndarray:
        """Estimated cumulative distribution ``F(b) = R[0, b]`` for every b."""
        self._require_fitted()
        frequencies = self.estimate_frequencies()
        return np.cumsum(frequencies)

    def quantile(self, phi: float) -> int:
        """Estimate the ``phi``-quantile from the monotone CDF (Section 4.7).

        The returned item ``j`` is the smallest item whose estimated
        cumulative mass reaches ``phi``.  The raw noisy prefix estimates can
        be locally decreasing, which would make a naive binary search
        disagree with the batched CDF path for the same target; both paths
        therefore share the monotone-CDF reconstruction of
        :func:`repro.core.quantiles.estimate_quantiles` and always agree.
        """
        return self.quantiles((phi,))[0]

    def quantiles(self, phis: Sequence[float]) -> List[int]:
        """Estimate several quantiles (e.g. the deciles of Section 5.5).

        All quantiles are answered from a single monotone CDF
        reconstruction, so a batch costs no more than one quantile.
        """
        from repro.core.quantiles import estimate_quantiles

        self._require_fitted()
        try:
            key = ("quantiles", tuple(float(phi) for phi in phis))
        except (TypeError, ValueError):
            # Unkeyable targets bypass the cache; estimate_quantiles owns
            # the precise validation error.
            return estimate_quantiles(self, phis)
        cached = self._answer_cache.get(self._ingest_generation, key)
        if cached is not MISS:
            return list(cached)
        value = estimate_quantiles(self, phis)
        self._answer_cache.put(self._ingest_generation, key, tuple(value))
        return value

    @abc.abstractmethod
    def _answer_range(self, start: int, end: int) -> float:
        """Answer a single validated range query (bounds already checked)."""

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        """Gate of every read surface: fitted check + lazy materialization."""
        if not self.is_fitted:
            raise NotFittedError(
                f"{self.name} has not collected any reports yet; call fit_items/fit_counts"
            )
        self.materialize()

    def _validate_items(self, items: np.ndarray) -> np.ndarray:
        """Validate a per-user item array and return it as ``int64``.

        Non-integer dtypes are rejected outright: silently truncating a
        float array via ``astype`` would map item 2.9 to 2 without any
        error, corrupting the collected distribution.
        """
        items = np.asarray(items)
        if items.ndim != 1:
            raise InvalidQueryError("items must be a one-dimensional array")
        if (
            items.size
            and not np.issubdtype(items.dtype, np.integer)
            and items.dtype != np.bool_  # bools cast to 0/1 without loss
        ):
            raise InvalidQueryError(
                f"items must have an integer dtype, got {items.dtype}; "
                "round or cast explicitly before collection"
            )
        if items.size and (items.min() < 0 or items.max() >= self._domain_size):
            raise InvalidQueryError(f"items must be in [0, {self._domain_size})")
        # copy=False: already-int64 batches pass through unchanged (the
        # collection paths never mutate them), sparing a copy per batch on
        # the streaming hot path.
        return items.astype(np.int64, copy=False)

    def _check_range(self, start: int, end: int) -> tuple:
        if not 0 <= start <= end < self._domain_size:
            raise InvalidQueryError(
                f"invalid range [{start}, {end}] for domain of size {self._domain_size}"
            )
        return int(start), int(end)

    @staticmethod
    def _check_mode(mode: str) -> None:
        if mode not in SIMULATION_MODES:
            raise ConfigurationError(
                f"mode must be one of {SIMULATION_MODES}, got {mode!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(epsilon={self.epsilon:.4g}, "
            f"domain_size={self.domain_size}, fitted={self.is_fitted})"
        )
