"""Unit tests for the HaarHRR wavelet mechanism."""

import numpy as np
import pytest

from repro.core.wavelet import HaarWaveletMechanism
from repro.exceptions import ConfigurationError, InvalidQueryError, NotFittedError
from repro.transforms.haar import haar_forward


class TestConfiguration:
    def test_geometry(self):
        mechanism = HaarWaveletMechanism(1.0, 256)
        assert mechanism.padded_size == 256
        assert mechanism.height == 8

    def test_padding(self):
        mechanism = HaarWaveletMechanism(1.0, 100)
        assert mechanism.padded_size == 128
        assert mechanism.domain_size == 100

    def test_default_name(self):
        assert HaarWaveletMechanism(1.0, 64).name == "HaarHRR"

    def test_level_probabilities_default_uniform(self):
        mechanism = HaarWaveletMechanism(1.0, 64)
        np.testing.assert_allclose(mechanism.level_probabilities, np.full(6, 1 / 6))

    def test_invalid_level_probabilities(self):
        with pytest.raises(ConfigurationError):
            HaarWaveletMechanism(1.0, 64, level_probabilities=[1.0, 2.0])


class TestCollection:
    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            HaarWaveletMechanism(1.0, 64).answer_range(0, 1)
        with pytest.raises(NotFittedError):
            HaarWaveletMechanism(1.0, 64).coefficients()

    def test_scaling_coefficient_is_hardcoded(self, small_counts):
        mechanism = HaarWaveletMechanism(1.0, 64).fit_counts(small_counts, random_state=0)
        assert mechanism.coefficients()[0] == pytest.approx(1.0 / 8.0)

    def test_coefficients_close_to_truth(self, medium_counts):
        domain = medium_counts.shape[0]
        mechanism = HaarWaveletMechanism(1.1, domain).fit_counts(medium_counts, random_state=1)
        true_coefficients = haar_forward(medium_counts / medium_counts.sum())
        estimated = mechanism.coefficients()
        # The low-resolution (high height) coefficients should be accurate.
        np.testing.assert_allclose(estimated[:8], true_coefficients[:8], atol=0.02)

    def test_level_user_counts_partition_population(self, small_counts):
        mechanism = HaarWaveletMechanism(1.0, 64).fit_counts(small_counts, random_state=0)
        assert mechanism.level_user_counts.sum() == small_counts.sum()

    def test_per_user_mode(self, rng):
        items = rng.integers(0, 64, size=5000)
        mechanism = HaarWaveletMechanism(1.5, 64)
        mechanism.fit_items(items, random_state=rng, mode="per_user")
        assert mechanism.is_fitted


class TestAnswers:
    def test_answers_close_to_truth(self, medium_counts):
        domain = medium_counts.shape[0]
        total = medium_counts.sum()
        mechanism = HaarWaveletMechanism(1.1, domain).fit_counts(medium_counts, random_state=2)
        for start, end in [(0, domain - 1), (10, 100), (200, 250)]:
            truth = medium_counts[start : end + 1].sum() / total
            assert mechanism.answer_range(start, end) == pytest.approx(truth, abs=0.05)

    def test_prefix_and_coefficient_paths_agree(self, small_counts):
        mechanism = HaarWaveletMechanism(1.0, 64).fit_counts(small_counts, random_state=0)
        for start, end in [(0, 63), (5, 40), (17, 17), (32, 62)]:
            assert mechanism.answer_range(start, end) == pytest.approx(
                mechanism.answer_range_via_coefficients(start, end), abs=1e-9
            )

    def test_answers_are_additive_by_design(self, small_counts):
        # Orthonormality gives consistency "for free" (Section 4.6).
        mechanism = HaarWaveletMechanism(1.0, 64).fit_counts(small_counts, random_state=0)
        whole = mechanism.answer_range(3, 60)
        split = mechanism.answer_range(3, 30) + mechanism.answer_range(31, 60)
        assert whole == pytest.approx(split, abs=1e-9)

    def test_estimate_cdf_reuses_prefix_bit_exactly(self, small_counts):
        """The CDF is the materialized prefix array, not a re-derivation."""
        mechanism = HaarWaveletMechanism(1.0, 64).fit_counts(small_counts, random_state=0)
        np.testing.assert_array_equal(
            mechanism.estimate_cdf(), np.cumsum(mechanism.estimate_frequencies())
        )
        assert mechanism.estimate_cdf().shape == (64,)

    def test_answer_ranges_vectorised_matches_scalar(self, small_counts):
        mechanism = HaarWaveletMechanism(1.0, 64).fit_counts(small_counts, random_state=0)
        queries = np.array([[0, 5], [3, 3], [10, 63]])
        np.testing.assert_allclose(
            mechanism.answer_ranges(queries),
            [mechanism.answer_range(a, b) for a, b in queries],
        )

    def test_non_power_domain_answers(self, rng):
        counts = rng.multinomial(50_000, np.full(100, 0.01))
        mechanism = HaarWaveletMechanism(1.5, 100).fit_counts(counts, random_state=0)
        truth = counts[20:81].sum() / counts.sum()
        assert mechanism.answer_range(20, 80) == pytest.approx(truth, abs=0.06)

    def test_invalid_query(self, small_counts):
        mechanism = HaarWaveletMechanism(1.0, 64).fit_counts(small_counts, random_state=0)
        with pytest.raises(InvalidQueryError):
            mechanism.answer_range(10, 64)
        with pytest.raises(InvalidQueryError):
            mechanism.answer_range_via_coefficients(10, 64)

    def test_variance_bound_accessor(self, small_counts):
        mechanism = HaarWaveletMechanism(1.0, 64).fit_counts(small_counts, random_state=0)
        assert mechanism.per_query_variance_bound() > 0
