"""Unit tests for the Hadamard Randomized Response oracle."""

import numpy as np
import pytest

from repro.exceptions import InvalidQueryError
from repro.frequency_oracles.hadamard import HadamardRandomizedResponse


class TestConfiguration:
    def test_keep_probability(self):
        oracle = HadamardRandomizedResponse(epsilon=np.log(3.0), domain_size=16)
        assert oracle.keep_probability == pytest.approx(0.75)
        assert oracle.unbiasing_factor == pytest.approx(0.5)

    def test_padding_for_non_power_of_two(self):
        oracle = HadamardRandomizedResponse(epsilon=1.0, domain_size=100)
        assert oracle.padded_size == 128
        assert oracle.domain_size == 100

    def test_variance_formula(self):
        epsilon = 1.1
        oracle = HadamardRandomizedResponse(epsilon=epsilon, domain_size=64)
        expected = 4 * np.exp(epsilon) / (1000 * (np.exp(epsilon) - 1) ** 2)
        assert oracle.theoretical_variance(1000) == pytest.approx(expected)


class TestEncoding:
    def test_report_fields(self, rng):
        oracle = HadamardRandomizedResponse(epsilon=1.0, domain_size=16)
        report = oracle.encode(3, rng)
        assert 0 <= report["index"] < 16
        assert report["value"] in (-1, 1)

    def test_signed_encoding(self, rng):
        oracle = HadamardRandomizedResponse(epsilon=1.0, domain_size=16)
        report = oracle.encode(3, rng, sign=-1)
        assert report["value"] in (-1, 1)
        with pytest.raises(InvalidQueryError):
            oracle.encode(3, rng, sign=0)

    def test_batch_shapes(self, rng):
        oracle = HadamardRandomizedResponse(epsilon=1.0, domain_size=32)
        reports = oracle.encode_batch(rng.integers(0, 32, size=100), rng)
        assert reports.payload["indices"].shape == (100,)
        assert reports.payload["values"].shape == (100,)
        assert set(np.unique(reports.payload["values"])) <= {-1, 1}

    def test_batch_signs_validation(self, rng):
        oracle = HadamardRandomizedResponse(epsilon=1.0, domain_size=8)
        values = np.zeros(4, dtype=int)
        with pytest.raises(InvalidQueryError):
            oracle.encode_batch(values, rng, signs=np.array([1, 1]))
        with pytest.raises(InvalidQueryError):
            oracle.encode_batch(values, rng, signs=np.array([1, 0, 1, 1]))

    def test_coefficient_flip_rate(self, rng):
        # With item 0 every Hadamard coefficient is +1, so the fraction of
        # -1 reports equals the flip probability 1 - p.
        oracle = HadamardRandomizedResponse(epsilon=np.log(3.0), domain_size=8)
        reports = oracle.encode_batch(np.zeros(20_000, dtype=int), rng)
        flip_rate = (reports.payload["values"] == -1).mean()
        assert flip_rate == pytest.approx(0.25, abs=0.02)


class TestAggregation:
    def test_unbiasedness_on_average(self, rng):
        domain = 8
        oracle = HadamardRandomizedResponse(epsilon=2.0, domain_size=domain)
        true = np.array([0.35, 0.25, 0.15, 0.1, 0.05, 0.05, 0.03, 0.02])
        counts = (true * 40_000).astype(int)
        estimates = np.mean(
            [oracle.simulate_aggregate(counts, rng) for _ in range(15)], axis=0
        )
        np.testing.assert_allclose(estimates, counts / counts.sum(), atol=0.02)

    def test_signed_population_estimates(self, rng):
        # Half the users hold +e_1 and half hold -e_1: the signed mean
        # should be close to zero at position 1 and zero elsewhere.
        domain = 8
        oracle = HadamardRandomizedResponse(epsilon=2.0, domain_size=domain)
        values = np.ones(40_000, dtype=int)
        signs = np.where(np.arange(40_000) % 2 == 0, 1, -1)
        reports = oracle.encode_batch(values, rng, signs=signs)
        estimates = oracle.aggregate(reports)
        np.testing.assert_allclose(estimates, np.zeros(domain), atol=0.05)

    def test_padded_domain_estimates_have_original_length(self, rng):
        oracle = HadamardRandomizedResponse(epsilon=1.0, domain_size=10)
        counts = np.full(10, 1000)
        estimates = oracle.simulate_aggregate(counts, rng)
        assert estimates.shape == (10,)

    def test_empty_population(self):
        from repro.frequency_oracles.base import OracleReports

        oracle = HadamardRandomizedResponse(epsilon=1.0, domain_size=8)
        reports = OracleReports(
            payload={"indices": np.array([], dtype=int), "values": np.array([], dtype=int)},
            n_users=0,
        )
        np.testing.assert_array_equal(oracle.aggregate(reports), np.zeros(8))

    def test_empirical_variance_matches_theory(self, rng):
        oracle = HadamardRandomizedResponse(epsilon=1.1, domain_size=8)
        counts = np.array([4000, 2000, 1000, 800, 700, 600, 500, 400])
        n_users = int(counts.sum())
        samples = np.array([oracle.simulate_aggregate(counts, rng)[0] for _ in range(300)])
        assert samples.var() == pytest.approx(oracle.theoretical_variance(n_users), rel=0.35)
