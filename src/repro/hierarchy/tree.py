"""Complete B-ary tree over an item domain.

The hierarchical histogram mechanisms (Section 4.3/4.4 of the paper) arrange
the domain ``[0, D)`` under a complete B-ary tree.  Level ``l`` (for
``l = 1 .. h``) contains ``B^l`` nodes and every node at level ``l`` covers a
B-adic block of ``B^{h-l}`` consecutive items; level ``h`` is the leaf level
with one node per item, and the (implicit) level ``0`` root covers the whole
domain and always has fractional weight exactly ``1``.

If ``D`` is not a power of ``B`` the tree is laid over the *padded* domain of
size ``B^h`` with ``h = ceil(log_B D)``; items beyond ``D - 1`` simply never
receive any weight.  This matches how the paper's experiments pick ``D`` and
``B`` so that ``log_B D`` is an integer, while letting the library accept
arbitrary domain sizes.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, InvalidDomainError, InvalidQueryError

__all__ = ["DomainTree"]


class DomainTree:
    """Geometry of a complete B-ary tree over a discrete domain.

    Parameters
    ----------
    domain_size:
        Number of items ``D`` in the original domain; must be positive.
    branching:
        Fan-out ``B >= 2`` of the tree.

    Notes
    -----
    The object is immutable and holds no estimates — it is pure geometry.
    Mechanisms combine it with per-level estimate arrays.
    """

    def __init__(self, domain_size: int, branching: int) -> None:
        if not isinstance(domain_size, (int, np.integer)) or domain_size < 1:
            raise InvalidDomainError(
                f"domain size must be a positive integer, got {domain_size!r}"
            )
        if not isinstance(branching, (int, np.integer)) or branching < 2:
            raise ConfigurationError(
                f"branching factor must be an integer >= 2, got {branching!r}"
            )
        self._domain_size = int(domain_size)
        self._branching = int(branching)
        self._height = max(1, int(math.ceil(round(math.log(self._domain_size, self._branching), 10))))
        # Guard against floating point log errors: adjust until B^h >= D.
        while self._branching**self._height < self._domain_size:
            self._height += 1
        while (
            self._height > 1
            and self._branching ** (self._height - 1) >= self._domain_size
        ):
            self._height -= 1
        self._padded_size = self._branching**self._height

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def domain_size(self) -> int:
        """Original (un-padded) number of items ``D``."""
        return self._domain_size

    @property
    def branching(self) -> int:
        """Fan-out ``B`` of the tree."""
        return self._branching

    @property
    def height(self) -> int:
        """Number of estimated levels ``h`` (leaves are level ``h``)."""
        return self._height

    @property
    def padded_size(self) -> int:
        """``B^h``, the leaf count of the complete tree."""
        return self._padded_size

    @property
    def levels(self) -> range:
        """The estimated levels ``1 .. h`` (the level-0 root is implicit)."""
        return range(1, self._height + 1)

    def nodes_at_level(self, level: int) -> int:
        """Number of nodes at ``level`` (``B^level``)."""
        self._check_level(level)
        return self._branching**level

    def block_size(self, level: int) -> int:
        """Number of items covered by one node at ``level`` (``B^{h-level}``)."""
        self._check_level(level)
        return self._branching ** (self._height - level)

    def total_nodes(self) -> int:
        """Total number of estimated nodes across levels ``1 .. h``."""
        return sum(self.nodes_at_level(level) for level in self.levels)

    # ------------------------------------------------------------------
    # Item <-> node mappings
    # ------------------------------------------------------------------
    def node_of_item(self, level: int, item: int) -> int:
        """Index of the level-``level`` node containing ``item``."""
        self._check_item(item)
        return item // self.block_size(level)

    def path_of_item(self, item: int) -> List[Tuple[int, int]]:
        """The leaf-to-root path of ``item`` as ``(level, node_index)`` pairs.

        This is the "local view" each user materialises before perturbation
        (Figure 2(b) of the paper): a weight of one on exactly one node per
        level.
        """
        self._check_item(item)
        return [(level, self.node_of_item(level, item)) for level in self.levels]

    def nodes_of_items(self, level: int, items: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`node_of_item` for an array of items."""
        items = np.asarray(items)
        if items.size and (items.min() < 0 or items.max() >= self._domain_size):
            raise InvalidQueryError("items outside the domain")
        return items // self.block_size(level)

    def node_range(self, level: int, index: int) -> Tuple[int, int]:
        """Inclusive item range ``[start, end]`` covered by a node.

        The range is clipped to the original domain; a node entirely inside
        the padding returns an empty range signalled by ``start > end``.
        """
        self._check_level(level)
        if not 0 <= index < self.nodes_at_level(level):
            raise InvalidQueryError(
                f"node index {index!r} out of range at level {level}"
            )
        size = self.block_size(level)
        start = index * size
        end = min(start + size - 1, self._domain_size - 1)
        return start, end

    def children(self, level: int, index: int) -> range:
        """Indices of the children (at ``level + 1``) of node ``(level, index)``."""
        self._check_level(level)
        if level == self._height:
            raise InvalidQueryError("leaf nodes have no children")
        return range(index * self._branching, (index + 1) * self._branching)

    def parent(self, level: int, index: int) -> Tuple[int, int]:
        """The ``(level - 1, index)`` parent of a node below level 1."""
        self._check_level(level)
        if level == 1:
            raise InvalidQueryError("level-1 nodes are children of the implicit root")
        return level - 1, index // self._branching

    # ------------------------------------------------------------------
    # Aggregation helpers
    # ------------------------------------------------------------------
    def level_histogram(self, level: int, items: np.ndarray) -> np.ndarray:
        """Exact counts of ``items`` per node at ``level`` (no privacy).

        Used to build the ground-truth tree and by the aggregate-mode
        simulators that need the true per-node counts to sample the noisy
        aggregator view.
        """
        nodes = self.nodes_of_items(level, np.asarray(items))
        return np.bincount(nodes, minlength=self.nodes_at_level(level)).astype(np.int64)

    def level_histogram_from_counts(self, level: int, counts: np.ndarray) -> np.ndarray:
        """Per-node counts at ``level`` given per-item counts.

        ``counts`` has length ``domain_size``; items are grouped into
        consecutive blocks of :meth:`block_size` items.
        """
        counts = np.asarray(counts)
        if counts.shape[0] != self._domain_size:
            raise InvalidDomainError(
                f"expected {self._domain_size} per-item counts, got {counts.shape[0]}"
            )
        padded = np.zeros(self._padded_size, dtype=np.float64)
        padded[: self._domain_size] = counts
        return padded.reshape(self.nodes_at_level(level), self.block_size(level)).sum(axis=1)

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_level(self, level: int) -> None:
        if not isinstance(level, (int, np.integer)) or not 1 <= level <= self._height:
            raise InvalidQueryError(
                f"level must be in [1, {self._height}], got {level!r}"
            )

    def _check_item(self, item: int) -> None:
        if not isinstance(item, (int, np.integer)) or not 0 <= item < self._domain_size:
            raise InvalidQueryError(
                f"item must be in [0, {self._domain_size}), got {item!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DomainTree(domain_size={self._domain_size}, branching={self._branching}, "
            f"height={self._height})"
        )
