"""Fan report batches across simulated shards and reduce them.

:class:`ShardedCollector` models the ingestion tier of a deployed LDP
pipeline: ``K`` shards each own one mechanism instance and an independent
random stream, report batches are routed to shards (round-robin by default,
by a pluggable :class:`~repro.streaming.routing.ShardRouter` policy, or
explicitly by the caller), and a reduce step merges the shards' sufficient
statistics into one queryable mechanism.  Because accumulator merging is
exact (sums of sums), the reduced estimates follow the same distribution as
a one-shot fit of the whole population — shard count and routing policy are
pure throughput knobs, invisible to accuracy.

Durability: :meth:`checkpoint` captures the complete collector state —
every shard's sufficient statistic, every shard's random-generator state,
the router's position, and the batch counters — in one
:mod:`repro.persist` container.  :meth:`restore` rebuilds a collector that
continues *bit-for-bit* where the checkpoint left off: feeding it the
remaining batches produces exactly the reduced estimates an uninterrupted
run would have produced, which is the crash-recovery contract the tests
verify.

Determinism contract (for a fixed ``random_state``): batches submitted with
an explicit ``shard=`` index do not consult or advance the router, so
explicit and policy-routed submissions interleave deterministically — the
sequence of policy decisions depends only on the ordered sub-sequence of
policy-routed batches, and each shard's randomness depends only on the
ordered batches that landed on it.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.core.base import RangeQueryMechanism
from repro.core.session import LdpRangeQuerySession
from repro.exceptions import ConfigurationError, NotFittedError
from repro.persist.format import (
    flatten_arrays,
    nest_arrays,
    pack_snapshot,
    unpack_snapshot,
    write_atomic,
)
from repro.persist.snapshots import (
    mechanism_config,
    mechanism_from_config,
    resolve_mechanism,
)
from repro.privacy.randomness import RandomState, as_seed_sequence
from repro.streaming.routing import (
    RoutingKey,
    ShardRouter,
    is_registered_router,
    make_router,
)

__all__ = ["ShardedCollector"]


def _generator_state(generator: np.random.Generator) -> Dict[str, Any]:
    """The JSON-serialisable state of a generator's bit generator."""
    return generator.bit_generator.state


def _generator_from_state(state: Dict[str, Any]) -> np.random.Generator:
    """Rebuild a generator whose stream continues from a saved state."""
    name = state.get("bit_generator", "PCG64")
    try:
        bit_generator_class = getattr(np.random, name)
    except AttributeError:
        raise ConfigurationError(f"unknown bit generator {name!r} in checkpoint")
    bit_generator = bit_generator_class()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


class ShardedCollector:
    """Collect an LDP population across ``K`` independent shards.

    Parameters
    ----------
    mechanism:
        Mechanism specification string (see
        :func:`repro.core.factory.mechanism_from_spec`) or a prebuilt
        :class:`~repro.core.base.RangeQueryMechanism` used as a
        configuration template; every shard gets its own identically
        configured instance either way.
    epsilon, domain_size:
        Standard mechanism parameters, shared by all shards.  Optional when
        ``mechanism`` is a prebuilt instance (taken from it); if given they
        must agree with the instance.
    n_shards:
        Number of simulated shards ``K >= 1``.
    random_state:
        Seed for the whole collection; each shard derives an independent
        stream from it, so results are reproducible for a fixed seed,
        routing and batch order.
    mode:
        Default simulation mode for submitted batches (``"aggregate"`` or
        ``"per_user"``), overridable per batch.
    router:
        Routing policy for batches submitted without an explicit shard:
        ``None``/"round-robin" (default), "hash", "least-loaded", or a
        :class:`~repro.streaming.routing.ShardRouter` instance.
    mechanism_kwargs:
        Extra keyword arguments forwarded to every shard's constructor
        (spec-built collectors only).
    """

    def __init__(
        self,
        mechanism: Union[str, RangeQueryMechanism],
        epsilon: Optional[float] = None,
        domain_size: Optional[int] = None,
        n_shards: int = 4,
        random_state: RandomState = None,
        mode: str = "aggregate",
        router: Union[None, str, ShardRouter] = None,
        **mechanism_kwargs,
    ) -> None:
        if not isinstance(n_shards, (int, np.integer)) or n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be a positive integer, got {n_shards!r}"
            )
        prototype = resolve_mechanism(
            mechanism,
            epsilon=epsilon,
            domain_size=domain_size,
            mechanism_kwargs=mechanism_kwargs,
        )
        self._spec = (
            mechanism.name
            if isinstance(mechanism, RangeQueryMechanism)
            else str(mechanism)
        )
        self._config = mechanism_config(prototype)
        self._epsilon = float(prototype.epsilon)
        self._domain_size = int(prototype.domain_size)
        self._mode = str(mode)
        self._router = make_router(router).bind(int(n_shards))
        self._shards: List[RangeQueryMechanism] = [
            self._make_mechanism() for _ in range(int(n_shards))
        ]
        # The parent seed sequence is retained (not just its first K children)
        # so the shard set can *grow* later: numpy's SeedSequence tracks how
        # many children it has spawned, making incremental spawns identical
        # to the tail of one up-front spawn — the property the autoscaler's
        # bit-identity contract rests on.
        self._seed_sequence = as_seed_sequence(random_state)
        self._generators = [
            np.random.default_rng(child)
            for child in self._seed_sequence.spawn(int(n_shards))
        ]
        self._streams_spawned = int(n_shards)
        self._stream_ids = list(range(int(n_shards)))
        self._n_batches = 0
        # Guards the batch counter: the ingestion service may run different
        # shards' submissions on different threads (distinct shards never
        # share mechanism or generator state, so only the counter is shared).
        self._counter_lock = threading.Lock()

    def _make_mechanism(self) -> RangeQueryMechanism:
        return mechanism_from_config(self._config)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of shards ``K``."""
        return len(self._shards)

    @property
    def shards(self) -> List[RangeQueryMechanism]:
        """The per-shard mechanism instances (mutated by :meth:`submit`)."""
        return list(self._shards)

    @property
    def router(self) -> ShardRouter:
        """The routing policy deciding un-pinned submissions."""
        return self._router

    @property
    def epsilon(self) -> float:
        """Privacy budget shared by every shard (the served spec's epsilon)."""
        return self._epsilon

    @property
    def domain_size(self) -> int:
        """Domain size shared by every shard."""
        return self._domain_size

    @property
    def spec(self) -> str:
        """The mechanism specification string the shards were built from."""
        return self._spec

    @property
    def stream_ids(self) -> List[int]:
        """Stable random-stream id of each current shard index.

        Stream ``s`` is spawn child ``s`` of the collector's seed, for the
        life of the collector: growth appends fresh ids, shrink retires ids
        without reuse.  ``stream_ids[i]`` names the stream shard ``i``
        currently draws report noise from, which is what a static replay
        needs to pin batches onto the same streams.
        """
        return list(self._stream_ids)

    @property
    def streams_spawned(self) -> int:
        """Total random streams ever spawned (= n_shards of a static replay)."""
        return self._streams_spawned

    @property
    def n_users(self) -> int:
        """Total number of users accumulated across all shards."""
        return sum(shard.n_users or 0 for shard in self._shards)

    @property
    def n_batches(self) -> int:
        """Number of batches submitted so far."""
        return self._n_batches

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def validate_batch(self, items: np.ndarray, mode: Optional[str] = None) -> np.ndarray:
        """Validate a batch *before* any routing state is consumed.

        Routing decisions are irreversible (round-robin advances, load
        counters grow), so a batch that the mechanisms would reject must
        fail here first — otherwise a stream of bad batches would skew
        placement without contributing a single user.
        """
        items = self._shards[0]._validate_items(items)
        if mode is not None:
            RangeQueryMechanism._check_mode(mode)
        return items

    def route(self, n_items: int, key: RoutingKey = None) -> int:
        """Ask the router where a batch of ``n_items`` users would go.

        Does *not* submit anything, but does consume one routing decision
        (advancing round-robin, reserving least-loaded capacity), so the
        caller is expected to follow up with
        ``submit(items, shard=<returned index>)`` — this is the two-step
        dance the async ingestion service uses to route before queueing.
        """
        index = int(self._router.route(int(n_items), key=key))
        if not 0 <= index < len(self._shards):
            raise ConfigurationError(
                f"router returned shard {index} for {len(self._shards)} shards"
            )
        self._router.observe(index, int(n_items))
        return index

    def release_route(self, shard: int, n_items: int) -> None:
        """Hand back the load accounting of a routed-but-rejected batch.

        The non-blocking ingestion path (HTTP 503 backpressure) routes
        before it knows whether the target queue has room; when it does not,
        the batch never reaches a shard and load-aware policies must not
        keep counting it.  Positional decisions (a round-robin cursor
        advance) are *not* undone — they are placement history, not load.
        """
        self._router.release(int(shard), int(n_items))

    def submit(
        self,
        items: np.ndarray,
        shard: Optional[int] = None,
        mode: Optional[str] = None,
        key: RoutingKey = None,
    ) -> int:
        """Route one batch of users to a shard and accumulate it.

        Parameters
        ----------
        items:
            Integer item array, one entry per user of the batch.  Every user
            must appear in exactly one submitted batch overall — the usual
            one-report-per-user LDP accounting.
        shard:
            Target shard index; when omitted the router decides (round-robin
            unless configured otherwise).  Explicit indices bypass the
            router entirely and do not advance its state.
        mode:
            Override of the collector's default simulation mode.
        key:
            Optional routing key (user/tenant id) consulted by key-aware
            policies such as the hash router.

        Returns
        -------
        int
            The index of the shard that absorbed the batch.
        """
        if shard is None:
            # Policy routing is irreversible, so the batch must prove itself
            # valid before a routing decision is spent on it.  Explicit-shard
            # submissions touch no routing state and already hit partial_fit's
            # own validation, so they skip the extra scan (this is also the
            # path the async workers use after validating at submit time).
            items = self.validate_batch(items, mode=mode)
            index = self.route(items.shape[0], key=key)
        else:
            index = int(shard)
            if not 0 <= index < len(self._shards):
                raise ConfigurationError(
                    f"shard index {shard!r} out of range for {len(self._shards)} shards"
                )
        self._shards[index].partial_fit(
            items,
            random_state=self._generators[index],
            mode=self._mode if mode is None else mode,
        )
        with self._counter_lock:
            self._n_batches += 1
        return index

    def submit_points(
        self,
        points: np.ndarray,
        shard: Optional[int] = None,
        mode: Optional[str] = None,
        key: RoutingKey = None,
    ) -> int:
        """Route one batch of ``(n, d)`` coordinate points to a shard.

        Only available when the collector's mechanism has a grid surface
        (e.g. a ``grid2d`` or ``grid3d_4`` spec): the points are validated —
        column count against the mechanism's dimensionality, float
        coordinates rejected, bounds checked — and flattened to row-major
        items by the mechanism itself, then submitted like any other batch.
        """
        flatten = getattr(self._shards[0], "flatten_points", None)
        if flatten is None:
            raise ConfigurationError(
                f"mechanism {self._spec!r} has no grid point surface; "
                "submit flattened items with submit() instead"
            )
        return self.submit(flatten(points), shard=shard, mode=mode, key=key)

    def extend(self, batches: Iterable[np.ndarray]) -> "ShardedCollector":
        """Submit a stream of batches with policy routing."""
        for batch in batches:
            self.submit(batch)
        return self

    # ------------------------------------------------------------------
    # Scaling (grow/shrink the shard set between batches)
    # ------------------------------------------------------------------
    def add_shards(self, count: int = 1) -> List[int]:
        """Append ``count`` fresh shards and return their indices.

        Each new shard gets an identically configured mechanism and the
        *next* spawn children of the collector's seed sequence, so a run
        that grows from ``K`` to ``K'`` shards uses exactly the random
        streams a run constructed with ``K'`` shards would have used —
        growth never perturbs existing streams and never reuses a retired
        one.  Load-aware routers start the new shards at zero load, which is
        precisely what makes them attractive to the least-loaded policy.
        """
        if not isinstance(count, (int, np.integer)) or count < 1:
            raise ConfigurationError(
                f"count must be a positive integer, got {count!r}"
            )
        first = len(self._shards)
        for child in self._seed_sequence.spawn(int(count)):
            self._shards.append(self._make_mechanism())
            self._generators.append(np.random.default_rng(child))
            self._stream_ids.append(self._streams_spawned)
            self._streams_spawned += 1
        self._router.resize(len(self._shards))
        return list(range(first, len(self._shards)))

    def shrink_to(self, n_shards: int) -> List[tuple]:
        """Retire the highest-indexed shards down to ``n_shards``.

        Every retired shard's sufficient statistics are rebalanced into the
        least-loaded surviving shard via ``merge_from`` — merging is exact,
        so the eventual :meth:`reduce` still sums precisely the statistics
        every stream ever accumulated and stays bit-identical to a static
        run that pinned each batch to the same stream (see
        ``tests/integration/test_http_service.py``).  The retired random
        streams are gone for good: a later :meth:`add_shards` spawns fresh
        ones rather than resuming a stream whose position can no longer be
        trusted.  Returns ``(retired_stream_id, survivor_index)`` pairs,
        highest-indexed shard first, so callers can fold their own per-shard
        bookkeeping the same way.
        """
        if not isinstance(n_shards, (int, np.integer)) or n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be a positive integer, got {n_shards!r}"
            )
        if n_shards > len(self._shards):
            raise ConfigurationError(
                f"cannot shrink to {n_shards} shards from {len(self._shards)}; "
                "use add_shards to grow"
            )
        retired: List[tuple] = []
        while len(self._shards) > int(n_shards):
            index = len(self._shards) - 1
            survivor = self._least_loaded_survivor(index)
            removed = self._shards.pop(index)
            if removed.is_fitted:
                self._shards[survivor].merge_from(removed)
            self._router.fold(index, survivor)
            self._router.resize(len(self._shards))
            self._generators.pop(index)
            retired.append((self._stream_ids.pop(index), survivor))
        return retired

    def _least_loaded_survivor(self, removed_index: int) -> int:
        """Lowest-indexed least-loaded shard below ``removed_index``.

        Prefers the router's own load signal (the least-loaded policy's
        routed-user counts); other policies fall back to absorbed users.
        Deterministic — ties break toward the lowest index — so shrink
        rebalancing is reproducible.
        """
        loads = getattr(self._router, "loads", None)
        if not loads or len(loads) <= removed_index:
            loads = [shard.n_users or 0 for shard in self._shards]
        return int(np.argmin(np.asarray(loads[:removed_index], dtype=np.int64)))

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------
    def generation_signature(self) -> tuple:
        """Fingerprint of the collected state a :meth:`reduce` would see.

        Combines the live stream ids (which change on every scale event)
        with each shard's monotone ``ingest_generation`` — two signatures
        are equal exactly when no batch has been absorbed and no shard
        added, retired or restored in between, so a cached ``reduce()``
        result keyed by this tuple is fresh by construction.  Cheap (no
        statistics are touched), so read paths may poll it per request.
        """
        return (
            tuple(int(stream) for stream in self._stream_ids),
            tuple(
                int(getattr(shard, "ingest_generation", 0)) for shard in self._shards
            ),
        )

    def reduce(self) -> RangeQueryMechanism:
        """Merge all fitted shards into one fresh queryable mechanism.

        The shards keep their state, so ingestion may continue and
        :meth:`reduce` may be called again later — the streaming analytics
        pattern of querying a live collection.

        Merging only folds sufficient statistics; the returned mechanism
        materializes its estimates (consistency, prefix sums, inverse
        transforms) lazily on the first query.  Call
        :meth:`~repro.core.base.RangeQueryMechanism.materialize` on the
        result to move that one-time cost off the first read.
        """
        fitted = [shard for shard in self._shards if shard.is_fitted]
        if not fitted:
            raise NotFittedError("no shard has collected any reports yet")
        reduced = self._make_mechanism()
        for shard in fitted:
            reduced.merge_from(shard)
        return reduced

    def session(self) -> LdpRangeQuerySession:
        """Wrap :meth:`reduce` in a high-level analysis session."""
        return LdpRangeQuerySession(
            epsilon=self._epsilon,
            domain_size=self._domain_size,
            mechanism=self.reduce(),
        )

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint_bytes(self) -> bytes:
        """Serialise the full collector state into one snapshot container.

        Captures everything a resumed run needs to be indistinguishable
        from an uninterrupted one: shard statistics, shard random streams,
        router state and counters.  Custom router policies must be
        registered (:func:`repro.streaming.routing.register_router`) so the
        restore side can resolve the stored policy name back to a class;
        unregistered routers are rejected here rather than producing a
        checkpoint that can never be loaded.
        """
        if not is_registered_router(self._router):
            raise ConfigurationError(
                f"router {type(self._router).__name__} (name="
                f"{self._router.name!r}) is not registered; decorate it with "
                "repro.streaming.routing.register_router to make checkpoints "
                "restorable"
            )
        seq = self._seed_sequence
        entropy = seq.entropy
        header = {
            "kind": "collector",
            "spec": self._spec,
            "config": self._config,
            "n_shards": self.n_shards,
            "mode": self._mode,
            "n_batches": int(self._n_batches),
            "router": {
                "name": self._router.name,
                "state": self._router.state_dict(),
            },
            "generators": [_generator_state(gen) for gen in self._generators],
            # Scaling continuity: which spawn child each shard draws from,
            # and the parent seed sequence mid-spawn, so a restored collector
            # can keep growing with exactly the streams the original would
            # have spawned next.
            "stream_ids": [int(stream) for stream in self._stream_ids],
            "streams_spawned": int(self._streams_spawned),
            "seed_sequence": {
                "entropy": list(entropy) if isinstance(entropy, (list, tuple)) else entropy,
                "spawn_key": list(seq.spawn_key),
                "pool_size": int(seq.pool_size),
                "n_children_spawned": int(seq.n_children_spawned),
            },
        }
        arrays = {}
        for index, shard in enumerate(self._shards):
            arrays[f"shard{index}"] = shard.state_dict()
        return pack_snapshot(header, flatten_arrays(arrays))

    def checkpoint(self, path: Union[str, Path]) -> Path:
        """Write :meth:`checkpoint_bytes` to ``path`` atomically."""
        return write_atomic(path, self.checkpoint_bytes())

    @classmethod
    def from_checkpoint_bytes(cls, data: bytes) -> "ShardedCollector":
        """Rebuild a collector that resumes exactly where ``data`` left off."""
        return cls._from_parsed(*unpack_snapshot(data))

    @classmethod
    def _from_parsed(
        cls, header: Dict[str, Any], flat: Dict[str, np.ndarray]
    ) -> "ShardedCollector":
        """Restore from an already-unpacked container (single-parse path
        shared with :func:`repro.persist.from_bytes`)."""
        if header.get("kind") != "collector":
            raise ConfigurationError(
                f"expected a collector checkpoint, got kind {header.get('kind')!r}"
            )
        for field in ("n_shards", "config"):
            if field not in header:
                raise ConfigurationError(f"collector checkpoint is missing {field!r}")
        n_shards = int(header["n_shards"])
        generator_states = header.get("generators", [])
        if len(generator_states) != n_shards:
            raise ConfigurationError(
                f"checkpoint holds {len(generator_states)} generator states "
                f"for {n_shards} shards"
            )
        router_info = header.get("router", {})
        router = make_router(router_info.get("name"))
        collector = cls.__new__(cls)
        collector._spec = str(header.get("spec", "mechanism"))
        collector._config = dict(header["config"])
        prototype = mechanism_from_config(collector._config)
        collector._epsilon = float(prototype.epsilon)
        collector._domain_size = int(prototype.domain_size)
        collector._mode = str(header.get("mode", "aggregate"))
        collector._router = router.bind(n_shards)
        collector._router.load_state_dict(router_info.get("state", {}))
        collector._n_batches = int(header.get("n_batches", 0))
        collector._counter_lock = threading.Lock()
        collector._generators = [
            _generator_from_state(state) for state in generator_states
        ]
        collector._stream_ids = [
            int(stream) for stream in header.get("stream_ids", range(n_shards))
        ]
        if len(collector._stream_ids) != n_shards:
            raise ConfigurationError(
                f"checkpoint holds {len(collector._stream_ids)} stream ids "
                f"for {n_shards} shards"
            )
        collector._streams_spawned = int(header.get("streams_spawned", n_shards))
        seed_info = header.get("seed_sequence")
        if seed_info is not None:
            entropy = seed_info.get("entropy")
            collector._seed_sequence = np.random.SeedSequence(
                entropy,
                spawn_key=tuple(int(k) for k in seed_info.get("spawn_key", ())),
                pool_size=int(seed_info.get("pool_size", 4)),
                n_children_spawned=int(seed_info.get("n_children_spawned", 0)),
            )
        else:
            # Legacy (pre-autoscale) checkpoint: resuming is still bit-exact
            # for the existing shards, but post-restore growth draws fresh
            # entropy instead of the original seed's next children.
            collector._seed_sequence = np.random.SeedSequence()
        states = nest_arrays(flat)
        shards = []
        for index in range(n_shards):
            shard = mechanism_from_config(collector._config)
            shard_state = states.get(f"shard{index}")
            if shard_state is None:
                raise ConfigurationError(f"checkpoint is missing shard {index}")
            shard.load_state_dict(shard_state)
            shards.append(shard)
        collector._shards = shards
        return collector

    @classmethod
    def restore(cls, path: Union[str, Path]) -> "ShardedCollector":
        """Load a checkpoint file written by :meth:`checkpoint`."""
        return cls.from_checkpoint_bytes(Path(path).read_bytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedCollector(mechanism={self._spec!r}, n_shards={self.n_shards}, "
            f"router={self._router.name!r}, n_users={self.n_users}, "
            f"n_batches={self._n_batches})"
        )
