"""Unit tests for the mergeable oracle accumulators.

The accumulator laws under test:

* one-shot equivalence — ``aggregate`` / ``simulate_aggregate`` are exactly
  a single-batch accumulation (same RNG stream, same result);
* merge-linearity — the merged estimate equals the user-count-weighted
  average of the parts' estimates;
* merge associativity and commutativity (up to float rounding);
* configuration safety — differently configured oracles refuse to merge.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.frequency_oracles import (
    FrequencyOracle,
    GeneralizedRandomizedResponse,
    HadamardRandomizedResponse,
    OptimalLocalHashing,
    OptimizedUnaryEncoding,
    SymmetricUnaryEncoding,
    make_oracle,
)

ORACLE_NAMES = ("oue", "sue", "grr", "hrr", "olh")
DOMAIN = 16


def _oracle(name: str) -> FrequencyOracle:
    return make_oracle(name, epsilon=1.0, domain_size=DOMAIN)


def _counts(rng: np.random.Generator, total: int = 5000) -> np.ndarray:
    return rng.multinomial(total, np.full(DOMAIN, 1.0 / DOMAIN))


class TestOneShotEquivalence:
    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_simulate_aggregate_is_single_batch_accumulation(self, name, rng):
        oracle = _oracle(name)
        counts = _counts(rng)
        one_shot = oracle.simulate_aggregate(counts, np.random.default_rng(5))
        accumulated = (
            oracle.accumulator().add_counts(counts, np.random.default_rng(5)).estimate()
        )
        np.testing.assert_array_equal(one_shot, accumulated)

    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_aggregate_is_single_batch_accumulation(self, name, rng):
        oracle = _oracle(name)
        values = rng.integers(0, DOMAIN, size=2000)
        reports = oracle.encode_batch(values, np.random.default_rng(6))
        np.testing.assert_array_equal(
            oracle.aggregate(reports), oracle.accumulator().add(reports).estimate()
        )

    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_add_items_matches_estimate_from_users(self, name, rng):
        oracle = _oracle(name)
        values = rng.integers(0, DOMAIN, size=1500)
        direct = oracle.estimate_from_users(values, np.random.default_rng(7))
        accumulated = (
            oracle.accumulator().add_items(values, np.random.default_rng(7)).estimate()
        )
        np.testing.assert_array_equal(direct, accumulated)


class TestMergeLaws:
    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_merge_is_weighted_average_of_estimates(self, name, rng):
        oracle = _oracle(name)
        parts = []
        sizes = (4000, 1000, 2500)
        for size in sizes:
            acc = oracle.accumulator().add_counts(_counts(rng, size), rng)
            parts.append(acc)
        estimates = [acc.estimate() for acc in parts]
        merged = oracle.accumulator()
        for acc in parts:
            merged.merge(acc)
        expected = sum(n * e for n, e in zip(sizes, estimates)) / sum(sizes)
        assert merged.n_users == sum(sizes)
        np.testing.assert_allclose(merged.estimate(), expected, atol=1e-12)

    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_merge_associative_and_commutative(self, name, rng):
        oracle = _oracle(name)

        def fresh(seed, size):
            return oracle.accumulator().add_counts(
                _counts(np.random.default_rng(seed), size), np.random.default_rng(seed + 100)
            )

        left = fresh(1, 900).merge(fresh(2, 1100)).merge(fresh(3, 700))
        right = fresh(3, 700).merge(fresh(1, 900).merge(fresh(2, 1100)))
        assert left.n_users == right.n_users == 2700
        np.testing.assert_allclose(left.estimate(), right.estimate(), atol=1e-10)

    def test_empty_accumulator_estimates_zero(self):
        for name in ORACLE_NAMES:
            acc = _oracle(name).accumulator()
            assert acc.n_users == 0
            np.testing.assert_array_equal(acc.estimate(), np.zeros(DOMAIN))

    def test_merging_empty_is_identity(self, rng):
        oracle = _oracle("oue")
        acc = oracle.accumulator().add_counts(_counts(rng), rng)
        before = acc.estimate().copy()
        acc.merge(oracle.accumulator())
        np.testing.assert_array_equal(acc.estimate(), before)


class TestMergeCompatibility:
    def test_different_epsilon_refused(self):
        a = OptimizedUnaryEncoding(1.0, DOMAIN).accumulator()
        b = OptimizedUnaryEncoding(2.0, DOMAIN).accumulator()
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_different_domain_refused(self):
        a = GeneralizedRandomizedResponse(1.0, DOMAIN).accumulator()
        b = GeneralizedRandomizedResponse(1.0, DOMAIN * 2).accumulator()
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_different_oracle_class_refused(self):
        a = OptimizedUnaryEncoding(1.0, DOMAIN).accumulator()
        b = SymmetricUnaryEncoding(1.0, DOMAIN).accumulator()
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_different_hash_range_refused(self):
        a = OptimalLocalHashing(1.0, DOMAIN, hash_range=4).accumulator()
        b = OptimalLocalHashing(1.0, DOMAIN, hash_range=8).accumulator()
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_failed_merge_leaves_state_untouched(self, rng):
        oracle = OptimizedUnaryEncoding(1.0, DOMAIN)
        acc = oracle.accumulator().add_counts(_counts(rng), rng)
        before = acc.estimate().copy()
        users_before = acc.n_users
        with pytest.raises(ConfigurationError):
            acc.merge(OptimizedUnaryEncoding(2.0, DOMAIN).accumulator())
        assert acc.n_users == users_before
        np.testing.assert_array_equal(acc.estimate(), before)


class TestStatisticalSoundness:
    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_batched_accumulation_recovers_frequencies(self, name, rng):
        oracle = _oracle(name)
        probabilities = np.arange(1, DOMAIN + 1, dtype=np.float64)
        probabilities /= probabilities.sum()
        n_users = 60_000
        counts = rng.multinomial(n_users, probabilities)
        acc = oracle.accumulator()
        # Three aggregate-mode batches carved from the exact counts.
        first = np.minimum(counts, counts // 3)
        second = np.minimum(counts - first, counts // 3)
        for chunk in (first, second, counts - first - second):
            acc.add_counts(chunk, rng)
        assert acc.n_users == n_users
        tolerance = 6.0 * np.sqrt(oracle.theoretical_variance(n_users)) + 0.01
        np.testing.assert_allclose(acc.estimate(), probabilities, atol=tolerance)

    def test_hadamard_signed_reports_accumulate(self, rng):
        oracle = HadamardRandomizedResponse(2.0, 8)
        values = rng.integers(0, 8, size=4000)
        signs = np.where(rng.random(4000) < 0.5, -1, 1)
        reports = oracle.encode_batch(values, np.random.default_rng(3), signs=signs)
        direct = oracle.aggregate(reports)
        accumulated = oracle.accumulator().add(reports).estimate()
        np.testing.assert_array_equal(direct, accumulated)
