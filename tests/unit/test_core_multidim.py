"""Unit tests for the two-dimensional extension."""

import numpy as np
import pytest

from repro.core.multidim import HierarchicalGrid2D
from repro.exceptions import InvalidDomainError, InvalidQueryError, NotFittedError


@pytest.fixture
def grid_points(rng):
    """A clustered 2-D population on a 16 x 16 grid."""
    n = 40_000
    x = np.clip(rng.normal(5, 2, size=n).astype(int), 0, 15)
    y = np.clip(rng.normal(10, 2, size=n).astype(int), 0, 15)
    return np.stack([x, y], axis=1)


class TestConfiguration:
    def test_geometry(self):
        grid = HierarchicalGrid2D(1.0, 16, branching=2)
        assert grid.height == 4
        assert grid.domain_size == 16

    def test_invalid_domain(self):
        with pytest.raises(InvalidDomainError):
            HierarchicalGrid2D(1.0, 1)

    def test_not_fitted(self):
        grid = HierarchicalGrid2D(1.0, 16)
        with pytest.raises(NotFittedError):
            grid.answer_rectangle((0, 3), (0, 3))
        with pytest.raises(NotFittedError):
            grid.estimate_heatmap()


class TestCollection:
    def test_fit_points_validation(self, rng):
        grid = HierarchicalGrid2D(1.0, 16)
        with pytest.raises(InvalidQueryError):
            grid.fit_points(np.array([[0, 16]]), rng)
        with pytest.raises(InvalidQueryError):
            grid.fit_points(np.zeros((3, 3)), rng)

    def test_fit_sets_population(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        assert grid.is_fitted
        assert grid.n_users == grid_points.shape[0]


class TestAnswers:
    def test_full_grid_close_to_one(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.5, 16).fit_points(grid_points, rng)
        assert grid.answer_rectangle((0, 15), (0, 15)) == pytest.approx(1.0, abs=0.15)

    def test_rectangle_close_to_truth(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.5, 16).fit_points(grid_points, rng)
        truth = np.mean(
            (grid_points[:, 0] >= 2)
            & (grid_points[:, 0] <= 9)
            & (grid_points[:, 1] >= 6)
            & (grid_points[:, 1] <= 13)
        )
        assert grid.answer_rectangle((2, 9), (6, 13)) == pytest.approx(truth, abs=0.15)

    def test_heatmap_shape(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        assert grid.estimate_heatmap().shape == (16, 16)

    def test_variance_bound_positive(self, grid_points, rng):
        grid = HierarchicalGrid2D(1.0, 16).fit_points(grid_points, rng)
        assert grid.theoretical_variance_bound(4) > 0
        with pytest.raises(InvalidQueryError):
            grid.theoretical_variance_bound(0)
