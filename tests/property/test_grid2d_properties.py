"""Property tests for the 2-D grid's streaming and persistence laws.

The 2-D mechanism sits on the same accumulator substrate as the 1-D
families, so the same laws must hold: shard-count invariance (splitting a
population across mechanisms and merging equals collecting it on one),
snapshot round-trip bit-exactness, and strict input validation (no silent
float truncation).
"""

import numpy as np
import pytest

from repro.core.multidim import HierarchicalGrid2D
from repro.data.synthetic import clustered_grid_points
from repro.data.workloads import random_rectangles
from repro.exceptions import InvalidQueryError
from repro.persist import snapshots

SIDE = 16
EPSILON = 1.5
N_USERS = 30_000


@pytest.fixture(scope="module")
def points():
    return clustered_grid_points(SIDE, N_USERS, random_state=23)


@pytest.fixture(scope="module")
def rectangles():
    return random_rectangles(SIDE, 64, random_state=24)


def _truth(points, rectangles):
    inside = (
        (points[:, 0][:, None] >= rectangles[:, 0])
        & (points[:, 0][:, None] <= rectangles[:, 1])
        & (points[:, 1][:, None] >= rectangles[:, 2])
        & (points[:, 1][:, None] <= rectangles[:, 3])
    )
    return inside.mean(axis=0)


class TestShardCountInvariance:
    @pytest.mark.parametrize("n_parts", [2, 3, 5])
    def test_merge_of_split_population_equals_one_mechanism(self, points, n_parts):
        """Feeding shards from one random stream and merging is bit-identical
        to one mechanism collecting the batches sequentially."""
        batches = np.array_split(points, n_parts)

        stream = np.random.default_rng(31)
        sequential = HierarchicalGrid2D(EPSILON, SIDE)
        for batch in batches:
            sequential.partial_fit_points(batch, stream)

        stream = np.random.default_rng(31)
        shards = [
            HierarchicalGrid2D(EPSILON, SIDE).fit_points(batch, stream)
            for batch in batches
        ]
        merged = HierarchicalGrid2D(EPSILON, SIDE)
        for shard in shards:
            merged.merge_from(shard)

        assert merged.n_users == N_USERS
        assert np.array_equal(merged.estimate_heatmap(), sequential.estimate_heatmap())
        assert np.array_equal(
            merged.pair_user_counts, sequential.pair_user_counts
        )

    def test_split_estimates_track_one_shot_accuracy(self, points, rectangles):
        """Shard count is a throughput knob: rectangle MSE stays in the same
        regime whether the population is collected in 1, 2 or 8 parts."""
        truth = _truth(points, rectangles)

        def mse(n_parts, seed):
            stream = np.random.default_rng(seed)
            merged = HierarchicalGrid2D(EPSILON, SIDE)
            for batch in np.array_split(points, n_parts):
                merged.partial_fit_points(batch, stream)
            return float(np.mean((merged.answer_rectangles(rectangles) - truth) ** 2))

        reference = np.median([mse(1, seed) for seed in range(5)])
        for n_parts in (2, 8):
            split = np.median([mse(n_parts, seed + 100) for seed in range(5)])
            assert split < 10 * reference
            assert reference < 10 * split


class TestSnapshotRoundTrip:
    def test_bytes_round_trip_bit_exact(self, points, rectangles):
        grid = HierarchicalGrid2D(EPSILON, SIDE, branching=4, oracle="hrr")
        grid.fit_points(points, np.random.default_rng(40))
        restored = snapshots.from_bytes(snapshots.to_bytes(grid))
        assert isinstance(restored, HierarchicalGrid2D)
        assert restored.branching == 4
        assert np.array_equal(restored.estimate_heatmap(), grid.estimate_heatmap())
        assert np.array_equal(
            restored.answer_rectangles(rectangles), grid.answer_rectangles(rectangles)
        )

    def test_restored_grid_keeps_collecting(self, points):
        stream = np.random.default_rng(41)
        grid = HierarchicalGrid2D(EPSILON, SIDE).fit_points(points[:10_000], stream)
        restored = snapshots.from_bytes(snapshots.to_bytes(grid))
        restored.partial_fit_points(points[10_000:], stream)
        assert restored.n_users == N_USERS
        assert restored.answer_rectangle((0, SIDE - 1), (0, SIDE - 1)) == pytest.approx(
            1.0, abs=0.25
        )

    def test_template_mismatch_rejected(self, points):
        from repro.exceptions import ConfigurationError

        grid = HierarchicalGrid2D(EPSILON, SIDE).fit_points(
            points[:1000], np.random.default_rng(42)
        )
        data = snapshots.to_bytes(grid)
        with pytest.raises(ConfigurationError):
            snapshots.from_bytes(data, template=HierarchicalGrid2D(EPSILON, 32))
        with pytest.raises(ConfigurationError):
            snapshots.from_bytes(data, template=HierarchicalGrid2D(0.7, SIDE))


class TestValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            np.array([[0.9, 0.2]]),
            np.array([[1.0, np.nan]]),
            np.array([[np.inf, 1.0]]),
            np.array([[-1, 0]]),
            np.array([[0, SIDE]]),
            np.zeros((4, 3)),
            np.arange(6),
        ],
        ids=["float", "nan", "inf", "negative", "out-of-range", "3-col", "1-d"],
    )
    def test_bad_points_rejected_everywhere(self, bad):
        grid = HierarchicalGrid2D(EPSILON, SIDE)
        with pytest.raises(InvalidQueryError):
            grid.fit_points(bad)
        with pytest.raises(InvalidQueryError):
            grid.partial_fit_points(bad)
        with pytest.raises(InvalidQueryError):
            grid.flatten_points(bad)

    def test_rejection_leaves_state_untouched(self, points):
        stream = np.random.default_rng(43)
        grid = HierarchicalGrid2D(EPSILON, SIDE).fit_points(points[:2000], stream)
        before = grid.estimate_heatmap()
        with pytest.raises(InvalidQueryError):
            grid.partial_fit_points(np.array([[0.5, 0.5]]), stream)
        assert grid.n_users == 2000
        assert np.array_equal(grid.estimate_heatmap(), before)
