"""Synthetic data and query workload generators used by the experiments."""

from repro.data.synthetic import (
    bimodal_probabilities,
    cauchy_probabilities,
    clustered_grid_points,
    expected_counts,
    gaussian_probabilities,
    sample_counts,
    sample_items,
    uniform_probabilities,
    zipf_probabilities,
)
from repro.data.workloads import (
    BoxWorkload,
    RangeWorkload,
    all_range_queries,
    evaluate_exact,
    evaluate_exact_boxes,
    fixed_length_queries,
    prefix_queries,
    random_boxes,
    random_range_queries,
    random_rectangles,
    sampled_range_queries,
)

__all__ = [
    "cauchy_probabilities",
    "zipf_probabilities",
    "gaussian_probabilities",
    "uniform_probabilities",
    "bimodal_probabilities",
    "sample_counts",
    "sample_items",
    "clustered_grid_points",
    "expected_counts",
    "BoxWorkload",
    "RangeWorkload",
    "all_range_queries",
    "sampled_range_queries",
    "fixed_length_queries",
    "prefix_queries",
    "random_range_queries",
    "random_boxes",
    "random_rectangles",
    "evaluate_exact",
    "evaluate_exact_boxes",
]
