"""Walsh–Hadamard transform utilities.

The Hadamard Randomized Response (HRR) frequency oracle perturbs a single,
randomly chosen coefficient of the Hadamard transform of the user's one-hot
input vector.  Because the input is one-hot, its (unnormalised) transform is
just a column of the Hadamard matrix, whose entries are

    phi[i][j] = (-1)^{<i, j>}

where ``<i, j>`` counts the positions on which the binary representations of
``i`` and ``j`` both have a ``1`` (Figure 1 of the paper shows ``D = 8``).

Two access patterns are needed:

* *users* need a single entry ``phi[v][j]`` — provided in vectorised form by
  :func:`hadamard_entries` using a popcount, O(1) per user and O(N) for a
  whole population without materialising any matrix;
* the *aggregator* needs to invert the transform over the whole domain —
  provided by the in-place butterfly :func:`fast_walsh_hadamard_transform`
  in ``O(D log D)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidDomainError

__all__ = [
    "is_power_of_two",
    "hadamard_matrix",
    "hadamard_entry",
    "hadamard_entries",
    "fast_walsh_hadamard_transform",
    "inverse_fast_walsh_hadamard_transform",
]


def is_power_of_two(value: int) -> bool:
    """Return ``True`` if ``value`` is a positive power of two."""
    return isinstance(value, (int, np.integer)) and value > 0 and (value & (value - 1)) == 0


def _require_power_of_two(size: int) -> int:
    if not is_power_of_two(size):
        raise InvalidDomainError(
            f"Hadamard transform requires a power-of-two size, got {size!r}"
        )
    return int(size)


def hadamard_matrix(size: int, normalized: bool = False) -> np.ndarray:
    """Return the ``size x size`` Hadamard matrix.

    Parameters
    ----------
    size:
        Matrix dimension; must be a power of two.
    normalized:
        If ``True`` the matrix is scaled by ``1/sqrt(size)`` so it is
        orthonormal (matching Figure 1 of the paper); otherwise entries are
        ``+-1``.

    Notes
    -----
    Materialising the matrix costs ``O(size^2)`` memory and is only intended
    for small domains (tests, documentation examples).  Mechanisms use the
    entry-wise and butterfly routines below instead.
    """
    size = _require_power_of_two(size)
    # Sylvester construction by repeated Kronecker products.
    matrix = np.ones((1, 1), dtype=np.int64)
    block = np.array([[1, 1], [1, -1]], dtype=np.int64)
    while matrix.shape[0] < size:
        matrix = np.kron(matrix, block)
    if normalized:
        return matrix.astype(np.float64) / np.sqrt(size)
    return matrix


def _popcount(values: np.ndarray) -> np.ndarray:
    """Vectorised popcount for unsigned 64-bit integers."""
    values = values.astype(np.uint64, copy=True)
    count = np.zeros(values.shape, dtype=np.uint64)
    while np.any(values):
        count += values & np.uint64(1)
        values >>= np.uint64(1)
    return count


def hadamard_entry(row: int, col: int) -> int:
    """Return the (unnormalised) Hadamard matrix entry ``phi[row][col]``.

    ``+1`` when the binary representations of ``row`` and ``col`` share an
    even number of one-bits, ``-1`` otherwise.
    """
    if row < 0 or col < 0:
        raise InvalidDomainError("Hadamard indices must be non-negative")
    return 1 if bin(row & col).count("1") % 2 == 0 else -1


def hadamard_entries(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Vectorised :func:`hadamard_entry` for arrays of indices.

    Used by the HRR oracle to evaluate one coefficient per user in a single
    NumPy pass: ``phi[rows[i]][cols[i]]`` for every ``i``.
    """
    rows = np.asarray(rows, dtype=np.uint64)
    cols = np.asarray(cols, dtype=np.uint64)
    if np.any(rows.astype(np.int64) < 0) or np.any(cols.astype(np.int64) < 0):
        raise InvalidDomainError("Hadamard indices must be non-negative")
    parity = _popcount(rows & cols) & np.uint64(1)
    return np.where(parity == 0, 1, -1).astype(np.int64)


def fast_walsh_hadamard_transform(vector: np.ndarray) -> np.ndarray:
    """Unnormalised fast Walsh–Hadamard transform.

    Computes ``H @ vector`` where ``H`` is the ``+-1`` Hadamard matrix, in
    ``O(D log D)`` time using the standard butterfly.  The input is not
    modified; a float64 copy is returned.
    """
    data = np.array(vector, dtype=np.float64, copy=True)
    if data.ndim != 1:
        raise InvalidDomainError("expected a one-dimensional vector")
    size = _require_power_of_two(data.shape[0])
    step = 1
    while step < size:
        reshaped = data.reshape(-1, 2 * step)
        left = reshaped[:, :step].copy()
        right = reshaped[:, step:].copy()
        reshaped[:, :step] = left + right
        reshaped[:, step:] = left - right
        data = reshaped.reshape(-1)
        step *= 2
    return data


def inverse_fast_walsh_hadamard_transform(vector: np.ndarray) -> np.ndarray:
    """Inverse of :func:`fast_walsh_hadamard_transform`.

    Because the unnormalised Hadamard matrix satisfies ``H @ H = D * I``,
    the inverse is the forward transform divided by ``D``.
    """
    data = np.asarray(vector, dtype=np.float64)
    size = _require_power_of_two(data.shape[0])
    return fast_walsh_hadamard_transform(data) / float(size)
