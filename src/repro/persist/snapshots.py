"""Versioned snapshots of accumulators and fitted mechanisms.

The public surface is four symmetric functions —

* :func:`to_bytes` / :func:`from_bytes` for in-memory transport (what the
  multiprocessing executor ships between worker processes);
* :func:`save` / :func:`load` for durable files (what crash recovery and
  the :meth:`~repro.core.session.LdpRangeQuerySession.save` API use);

— accepting any :class:`~repro.frequency_oracles.accumulators.OracleAccumulator`
or accumulator-backed :class:`~repro.core.base.RangeQueryMechanism` (flat,
hierarchical histogram, Haar wavelet).  A snapshot carries three layers:

1. the container framing (magic, format version — :mod:`repro.persist.format`);
2. a JSON schema header: what kind of object, the configuration needed to
   rebuild it from scratch, and its *merge signature*;
3. the sufficient-statistic arrays, bit-exact.

Snapshots interact cleanly with lazy estimate materialization: only the
sufficient statistics are serialised, so saving a *dirty* mechanism (one
with batches absorbed but estimates not yet rebuilt) neither forces a
materialization nor loses anything — the restored mechanism materializes on
its first query and answers bit-identically to the snapshotted one.

Restoring is allowed in two modes.  With no ``template``, the object is
rebuilt from the stored configuration (so a snapshot is fully
self-contained).  With a ``template`` — an existing oracle, accumulator or
mechanism the caller already holds — the stored merge signature must match
the template's exactly; any divergence (different mechanism spec, epsilon,
domain size, oracle parameters, tree geometry) raises
:class:`~repro.exceptions.ConfigurationError` *before* any state is touched,
which is the compatibility gate that makes restored state safe to
``merge_from``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.base import RangeQueryMechanism
from repro.core.flat import FlatMechanism
from repro.core.hierarchical import HierarchicalHistogramMechanism
from repro.core.multidim import HierarchicalGrid2D, HierarchicalGridND
from repro.core.wavelet import HaarWaveletMechanism
from repro.exceptions import ConfigurationError
from repro.frequency_oracles.accumulators import OracleAccumulator
from repro.frequency_oracles.base import FrequencyOracle
from repro.frequency_oracles.registry import make_oracle
from repro.persist.format import (
    flatten_arrays,
    nest_arrays,
    pack_snapshot,
    unpack_snapshot,
    write_atomic,
)

__all__ = [
    "clone_unfitted",
    "from_bytes",
    "load",
    "mechanism_config",
    "mechanism_from_config",
    "normalize_signature",
    "resolve_mechanism",
    "save",
    "to_bytes",
]

Snapshotable = Union[OracleAccumulator, RangeQueryMechanism]


def normalize_signature(signature: Any) -> Any:
    """Make a merge signature JSON-stable (tuples to lists, numpy to python).

    Signatures are compared *after* normalisation on both sides, so a
    signature that went through a JSON round-trip compares equal to a live
    one.
    """
    if isinstance(signature, (tuple, list)):
        return [normalize_signature(part) for part in signature]
    if isinstance(signature, (np.integer,)):
        return int(signature)
    if isinstance(signature, (np.floating,)):
        return float(signature)
    if isinstance(signature, (np.bool_, bool)):
        return bool(signature)
    return signature


def _check_signature(stored: Any, live: Any, what: str) -> None:
    stored = normalize_signature(stored)
    live = normalize_signature(live)
    if stored != live:
        raise ConfigurationError(
            f"snapshot is incompatible with the provided {what}: "
            f"stored signature {stored!r} != live signature {live!r} "
            "(mechanism spec, epsilon, domain size and protocol parameters "
            "must all match)"
        )


# ----------------------------------------------------------------------
# Mechanism configuration (rebuild-from-scratch support)
# ----------------------------------------------------------------------
def mechanism_config(mechanism: RangeQueryMechanism) -> Dict[str, Any]:
    """JSON-serialisable constructor description of a mechanism.

    Covers the three accumulator-backed families; raises
    :class:`~repro.exceptions.ConfigurationError` for anything else (such
    mechanisms can still be snapshotted template-only if they implement
    ``state_dict``, but they cannot be rebuilt from the header).
    """
    if isinstance(mechanism, FlatMechanism):
        return {
            "kind": "flat",
            "epsilon": float(mechanism.epsilon),
            "domain_size": int(mechanism.domain_size),
            "oracle": mechanism.oracle.name,
            "oracle_kwargs": dict(mechanism._oracle_kwargs),
            "name": mechanism._name,
        }
    if isinstance(mechanism, HierarchicalHistogramMechanism):
        return {
            "kind": "hierarchical",
            "epsilon": float(mechanism.epsilon),
            "domain_size": int(mechanism.domain_size),
            "branching": int(mechanism.branching),
            "oracle": mechanism._oracle_name,
            "consistency": bool(mechanism.consistency),
            "budget_strategy": mechanism.budget_strategy,
            "level_probabilities": [float(p) for p in mechanism.level_probabilities],
            "oracle_kwargs": dict(mechanism._oracle_kwargs),
            "name": mechanism._name,
        }
    if isinstance(mechanism, HaarWaveletMechanism):
        return {
            "kind": "haar",
            "epsilon": float(mechanism.epsilon),
            "domain_size": int(mechanism.domain_size),
            "level_probabilities": [float(p) for p in mechanism.level_probabilities],
            "name": mechanism._name,
        }
    if isinstance(mechanism, HierarchicalGrid2D):
        # The d = 2 specialization keeps the historical "grid2d" kind (no
        # dims field) so pre-refactor snapshots stay byte-compatible.
        return {
            "kind": "grid2d",
            "epsilon": float(mechanism.epsilon),
            "domain_size": int(mechanism.domain_size),  # grid side length
            "branching": int(mechanism.branching),
            "oracle": mechanism._oracle_name,
            "oracle_kwargs": dict(mechanism._oracle_kwargs),
            "name": mechanism._name,
        }
    if isinstance(mechanism, HierarchicalGridND):
        return {
            "kind": "gridnd",
            "epsilon": float(mechanism.epsilon),
            "domain_size": int(mechanism.domain_size),  # grid side length
            "dims": int(mechanism.dims),
            "branching": int(mechanism.branching),
            "oracle": mechanism._oracle_name,
            "oracle_kwargs": dict(mechanism._oracle_kwargs),
            "name": mechanism._name,
        }
    raise ConfigurationError(
        f"{type(mechanism).__name__} has no snapshot configuration; "
        "pass an explicit template when restoring"
    )


def mechanism_from_config(config: Dict[str, Any]) -> RangeQueryMechanism:
    """Rebuild an unfitted mechanism from :func:`mechanism_config` output."""
    config = dict(config)
    kind = config.pop("kind", None)
    name = config.pop("name", None)
    try:
        if kind == "flat":
            return FlatMechanism(
                epsilon=config["epsilon"],
                domain_size=config["domain_size"],
                oracle=config["oracle"],
                name=name,
                **config.get("oracle_kwargs", {}),
            )
        if kind == "hierarchical":
            return HierarchicalHistogramMechanism(
                epsilon=config["epsilon"],
                domain_size=config["domain_size"],
                branching=config["branching"],
                oracle=config["oracle"],
                consistency=config["consistency"],
                level_probabilities=config.get("level_probabilities"),
                budget_strategy=config.get("budget_strategy", "sampling"),
                name=name,
                **config.get("oracle_kwargs", {}),
            )
        if kind == "haar":
            return HaarWaveletMechanism(
                epsilon=config["epsilon"],
                domain_size=config["domain_size"],
                level_probabilities=config.get("level_probabilities"),
                name=name,
            )
        if kind == "grid2d":
            return HierarchicalGrid2D(
                epsilon=config["epsilon"],
                domain_size=config["domain_size"],
                branching=config.get("branching", 2),
                oracle=config.get("oracle", "oue"),
                name=name,
                **config.get("oracle_kwargs", {}),
            )
        if kind == "gridnd":
            return HierarchicalGridND(
                epsilon=config["epsilon"],
                domain_size=config["domain_size"],
                dims=config["dims"],
                branching=config.get("branching", 2),
                oracle=config.get("oracle", "oue"),
                name=name,
                **config.get("oracle_kwargs", {}),
            )
    except KeyError as error:
        raise ConfigurationError(f"mechanism config is missing {error}")
    raise ConfigurationError(f"unknown mechanism config kind {kind!r}")


def clone_unfitted(mechanism: RangeQueryMechanism) -> RangeQueryMechanism:
    """A fresh, unfitted mechanism configured identically to ``mechanism``.

    The substrate of per-shard mechanism creation when the caller holds a
    prebuilt instance instead of a spec string.
    """
    return mechanism_from_config(mechanism_config(mechanism))


def resolve_mechanism(
    mechanism: Union[str, RangeQueryMechanism],
    epsilon: Optional[float] = None,
    domain_size: Optional[int] = None,
    mechanism_kwargs: Optional[Dict[str, Any]] = None,
) -> RangeQueryMechanism:
    """Resolve a spec-string-or-instance into a prototype mechanism.

    The shared front door of every surface that accepts either form
    (:class:`~repro.streaming.ShardedCollector`,
    :func:`repro.service.collect_across_processes`): with an instance,
    ``mechanism_kwargs`` are rejected and any explicit ``epsilon`` /
    ``domain_size`` must agree with it; with a spec string both are
    required.  The returned prototype is a configuration donor — callers
    clone it rather than fitting it.
    """
    if isinstance(mechanism, RangeQueryMechanism):
        if mechanism_kwargs:
            raise ConfigurationError(
                "mechanism_kwargs are only accepted with a spec string; "
                "configure the template instance instead"
            )
        if epsilon is not None and float(epsilon) != float(mechanism.epsilon):
            raise ConfigurationError(
                f"epsilon {epsilon!r} does not match the template's "
                f"{mechanism.epsilon!r}"
            )
        if domain_size is not None and int(domain_size) != mechanism.domain_size:
            raise ConfigurationError(
                f"domain_size {domain_size!r} does not match the template's "
                f"{mechanism.domain_size!r}"
            )
        return mechanism
    if epsilon is None or domain_size is None:
        raise ConfigurationError(
            "epsilon and domain_size are required with a spec string"
        )
    from repro.core.factory import mechanism_from_spec

    return mechanism_from_spec(
        str(mechanism),
        epsilon=epsilon,
        domain_size=domain_size,
        **(mechanism_kwargs or {}),
    )


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
def to_bytes(obj: Snapshotable) -> bytes:
    """Serialise an accumulator or mechanism into one snapshot byte string."""
    if isinstance(obj, OracleAccumulator):
        header = {
            "kind": "accumulator",
            "accumulator_class": type(obj).__name__,
            "oracle": obj.oracle.config_dict(),
            "signature": normalize_signature(obj.oracle.merge_signature()),
        }
        arrays = flatten_arrays(obj.state_dict())
        return pack_snapshot(header, arrays)
    if isinstance(obj, RangeQueryMechanism):
        header = {
            "kind": "mechanism",
            "mechanism_class": type(obj).__name__,
            "signature": normalize_signature(obj._merge_signature()),
        }
        try:
            header["config"] = mechanism_config(obj)
        except ConfigurationError:
            pass  # template-only restore remains possible
        arrays = flatten_arrays(obj.state_dict())
        return pack_snapshot(header, arrays)
    raise ConfigurationError(
        f"cannot snapshot a {type(obj).__name__}; expected an "
        "OracleAccumulator or a RangeQueryMechanism"
    )


def from_bytes(
    data: bytes,
    template: Optional[Union[Snapshotable, FrequencyOracle]] = None,
) -> Any:
    """Restore a snapshot produced by :func:`to_bytes` / :func:`save`.

    Parameters
    ----------
    data:
        The snapshot bytes.
    template:
        Optional compatibility anchor and rebuild shortcut:

        * for accumulator snapshots — a :class:`FrequencyOracle` or an
          :class:`OracleAccumulator` whose oracle defines the target
          configuration;
        * for mechanism snapshots — an (unfitted or fitted)
          :class:`RangeQueryMechanism` instance whose collected state is
          **replaced** by the snapshot;
        * ``None`` — rebuild everything from the stored configuration.

        When given, the template's merge signature must equal the stored
        one; a mismatch raises
        :class:`~repro.exceptions.ConfigurationError`.
    """
    header, flat = unpack_snapshot(data)
    kind = header.get("kind")
    state = nest_arrays(flat)
    if kind == "accumulator":
        if template is None:
            oracle = make_oracle(**header["oracle"])
        elif isinstance(template, FrequencyOracle):
            oracle = template
        elif isinstance(template, OracleAccumulator):
            oracle = template.oracle
        else:
            raise ConfigurationError(
                "accumulator snapshots take a FrequencyOracle or "
                f"OracleAccumulator template, got {type(template).__name__}"
            )
        _check_signature(header.get("signature"), oracle.merge_signature(), "oracle")
        return oracle.accumulator().load_state_dict(state)
    if kind == "mechanism":
        if template is None:
            config = header.get("config")
            if config is None:
                raise ConfigurationError(
                    "snapshot has no rebuild configuration; pass the "
                    "mechanism instance to restore into as template="
                )
            mechanism = mechanism_from_config(config)
        elif isinstance(template, RangeQueryMechanism):
            mechanism = template
        else:
            raise ConfigurationError(
                "mechanism snapshots take a RangeQueryMechanism template, "
                f"got {type(template).__name__}"
            )
        _check_signature(
            header.get("signature"), mechanism._merge_signature(), "mechanism"
        )
        return mechanism.load_state_dict(state)
    if kind == "collector":
        from repro.streaming.sharded import ShardedCollector

        if template is not None:
            raise ConfigurationError(
                "collector checkpoints rebuild themselves; template= is not accepted"
            )
        return ShardedCollector._from_parsed(header, flat)
    raise ConfigurationError(f"unknown snapshot kind {kind!r}")


def save(obj: Snapshotable, path: Union[str, Path]) -> Path:
    """Write a snapshot of ``obj`` to ``path`` (atomically via a temp file)."""
    return write_atomic(path, to_bytes(obj))


def load(
    path: Union[str, Path],
    template: Optional[Union[Snapshotable, FrequencyOracle]] = None,
) -> Any:
    """Read a snapshot file written by :func:`save`; see :func:`from_bytes`."""
    return from_bytes(Path(path).read_bytes(), template=template)


def describe(data: bytes) -> Dict[str, Any]:
    """The snapshot's JSON header without restoring any state."""
    header, _ = unpack_snapshot(data)
    return json.loads(json.dumps(header))
