"""Two-dimensional extension (Section 6 of the paper).

The hierarchical decomposition generalises to ``d`` dimensions by taking the
product of per-axis B-adic decompositions: any axis-aligned rectangle splits
into ``O(log_B^2 D)`` "B-adic rectangles", and a user's point lies in exactly
one rectangle per *pair* of axis levels.  The protocol therefore becomes:

* each user samples a level pair ``(l_x, l_y)`` uniformly at random;
* she forms the one-hot vector over the ``B^{l_x} * B^{l_y}`` grid cells of
  that resolution and perturbs it with a frequency oracle;
* the aggregator reconstructs one fraction estimate per cell of every level
  pair and answers a rectangle query by summing the cells of its product
  decomposition.

The variance of a rectangle query grows as ``log^4_B D`` (``log^{2d}`` in
``d`` dimensions), matching the discussion in the paper; Section 6 notes
that for higher dimensions coarse gridding becomes preferable, which is out
of scope here just as it is there.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import (
    InvalidDomainError,
    InvalidQueryError,
    NotFittedError,
)
from repro.frequency_oracles.registry import make_oracle
from repro.hierarchy.decomposition import decompose_to_runs
from repro.hierarchy.tree import DomainTree
from repro.privacy.budget import PrivacyBudget
from repro.privacy.randomness import RandomState, as_generator

__all__ = ["HierarchicalGrid2D"]


class HierarchicalGrid2D:
    """LDP rectangle-query mechanism over a two-dimensional grid domain.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget.
    domain_size:
        Side length ``D`` of the ``[D] x [D]`` grid.
    branching:
        Per-axis fan-out ``B`` of the hierarchical decomposition.
    oracle:
        Frequency oracle used for every level pair (default ``"oue"``).
    """

    def __init__(
        self,
        epsilon: float,
        domain_size: int,
        branching: int = 2,
        oracle: str = "oue",
        **oracle_kwargs,
    ) -> None:
        self._budget = PrivacyBudget(epsilon)
        if not isinstance(domain_size, (int, np.integer)) or domain_size < 2:
            raise InvalidDomainError(
                f"domain side length must be an integer >= 2, got {domain_size!r}"
            )
        self._domain_size = int(domain_size)
        self._tree = DomainTree(self._domain_size, branching)
        self._oracle_name = str(oracle)
        self._oracle_kwargs = dict(oracle_kwargs)
        self._estimates: Optional[Dict[Tuple[int, int], np.ndarray]] = None
        self._n_users: Optional[int] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        return self._budget.epsilon

    @property
    def domain_size(self) -> int:
        """Side length ``D`` of the grid."""
        return self._domain_size

    @property
    def branching(self) -> int:
        return self._tree.branching

    @property
    def height(self) -> int:
        """Per-axis tree height ``h``."""
        return self._tree.height

    @property
    def is_fitted(self) -> bool:
        return self._estimates is not None

    @property
    def n_users(self) -> Optional[int]:
        return self._n_users

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def fit_points(
        self,
        points: np.ndarray,
        random_state: RandomState = None,
    ) -> "HierarchicalGrid2D":
        """Collect a population of ``(x, y)`` points.

        Each user is assigned one level pair uniformly at random; her cell
        index at that resolution is perturbed with the configured oracle
        using the fast aggregate simulation (the per-level-pair populations
        are partitioned exactly, so the sampling distribution matches the
        real protocol).
        """
        points = np.asarray(points, dtype=np.int64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise InvalidQueryError("points must be an (n, 2) array of grid coordinates")
        if points.size and (
            points.min() < 0 or points.max() >= self._domain_size
        ):
            raise InvalidQueryError(f"points must lie in [0, {self._domain_size})^2")
        rng = as_generator(random_state)
        n_users = points.shape[0]
        height = self._tree.height
        level_pairs = [
            (lx, ly) for lx in self._tree.levels for ly in self._tree.levels
        ]
        assignments = rng.integers(0, len(level_pairs), size=n_users)
        estimates: Dict[Tuple[int, int], np.ndarray] = {}
        for pair_index, (lx, ly) in enumerate(level_pairs):
            mask = assignments == pair_index
            cells_x = self._tree.nodes_of_items(lx, points[mask, 0])
            cells_y = self._tree.nodes_of_items(ly, points[mask, 1])
            nx = self._tree.nodes_at_level(lx)
            ny = self._tree.nodes_at_level(ly)
            flat_cells = cells_x * ny + cells_y
            oracle = make_oracle(
                self._oracle_name,
                epsilon=self.epsilon,
                domain_size=nx * ny,
                **self._oracle_kwargs,
            )
            if flat_cells.size == 0:
                estimates[(lx, ly)] = np.zeros((nx, ny))
                continue
            cell_counts = np.bincount(flat_cells, minlength=nx * ny)
            flat_estimate = oracle.simulate_aggregate(cell_counts, rng)
            estimates[(lx, ly)] = flat_estimate.reshape(nx, ny)
        self._estimates = estimates
        self._n_users = n_users
        return self

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer_rectangle(
        self, x_range: Tuple[int, int], y_range: Tuple[int, int]
    ) -> float:
        """Estimated fraction of users inside an axis-aligned rectangle.

        Both ranges are inclusive ``[start, end]`` pairs.
        """
        if self._estimates is None:
            raise NotFittedError("HierarchicalGrid2D has not collected any points yet")
        x_runs = decompose_to_runs(self._tree, int(x_range[0]), int(x_range[1]))
        y_runs = decompose_to_runs(self._tree, int(y_range[0]), int(y_range[1]))
        answer = 0.0
        for run_x in x_runs:
            for run_y in y_runs:
                grid = self._estimates[(run_x.level, run_y.level)]
                block = grid[
                    run_x.first : run_x.last + 1, run_y.first : run_y.last + 1
                ]
                answer += float(block.sum())
        return answer

    def estimate_heatmap(self) -> np.ndarray:
        """Leaf-resolution estimate of the 2-D density (``D x D`` grid)."""
        if self._estimates is None:
            raise NotFittedError("HierarchicalGrid2D has not collected any points yet")
        leaves = self._estimates[(self._tree.height, self._tree.height)]
        return leaves[: self._domain_size, : self._domain_size].copy()

    def theoretical_variance_bound(self, per_axis_length: int) -> float:
        """Loose rectangle-variance bound ``O(log^4_B D) * V_F``.

        Provided for documentation/benchmark sanity checks; Section 6 only
        sketches the multi-dimensional analysis.
        """
        if self._n_users is None:
            raise NotFittedError("fit the mechanism before asking for variance bounds")
        if not 1 <= per_axis_length <= self._domain_size:
            raise InvalidQueryError("per_axis_length outside the domain")
        from repro.analysis.variance import frequency_oracle_variance

        oracle_variance = frequency_oracle_variance(self.epsilon, self._n_users)
        height = float(self._tree.height)
        pairs = height * height
        per_pair_nodes = (2.0 * self._tree.branching - 1.0) ** 2
        return per_pair_nodes * pairs * pairs * oracle_variance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HierarchicalGrid2D(epsilon={self.epsilon:.4g}, domain_size={self._domain_size}, "
            f"branching={self.branching}, fitted={self.is_fitted})"
        )
