"""Randomized response oracles.

* :class:`BinaryRandomizedResponse` — Warner's classical single-bit
  randomized response, the building block of HRR and the root-level Haar
  coefficient perturbation.
* :class:`GeneralizedRandomizedResponse` — k-ary randomized response (k-RR,
  also called *direct encoding*): the user reports her true symbol with
  probability ``e^eps / (e^eps + k - 1)`` and any specific other symbol with
  probability ``1 / (e^eps + k - 1)``.  Its variance degrades linearly with
  the domain size, which is exactly why the paper builds on OUE / OLH / HRR
  instead; it is included as a baseline and because OLH uses it on the
  hashed domain.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.exceptions import ConfigurationError, InvalidDomainError, InvalidQueryError
from repro.frequency_oracles.accumulators import OracleAccumulator
from repro.frequency_oracles.base import FrequencyOracle, OracleReports
from repro.privacy.budget import PrivacyBudget
from repro.privacy.mechanisms import binary_rr_probability, grr_probabilities
from repro.privacy.randomness import RandomState, as_generator

__all__ = [
    "BinaryRandomizedResponse",
    "DirectEncodingAccumulator",
    "GeneralizedRandomizedResponse",
]


class BinaryRandomizedResponse:
    """Warner's randomized response over a single ``{-1, +1}`` bit.

    Not a :class:`FrequencyOracle` (its domain is a single bit, not a
    categorical item); it is used as a primitive by HRR and by the Haar
    root coefficient.  The true bit is kept with probability
    ``p = e^eps / (1 + e^eps)`` and flipped otherwise; dividing a report by
    ``2p - 1`` makes it an unbiased estimate of the true bit.
    """

    def __init__(self, epsilon: float) -> None:
        self._budget = PrivacyBudget(epsilon)
        self._keep_probability = binary_rr_probability(epsilon)

    @property
    def epsilon(self) -> float:
        return self._budget.epsilon

    @property
    def keep_probability(self) -> float:
        """Probability ``p`` of reporting the true bit."""
        return self._keep_probability

    @property
    def unbiasing_factor(self) -> float:
        """``2p - 1``; dividing a report by this factor removes the bias."""
        return 2.0 * self._keep_probability - 1.0

    def perturb(self, bits: np.ndarray, random_state: RandomState = None) -> np.ndarray:
        """Perturb an array of ``{-1, +1}`` bits, one independent flip each."""
        rng = as_generator(random_state)
        bits = np.asarray(bits)
        if bits.size and not np.all(np.isin(bits, (-1, 1))):
            raise InvalidQueryError("bits must be -1 or +1")
        keep = rng.random(bits.shape) < self._keep_probability
        return np.where(keep, bits, -bits).astype(np.int64)

    def unbias(self, reports: np.ndarray) -> np.ndarray:
        """Turn raw ``{-1, +1}`` reports into unbiased estimates of the bit."""
        return np.asarray(reports, dtype=np.float64) / self.unbiasing_factor


class DirectEncodingAccumulator(OracleAccumulator):
    """Sufficient statistic of k-RR: the histogram of reported symbols."""

    def __init__(self, oracle: "GeneralizedRandomizedResponse") -> None:
        super().__init__(oracle)
        self._noisy_counts = np.zeros(oracle.domain_size, dtype=np.float64)

    def _add_reports(self, reports: OracleReports) -> None:
        reported = np.asarray(reports.payload["values"], dtype=np.int64)
        self._noisy_counts += np.bincount(
            reported, minlength=self._oracle.domain_size
        ).astype(np.float64)

    def _add_simulated(self, counts: np.ndarray, rng: np.random.Generator) -> None:
        oracle = self._oracle
        kept = rng.binomial(counts, oracle.p)
        liars = int((counts - kept).sum())
        if liars:
            lies = rng.multinomial(
                liars, np.full(oracle.domain_size, 1.0 / oracle.domain_size)
            )
        else:
            lies = np.zeros(oracle.domain_size, dtype=np.int64)
        self._noisy_counts += kept + lies

    def _merge_statistic(self, other: "DirectEncodingAccumulator") -> None:
        self._noisy_counts += other._noisy_counts

    def _statistic_arrays(self) -> dict:
        return {"noisy_counts": self._noisy_counts}

    def _load_statistic_arrays(self, arrays: dict) -> None:
        self._noisy_counts = arrays["noisy_counts"]

    def estimate(self) -> np.ndarray:
        return self._oracle._unbias(self._noisy_counts, self._n_users)


class GeneralizedRandomizedResponse(FrequencyOracle):
    """k-ary randomized response (direct encoding).

    Report layout (:meth:`encode`): ``{"value": int}``.

    Variance: ``(q (1 - q) + f (p - q)(1 - p - q)) / (N (p - q)^2)`` which for
    small true frequencies ``f`` is approximately
    ``(e^eps + k - 2) / (N (e^eps - 1)^2)`` — linear in the domain size
    ``k``, the scaling problem that motivates the other oracles.
    """

    name = "grr"

    def __init__(self, epsilon: float, domain_size: int) -> None:
        super().__init__(epsilon, domain_size)
        if domain_size < 2:
            # A one-item domain has nothing to hide; GRR needs >= 2 symbols.
            raise InvalidDomainError("GRR requires a domain of at least two items")
        self._probabilities = grr_probabilities(epsilon, self._domain_size)

    @property
    def p(self) -> float:
        """Probability of reporting the true symbol."""
        return self._probabilities.p

    @property
    def q(self) -> float:
        """Probability of reporting a specific wrong symbol."""
        return self._probabilities.q

    # ------------------------------------------------------------------
    # User side
    # ------------------------------------------------------------------
    def encode(self, value: int, random_state: RandomState = None) -> Dict[str, Any]:
        value = self._check_value(value)
        rng = as_generator(random_state)
        if rng.random() < self.p:
            return {"value": value}
        # Uniform over the other k - 1 symbols.
        offset = int(rng.integers(1, self._domain_size))
        return {"value": (value + offset) % self._domain_size}

    def encode_batch(
        self, values: np.ndarray, random_state: RandomState = None
    ) -> OracleReports:
        values = self._check_values(values)
        rng = as_generator(random_state)
        keep = rng.random(values.shape[0]) < self.p
        offsets = rng.integers(1, self._domain_size, size=values.shape[0])
        reported = np.where(keep, values, (values + offsets) % self._domain_size)
        return OracleReports(payload={"values": reported}, n_users=values.shape[0])

    # ------------------------------------------------------------------
    # Aggregator side
    # ------------------------------------------------------------------
    def accumulator(self) -> DirectEncodingAccumulator:
        """Mergeable accumulator over the reported-symbol histogram."""
        return DirectEncodingAccumulator(self)

    def aggregate(self, reports: OracleReports) -> np.ndarray:
        return self.accumulator().add(reports).estimate()

    def simulate_aggregate(
        self, true_counts: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Sample the aggregator's noisy item counts from the true counts.

        Users keeping their value contribute a binomial to their own item;
        lying users are spread multinomially over the whole domain.  The
        real protocol excludes a liar's own item, so this fast path is an
        approximation whose error is ``O(1/k)`` per item; the per-user path
        (:meth:`encode_batch` + :meth:`aggregate`) is exact and is what the
        equivalence tests compare against.
        """
        return self.accumulator().add_counts(true_counts, random_state).estimate()

    def _unbias(self, noisy_counts: np.ndarray, n_users: int) -> np.ndarray:
        if n_users == 0:
            return np.zeros(self._domain_size)
        observed = noisy_counts / float(n_users)
        return (observed - self.q) / (self.p - self.q)

    def theoretical_variance(self, n_users: int) -> float:
        """Small-frequency variance ``q (1 - q) / (N (p - q)^2)``."""
        if n_users <= 0:
            raise ConfigurationError(f"n_users must be positive, got {n_users!r}")
        p, q = self.p, self.q
        return q * (1.0 - q) / (n_users * (p - q) ** 2)
