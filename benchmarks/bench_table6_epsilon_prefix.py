"""Figure/Table 6 — mean squared error of prefix queries vs epsilon.

Same grid as Table 5 but over the prefix-query workload.  The paper's
observation is that prefix errors are often noticeably smaller (up to ~30%)
than arbitrary-range errors at the same setting, because a prefix touches
only one fringe of the hierarchy / wavelet tree (Section 4.7).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import table5_epsilon_ranges, table6_epsilon_prefix
from repro.experiments.reporting import render_results


@pytest.mark.benchmark(group="table6")
def test_table6_small_domain(run_once, bench_config):
    domain = 1 << 8
    results = run_once(table6_epsilon_prefix, bench_config, domain)
    print(f"\n=== Table 6(a) | D = 2^8 | prefix queries | MSE x 1000 ===")
    print(render_results(results))

    by_eps = {}
    for cell in results:
        by_eps.setdefault(cell.epsilon, {})[cell.mechanism] = cell.mse_mean
    epsilons = sorted(by_eps)
    for method in ("hhc_2", "hhc_4", "hhc_16", "haar"):
        assert by_eps[epsilons[-1]][method] < by_eps[epsilons[0]][method]


@pytest.mark.benchmark(group="table6")
def test_prefix_errors_do_not_exceed_range_errors(run_once, bench_config):
    """Prefix queries are a special case and should not be harder than
    arbitrary ranges (they are usually easier, Section 4.7)."""
    domain = 1 << 10
    config = bench_config.scaled(epsilons=(0.4, 1.1))

    def both():
        return (
            table5_epsilon_ranges(config, domain),
            table6_epsilon_prefix(config, domain),
        )

    ranges_results, prefix_results = run_once(both)
    print("\n=== Prefix vs arbitrary ranges | D = 2^10 | MSE x 1000 ===")
    print("arbitrary ranges:")
    print(render_results(ranges_results))
    print("prefix queries:")
    print(render_results(prefix_results))

    range_mse = {(c.epsilon, c.mechanism): c.mse_mean for c in ranges_results}
    prefix_mse = {(c.epsilon, c.mechanism): c.mse_mean for c in prefix_results}
    ratios = [prefix_mse[key] / range_mse[key] for key in range_mse]
    # On average prefixes are no harder; individual cells get slack for noise.
    assert np.mean(ratios) < 1.25
