"""Property tests: every kernel backend is bit-identical to naive numpy.

The registry contract (see :mod:`repro.kernels.registry`) is *exact*
equality, not tolerance: all three hot kernels are pure integer functions,
so a compiled backend may change wall time but never a single output bit.
Each test therefore compares every backend in
:func:`repro.kernels.available_backends` against an independent naive
reference — locally that exercises the numpy implementation against the
naive formula; in the numba-enabled CI job the same tests additionally pin
the compiled kernels to it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels

_PRIME = (1 << 31) - 1

#: Block budgets from degenerate (single-row / single-user blocks) to "one
#: block fits everything" — the blocking must be invisible in the results.
block_targets = st.sampled_from([1, 8, 64, 4096, 1 << 22])

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _backends():
    return kernels.available_backends()


# ---------------------------------------------------------------------------
# unary_column_sums
# ---------------------------------------------------------------------------


@given(
    seed=seeds,
    n_rows=st.integers(min_value=0, max_value=70),
    n_bits=st.integers(min_value=1, max_value=67),
    density=st.sampled_from([0.0, 0.3, 1.0]),
    block_target=block_targets,
)
@settings(max_examples=150, deadline=None)
def test_unary_column_sums_matches_unpackbits(seed, n_rows, n_bits, density, block_target):
    rng = np.random.default_rng(seed)
    bits = (rng.random((n_rows, n_bits)) < density).astype(np.uint8)
    packed = np.packbits(bits, axis=1)
    expected = (
        np.unpackbits(packed, axis=1, count=n_bits).sum(axis=0).astype(np.int64)
        if n_rows
        else np.zeros(n_bits, dtype=np.int64)
    )
    for backend in _backends():
        result = kernels.get_kernel("unary_column_sums", backend=backend)(
            packed, n_bits, block_target
        )
        assert result.dtype == np.int64, backend
        assert np.array_equal(result, expected), backend


# ---------------------------------------------------------------------------
# olh_decode
# ---------------------------------------------------------------------------


@given(
    seed=seeds,
    n_users=st.integers(min_value=0, max_value=50),
    domain_size=st.integers(min_value=1, max_value=40),
    hash_range=st.integers(min_value=2, max_value=16),
    block_target=block_targets,
)
@settings(max_examples=150, deadline=None)
def test_olh_decode_matches_direct_formula(seed, n_users, domain_size, hash_range, block_target):
    rng = np.random.default_rng(seed)
    a = rng.integers(1, _PRIME, size=n_users, dtype=np.int64)
    b = rng.integers(0, _PRIME, size=n_users, dtype=np.int64)
    values = rng.integers(0, hash_range, size=n_users, dtype=np.int64)
    items = np.arange(domain_size, dtype=np.int64)
    expected = (
        ((a[:, None] * items[None, :] + b[:, None]) % _PRIME % hash_range == values[:, None])
        .sum(axis=0)
        .astype(np.int64)
        if n_users
        else np.zeros(domain_size, dtype=np.int64)
    )
    for backend in _backends():
        result = kernels.get_kernel("olh_decode", backend=backend)(
            a, b, values, domain_size, hash_range, _PRIME, block_target
        )
        assert result.dtype == np.int64, backend
        assert np.array_equal(result, expected), backend


# ---------------------------------------------------------------------------
# badic_axis_runs
# ---------------------------------------------------------------------------


def _scalar_axis_runs(start, end, branching, height):
    """Per-query plain-Python peel: the reference the vectorised kernel
    (and any compiled twin) must reproduce exactly."""
    lo, hi = int(start), int(end) + 1
    rows = []
    block = 1
    for _ in range(height):
        coarse = block * branching
        left_end = min(hi, ((lo + coarse - 1) // coarse) * coarse)
        right_start = max(left_end, (hi // coarse) * coarse)
        rows.append((lo // block, left_end // block, right_start // block, hi // block))
        lo, hi = left_end, right_start
        block = coarse
    return rows, lo < hi


geometries = st.tuples(
    st.integers(min_value=2, max_value=4),  # branching
    st.integers(min_value=1, max_value=8),  # height
)


@given(
    seed=seeds,
    geometry=geometries,
    n_queries=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=150, deadline=None)
def test_badic_axis_runs_matches_scalar_peel(seed, geometry, n_queries):
    branching, height = geometry
    domain = branching**height
    rng = np.random.default_rng(seed)
    endpoints = np.sort(rng.integers(0, domain, size=(n_queries, 2)), axis=1)
    starts = endpoints[:, 0].astype(np.int64)
    ends = endpoints[:, 1].astype(np.int64)

    expected_runs = np.empty((height, 4, n_queries), dtype=np.int64)
    expected_survivors = np.empty(n_queries, dtype=bool)
    for q in range(n_queries):
        rows, survived = _scalar_axis_runs(starts[q], ends[q], branching, height)
        for level, row in enumerate(rows):
            expected_runs[level, :, q] = row
        expected_survivors[q] = survived

    for backend in _backends():
        runs, survivors = kernels.get_kernel("badic_axis_runs", backend=backend)(
            starts, ends, branching, height
        )
        assert runs.shape == (height, 4, n_queries), backend
        assert runs.dtype == np.int64, backend
        assert np.array_equal(runs, expected_runs), backend
        assert np.array_equal(survivors, expected_survivors), backend


@given(seed=seeds, geometry=geometries)
@settings(max_examples=100, deadline=None)
def test_badic_axis_runs_covers_exactly_the_range(seed, geometry):
    """Semantic check, independent of the peel algorithm: expanding every
    run to leaf indices reproduces the query range exactly (disjoint cover),
    unless the query survives as the whole padded domain."""
    branching, height = geometry
    domain = branching**height
    rng = np.random.default_rng(seed)
    lo, hi = np.sort(rng.integers(0, domain, size=2))
    starts = np.array([lo], dtype=np.int64)
    ends = np.array([hi], dtype=np.int64)
    runs, survivors = kernels.badic_axis_runs(starts, ends, branching, height)
    covered = np.zeros(domain, dtype=np.int64)
    if survivors[0]:
        covered += 1  # charged as the implicit root: the full domain
    for level in range(height):
        block = branching**level
        for first, last in ((runs[level, 0, 0], runs[level, 1, 0]),
                            (runs[level, 2, 0], runs[level, 3, 0])):
            covered[first * block : last * block] += 1
    expected = np.zeros(domain, dtype=np.int64)
    expected[lo : hi + 1] = 1
    assert np.array_equal(covered, expected)


def test_degenerate_queries_single_point_and_full_domain():
    branching, height = 2, 6
    domain = branching**height
    starts = np.array([0, domain - 1, 0, 5], dtype=np.int64)
    ends = np.array([0, domain - 1, domain - 1, 5], dtype=np.int64)
    for backend in _backends():
        runs, survivors = kernels.get_kernel("badic_axis_runs", backend=backend)(
            starts, ends, branching, height
        )
        # Only the full-domain query survives every peel.
        assert survivors.tolist() == [False, False, True, False], backend
        # Single points cover one leaf at the finest level (left or right
        # peel depending on alignment): exactly one unit-length run.
        assert runs[0, :, 0].tolist() == [0, 0, 0, 1], backend
        assert runs[0, :, 3].tolist() == [5, 6, 6, 6], backend


def test_empty_query_batch():
    starts = np.empty(0, dtype=np.int64)
    ends = np.empty(0, dtype=np.int64)
    for backend in _backends():
        runs, survivors = kernels.get_kernel("badic_axis_runs", backend=backend)(
            starts, ends, 2, 4
        )
        assert runs.shape == (4, 4, 0), backend
        assert survivors.shape == (0,), backend
